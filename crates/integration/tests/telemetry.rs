//! Property and stress tests of the telemetry plane across crates:
//! quantiles estimated from the log-linear histogram stay inside the
//! documented error bound for *any* workload, serialization round-trips
//! preserve them, and concurrent writers never lose a count.

use std::sync::Arc;

use c100_obs::hist::quantile_error_bound;
use c100_obs::{MetricsRegistry, MetricsSnapshot};
use proptest::prelude::*;

const QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// The exact sample quantile under the same rank convention the
/// histogram uses (`rank = q × count`, first bucket whose cumulative
/// count reaches the rank).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = q * sorted.len() as f64;
    let idx = (rank.ceil() as usize).max(1) - 1;
    sorted[idx.min(sorted.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any batch of durations inside the finite bucket range, every
    /// estimated quantile is within `max(25% × exact, 1µs)` of the
    /// exact sample quantile — the bound `quantile_micros` documents.
    #[test]
    fn histogram_quantiles_stay_within_the_documented_error_bound(
        values in proptest::collection::vec(0u64..(1u64 << 27), 1..300)
    ) {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("telemetry.prop");
        for &v in &values {
            hist.observe_micros(v);
        }
        let snapshot = registry.snapshot();
        let h = &snapshot.histograms["telemetry.prop"];

        let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

        for q in QUANTILES {
            let exact = exact_quantile(&sorted, q);
            let estimate = h.quantile_micros(q);
            let bound = quantile_error_bound(exact);
            prop_assert!(
                (estimate - exact).abs() <= bound,
                "q={q}: estimate {estimate} vs exact {exact} (bound {bound}, n={})",
                values.len()
            );
        }
    }

    /// JSON round-trips must not move quantiles: the sparse bucket
    /// encoding keeps each non-empty bucket's predecessor precisely so
    /// interpolation lower bounds survive serialization.
    #[test]
    fn json_round_trip_preserves_quantiles_exactly(
        values in proptest::collection::vec(0u64..(1u64 << 30), 1..200)
    ) {
        let registry = MetricsRegistry::new();
        registry.inc("runs");
        let hist = registry.histogram("telemetry.roundtrip");
        for &v in &values {
            hist.observe_micros(v);
        }
        let snapshot = registry.snapshot();
        let reparsed = MetricsSnapshot::from_json(&snapshot.to_json()).expect("parses");

        let before = &snapshot.histograms["telemetry.roundtrip"];
        let after = &reparsed.histograms["telemetry.roundtrip"];
        prop_assert_eq!(before.count, after.count);
        prop_assert_eq!(before.sum_micros, after.sum_micros);
        for q in QUANTILES {
            let b = before.quantile_micros(q);
            let a = after.quantile_micros(q);
            prop_assert!(
                (a - b).abs() < 1e-9,
                "q={q} moved across round-trip: {b} -> {a}"
            );
        }
    }
}

/// Writers on many threads, a snapshot taken mid-flight, and a final
/// snapshot after joining: the mid-flight view is internally coherent
/// (never counts more than written) and the final view is exact.
#[test]
fn concurrent_writers_and_snapshots_account_for_every_operation() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;

    let registry = Arc::new(MetricsRegistry::new());
    let counter = registry.counter("telemetry.ops");
    let hist = registry.histogram("telemetry.lat");

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.observe_micros(t * 1_000 + i % 997);
                }
            });
        }
        // Concurrent scrapes must see a coherent, bounded view.
        for _ in 0..20 {
            let snapshot = registry.snapshot();
            let seen = snapshot.counters["telemetry.ops"];
            let h = &snapshot.histograms["telemetry.lat"];
            assert!(seen <= THREADS * PER_THREAD);
            assert!(h.count <= THREADS * PER_THREAD);
            let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
            assert!(bucket_total <= THREADS * PER_THREAD);
        }
    });

    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counters["telemetry.ops"], THREADS * PER_THREAD);
    let h = &snapshot.histograms["telemetry.lat"];
    assert_eq!(h.count, THREADS * PER_THREAD);
    assert_eq!(
        h.buckets.iter().map(|b| b.count).sum::<u64>(),
        THREADS * PER_THREAD
    );
    assert_eq!(h.min_micros, 0);
    // Largest write: thread 7, i % 997 == 996.
    assert_eq!(h.max_micros, 7_996);
}
