//! Shared setup for the reproduction binary and the Criterion benches.

pub mod dataset;

use c100_core::profile::Profile;
use c100_synth::SynthConfig;
use c100_timeseries::Date;

/// The data/compute sizing of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunProfile {
    /// Minimal span and assets: seconds-to-minutes, for CI smoke runs
    /// and trace/compare exercises. Still starts at 2017-01-01 so every
    /// scenario (both period sets) can be built.
    Smoke,
    /// Reduced span and grids: minutes, for smoke runs and benches.
    Fast,
    /// The paper-sized run: full 2017-2023 span, full grids.
    Full,
}

impl RunProfile {
    /// Parses `smoke` / `fast` / `full`.
    pub fn parse(s: &str) -> Option<RunProfile> {
        match s {
            "smoke" => Some(RunProfile::Smoke),
            "fast" => Some(RunProfile::Fast),
            "full" => Some(RunProfile::Full),
            _ => None,
        }
    }

    /// The synthetic-data configuration for this profile.
    pub fn synth_config(self, seed: u64) -> SynthConfig {
        match self {
            RunProfile::Smoke => SynthConfig {
                seed,
                start: Date::from_ymd(2017, 1, 1).expect("valid constant"),
                end: Date::from_ymd(2020, 6, 30).expect("valid constant"),
                n_assets: 120,
                warmup_days: 250,
            },
            RunProfile::Fast => SynthConfig {
                seed,
                n_assets: 150,
                ..SynthConfig::default()
            },
            RunProfile::Full => SynthConfig {
                seed,
                ..SynthConfig::default()
            },
        }
    }

    /// The pipeline compute profile.
    pub fn pipeline_profile(self, seed: u64) -> Profile {
        match self {
            RunProfile::Smoke => Profile::fast(),
            // The fast profile still runs the full 2017-2023 span, so
            // give SHAP a few more rows than the test default.
            RunProfile::Fast => Profile::fast().with_shap_rows(192),
            RunProfile::Full => Profile::full(),
        }
        .with_seed(seed)
    }
}
