//! Acceptor, reactor shards, worker pool, routing, and graceful
//! shutdown.
//!
//! Thread topology:
//!
//! ```text
//! acceptor ──round-robin──▶ reactor shard × R   (poll(2) event loops,
//!                                │    ▲          keep-alive conn tables)
//!                   parsed req   │    │ response
//!                                ▼    │
//!                          BoundedQueue<Job> ──pop──▶ worker × N
//!                                │ (full)               │
//!                                ▼                      ├─▶ direct predict    (batching off,
//!                          503 + Retry-After            │    or rows ≥ max_batch)
//!                                                       └─▶ batcher shard × B (batching on)
//! ```
//!
//! Reactors own all socket I/O: non-blocking reads feed the incremental
//! parser, completed requests are queued for workers, and worker
//! responses come back through per-shard inboxes to be written under
//! `POLLOUT` readiness. Connections persist across requests
//! (HTTP/1.1 keep-alive, see [`crate::http::Request::keep_alive`]), so
//! a queue slot is a whole *request* — load shedding stays precise, it
//! just no longer costs the client its connection setup. Workers never
//! touch sockets and reactors never run model code.
//!
//! When `self_tune` is on, a tuner thread ([`crate::tuner`]) watches
//! the queue-wait histogram and resizes the worker pool and queue
//! within configured bounds.
//!
//! Shutdown is graceful by construction — the acceptor stops
//! accepting, reactors stop dispatching (503 + close), workers drain
//! what the queue already holds, the batcher flushes pending rows,
//! reactors flush their write buffers, and only then do threads join.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use c100_obs::json::{self, Value};
use c100_obs::{FlightRecorder, MetricsRegistry, Tracer};
use c100_store::{BatchPredictor, Engine, ModelArtifact, StoreError};

use crate::batcher::{
    BatchReply, BatchSubmitter, Batcher, DeferredReply, Deliver, PredictJob, ReplySink,
};
use crate::cache::ModelCache;
use crate::http::{self, Method, Request, Response};
use crate::queue::BoundedQueue;
use crate::reactor::{reactor_loop, Inbox, Job, Msg};
use crate::telemetry::{InflightGuard, ServeMetrics};
use crate::tuner::{tuner_loop, TuneLimits};
use crate::{Result, ServeError};

/// Server construction parameters; every knob has a serviceable
/// default so `ServeConfig::new(dir, addr)` is a working server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Artifact store directory to serve models from.
    pub store_dir: PathBuf,
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it requests shed 503.
    pub queue_depth: usize,
    /// Row budget per coalesced batch; `<= 1` disables micro-batching
    /// and workers predict directly.
    pub max_batch: usize,
    /// Longest a queued `/predict` row waits for batch-mates.
    pub max_wait: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Inference engine predictors are built with (bit-identical
    /// either way; `POST /reload` can override it at runtime).
    pub engine: Engine,
    /// Where to dump the flight recorder on shutdown (`None` skips the
    /// file; `GET /debug/flight` works regardless).
    pub flight_path: Option<PathBuf>,
    /// Reactor (event-loop) shards; each owns a private connection
    /// table and a `poll(2)` loop.
    pub reactors: usize,
    /// Close keep-alive connections idle longer than this (also bounds
    /// how long a peer may stall mid-request).
    pub idle_timeout: Duration,
    /// Let the tuner resize workers/queue from observed queue wait.
    /// Off by default: fixed sizing keeps shed accounting exact, which
    /// tests and small deployments rely on.
    pub self_tune: bool,
    /// Worker ceiling under self-tuning (`0` → `workers * 4`).
    pub max_workers: usize,
}

impl ServeConfig {
    /// A config with default sizing for the given store and address.
    pub fn new(store_dir: impl Into<PathBuf>, addr: impl Into<String>) -> ServeConfig {
        ServeConfig {
            store_dir: store_dir.into(),
            addr: addr.into(),
            workers: 4,
            queue_depth: 64,
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            engine: Engine::default(),
            flight_path: None,
            reactors: 2,
            idle_timeout: Duration::from_secs(10),
            self_tune: false,
            max_workers: 0,
        }
    }
}

/// Everything acceptor/reactor/worker/tuner threads share.
pub(crate) struct Shared {
    pub(crate) cache: ModelCache,
    /// Parsed requests waiting for a worker, stamped at parse
    /// completion so queue-wait is measurable at pop.
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) registry: Arc<MetricsRegistry>,
    /// Handles preregistered at startup — the request path records
    /// through these, never through the registry's by-name API.
    pub(crate) metrics: ServeMetrics,
    /// Always-on ring of recent request/shed/reload records.
    pub(crate) flight: Arc<FlightRecorder>,
    flight_path: Option<PathBuf>,
    pub(crate) tracer: Option<Arc<Tracer>>,
    pub(crate) shutdown: AtomicBool,
    /// Flipped only after workers have joined; tells reactors no more
    /// replies can arrive, so they flush and exit.
    pub(crate) reactors_stop: AtomicBool,
    /// Signalled when any party requests shutdown; `wait` blocks here.
    pub(crate) shutdown_requested: (Mutex<bool>, Condvar),
    pub(crate) max_body_bytes: usize,
    pub(crate) max_batch: usize,
    pub(crate) idle_timeout: Duration,
    /// One mailbox per reactor shard.
    pub(crate) inboxes: Vec<Arc<Inbox>>,
    /// Worker count the tuner wants; workers retire themselves when
    /// the live count exceeds it.
    pub(crate) target_workers: AtomicUsize,
    /// Live worker count.
    pub(crate) active_workers: AtomicUsize,
    /// Join handles for every worker ever spawned (the tuner adds to
    /// this after start).
    pub(crate) worker_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Template submitter new workers clone; taken (dropped) before the
    /// batcher joins so shutdown cannot deadlock on a live sender.
    pub(crate) batch_submitter: Mutex<Option<BatchSubmitter>>,
    worker_seq: AtomicUsize,
    /// When the served model set last changed (start or `POST /reload`);
    /// `/metrics` derives the `serve.model_age_seconds` gauge from it.
    models_loaded_at: Mutex<Instant>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let (lock, cv) = &self.shutdown_requested;
        *lock.lock().expect("shutdown flag poisoned") = true;
        cv.notify_all();
    }
}

/// Spawns one worker thread and registers it in the shared pool; used
/// at startup and by the tuner when growing.
pub(crate) fn spawn_worker(shared: &Arc<Shared>) -> std::io::Result<()> {
    let id = shared.worker_seq.fetch_add(1, Ordering::Relaxed);
    let cloned = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("serve-worker-{id}"))
        .spawn(move || worker_loop(&cloned))?;
    shared.active_workers.fetch_add(1, Ordering::SeqCst);
    shared
        .worker_handles
        .lock()
        .expect("worker handles poisoned")
        .push(handle);
    Ok(())
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    tuner: Option<JoinHandle<()>>,
    batcher: Option<Batcher>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics registry (shared with all threads).
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        self.shared.registry.clone()
    }

    /// The server's flight recorder (shared with all threads); useful
    /// for dumping post-mortems from the embedding process.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        self.shared.flight.clone()
    }

    /// Flags shutdown without blocking; `wait`/`shutdown` perform the
    /// actual drain and join.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
        wake_acceptor(self.addr);
    }

    /// Blocks until shutdown is requested (by [`Self::request_shutdown`]
    /// or `POST /shutdown`), then drains and joins everything.
    pub fn wait(mut self) {
        let (lock, cv) = &self.shared.shutdown_requested;
        let mut requested = lock.lock().expect("shutdown flag poisoned");
        while !*requested {
            requested = cv.wait(requested).expect("shutdown flag poisoned");
        }
        drop(requested);
        wake_acceptor(self.addr);
        self.join_all();
    }

    /// Requests shutdown and blocks until the server is fully drained.
    pub fn shutdown(mut self) {
        self.request_shutdown();
        self.join_all();
    }

    fn join_all(&mut self) {
        // Order matters: stop intake (acceptor), stop resizing (tuner),
        // drain the queue (workers deliver every reply into reactor
        // inboxes), flush the batcher, and only then stop the reactors —
        // they must outlive the workers to write the final responses.
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(tuner) = self.tuner.take() {
            let _ = tuner.join();
        }
        self.shared.queue.close();
        let workers: Vec<JoinHandle<()>> = std::mem::take(
            &mut *self
                .shared
                .worker_handles
                .lock()
                .expect("worker handles poisoned"),
        );
        for worker in workers {
            let _ = worker.join();
        }
        // Drop the template submitter so the batcher's channels close.
        self.shared
            .batch_submitter
            .lock()
            .expect("batch submitter poisoned")
            .take();
        if let Some(batcher) = self.batcher.take() {
            batcher.shutdown();
        }
        self.shared.reactors_stop.store(true, Ordering::SeqCst);
        for inbox in &self.shared.inboxes {
            inbox.wake();
        }
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
        self.shared.metrics.queue_depth.set(0.0);
        if let Some(path) = &self.shared.flight_path {
            if let Err(e) = self.shared.flight.dump_to_file(path) {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.reactors.is_empty() {
            self.shared.request_shutdown();
            wake_acceptor(self.addr);
            self.join_all();
        }
    }
}

/// Unblocks a listener stuck in `accept` by dialing it once.
fn wake_acceptor(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
}

/// The inference server; [`start`](Server::start) is the entry point.
pub struct Server;

impl Server {
    /// Binds, spawns acceptor/workers/batcher, and returns a handle.
    /// The registry and tracer are shared so callers can render
    /// `/metrics` or dump spans after shutdown.
    pub fn start(
        config: ServeConfig,
        registry: Arc<MetricsRegistry>,
        tracer: Option<Arc<Tracer>>,
    ) -> Result<ServerHandle> {
        if config.workers == 0 {
            return Err(ServeError::Config("workers must be >= 1".into()));
        }
        if config.reactors == 0 {
            return Err(ServeError::Config("reactors must be >= 1".into()));
        }
        // Predictors built by the cache report BatchPredicted events
        // into this registry, so the ml predict path shares the same
        // lock-free histograms as the HTTP layer.
        let cache = ModelCache::open(&config.store_dir)?
            .with_engine(config.engine)
            .with_observer(registry.clone());
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let inboxes = (0..config.reactors)
            .map(|_| Inbox::new().map(Arc::new).map_err(ServeError::Io))
            .collect::<Result<Vec<_>>>()?;

        let shared = Arc::new(Shared {
            cache,
            queue: BoundedQueue::new(config.queue_depth),
            registry: registry.clone(),
            metrics: ServeMetrics::preregister(&registry),
            flight: Arc::new(FlightRecorder::new()),
            flight_path: config.flight_path.clone(),
            tracer: tracer.clone(),
            shutdown: AtomicBool::new(false),
            reactors_stop: AtomicBool::new(false),
            shutdown_requested: (Mutex::new(false), Condvar::new()),
            max_body_bytes: config.max_body_bytes,
            max_batch: config.max_batch,
            idle_timeout: config.idle_timeout,
            inboxes,
            target_workers: AtomicUsize::new(config.workers),
            active_workers: AtomicUsize::new(0),
            worker_handles: Mutex::new(Vec::new()),
            batch_submitter: Mutex::new(None),
            worker_seq: AtomicUsize::new(0),
            models_loaded_at: Mutex::new(Instant::now()),
        });
        registry.set_gauge("serve.last_reload_timestamp_seconds", unix_now_seconds());
        shared.metrics.tuned_workers.set(config.workers as f64);
        shared
            .metrics
            .tuned_queue_depth
            .set(config.queue_depth as f64);

        let batcher = if config.max_batch > 1 {
            // Flush-time completion for deferred jobs: render the
            // /predict response, run the same accounting tail as the
            // synchronous path, and hand the response to the reactor
            // shard that owns the connection. Runs on whichever thread
            // executes the flush (leader worker or sweeper).
            let deliver: Deliver = {
                let shared = shared.clone();
                Arc::new(
                    move |ctx: DeferredReply,
                          artifact_id: &str,
                          predictor: &Arc<BatchPredictor>,
                          result: BatchReply| {
                        let response = match result {
                            Ok(forecasts) => render_predict_response(
                                artifact_id,
                                predictor.artifact(),
                                &forecasts,
                            ),
                            Err(message) => Response::error_json(500, &message),
                        };
                        let response = finish_response(&shared, "predict", response, &ctx);
                        shared.inboxes[ctx.shard].send(Msg::Reply {
                            conn_id: ctx.conn_id,
                            response,
                        });
                    },
                )
            };
            let batcher = Batcher::start(
                config.max_batch,
                config.max_wait,
                config.reactors.max(2),
                deliver,
                registry,
                tracer,
                Some(shared.flight.clone()),
            );
            *shared
                .batch_submitter
                .lock()
                .expect("batch submitter poisoned") = Some(batcher.sender());
            Some(batcher)
        } else {
            None
        };

        for _ in 0..config.workers {
            spawn_worker(&shared).map_err(ServeError::Io)?;
        }

        let reactors = (0..config.reactors)
            .map(|shard| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-reactor-{shard}"))
                    .spawn(move || reactor_loop(&shared, shard))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>>>()?;

        let tuner = if config.self_tune {
            let limits = TuneLimits {
                min_workers: 1,
                max_workers: if config.max_workers == 0 {
                    config.workers * 4
                } else {
                    config.max_workers.max(config.workers)
                },
                min_queue_depth: config.queue_depth,
                max_queue_depth: config.queue_depth * 8,
            };
            let shared = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("serve-tuner".into())
                    .spawn(move || tuner_loop(&shared, limits))
                    .map_err(ServeError::Io)?,
            )
        } else {
            None
        };

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .map_err(ServeError::Io)?
        };

        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            reactors,
            tuner,
            batcher,
        })
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_shard = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // This is (or raced with) the shutdown wake-up dial.
            return;
        }
        let _span = shared
            .tracer
            .as_deref()
            .map(|t| t.span("serve", "serve.accept"));
        shared.metrics.connections_total.inc();
        shared.inboxes[next_shard].send(Msg::Accept(stream));
        next_shard = (next_shard + 1) % shared.inboxes.len();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let submitter = shared
        .batch_submitter
        .lock()
        .expect("batch submitter poisoned")
        .clone();
    loop {
        // About to (possibly) block for more work: flush anything
        // parked with the batcher first. An empty queue means no more
        // rows are coming to grow those batches, so holding them for
        // the deadline would be pure added latency. The check is racy
        // (that is fine — whichever worker goes idle *last* repeats
        // it), and free when nothing is parked.
        if let Some(submitter) = &submitter {
            if shared.queue.is_empty() {
                submitter.nudge();
            }
        }
        let Some(job) = shared.queue.pop() else { break };
        shared.metrics.queue_depth.set(shared.queue.len() as f64);
        shared.metrics.queue_wait.observe(job.received_at.elapsed());
        // A deferred (batched) request replies from the flush path
        // instead; this worker is already free for the next job.
        if let Some(response) = handle_request(shared, submitter.as_ref(), &job) {
            shared.inboxes[job.shard].send(Msg::Reply {
                conn_id: job.conn_id,
                response,
            });
        }
        // Tuner shrink: when the live count exceeds the target, retire
        // exactly enough workers, each after finishing its job.
        loop {
            let active = shared.active_workers.load(Ordering::SeqCst);
            if active <= shared.target_workers.load(Ordering::SeqCst) {
                break;
            }
            if shared
                .active_workers
                .compare_exchange(active, active - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }
    shared.active_workers.fetch_sub(1, Ordering::SeqCst);
}

/// What routing produced: a response to send now, or a promise that
/// the batcher's flush path will deliver one later.
enum Routed {
    Response(Response),
    Deferred,
}

impl From<Response> for Routed {
    fn from(response: Response) -> Routed {
        Routed::Response(response)
    }
}

/// Routes one parsed request. Returns the finished response, or `None`
/// when the request was handed to the batcher — the flush path owns
/// accounting and delivery from there. Runs on a worker thread; never
/// touches the socket.
fn handle_request(
    shared: &Shared,
    submitter: Option<&BatchSubmitter>,
    job: &Job,
) -> Option<Response> {
    let _inflight = InflightGuard::enter(&shared.metrics.inflight);
    let ctx = DeferredReply {
        conn_id: job.conn_id,
        shard: job.shard,
        received_at: job.received_at,
        started: Instant::now(),
        keep_alive: job.request.keep_alive(),
    };
    // A panic in a handler must not take the worker down with it.
    let routed = catch_unwind(AssertUnwindSafe(|| {
        route(shared, submitter, &job.request, &ctx)
    }));
    let (endpoint, outcome) = routed.unwrap_or_else(|_| {
        (
            "panic",
            Response::error_json(500, "internal server error: handler panicked").into(),
        )
    });
    match outcome {
        Routed::Deferred => None,
        Routed::Response(response) => Some(finish_response(shared, endpoint, response, &ctx)),
    }
}

/// The accounting tail every response passes through exactly once —
/// on the worker for synchronous requests, at flush time for deferred
/// ones (so handler latency honestly includes time parked in a batch).
/// Also negotiates keep-alive: the client's preference is honoured
/// except while draining, when every response closes so clients
/// reconnect elsewhere.
fn finish_response(
    shared: &Shared,
    endpoint: &str,
    response: Response,
    ctx: &DeferredReply,
) -> Response {
    let handler_elapsed = ctx.started.elapsed();
    let endpoint_metrics = shared.metrics.endpoint(endpoint);
    shared.metrics.requests_total.inc();
    endpoint_metrics.requests.inc();
    shared.metrics.response_class(response.status).inc();
    endpoint_metrics.handler_micros.observe(handler_elapsed);
    endpoint_metrics
        .request_micros
        .observe(ctx.received_at.elapsed());
    shared.flight.record(
        "request",
        &format!("{endpoint} {}", response.status),
        Some(handler_elapsed.as_micros().min(u64::MAX as u128) as u64),
    );
    response.with_keep_alive(ctx.keep_alive && !shared.shutdown.load(Ordering::SeqCst))
}

fn route(
    shared: &Shared,
    submitter: Option<&BatchSubmitter>,
    request: &Request,
    ctx: &DeferredReply,
) -> (&'static str, Routed) {
    match (request.method, request.path()) {
        (Method::Get, "/healthz") => ("healthz", healthz(shared).into()),
        (Method::Get, "/models") => ("models", models(shared).into()),
        (Method::Get, "/metrics") => ("metrics", metrics(shared).into()),
        (Method::Get, "/debug/flight") => ("flight", flight(shared).into()),
        (Method::Post, "/predict") => ("predict", predict(shared, submitter, request, ctx)),
        (Method::Post, "/reload") => ("reload", reload(shared, request).into()),
        (Method::Post, "/shutdown") => ("shutdown", shutdown(shared).into()),
        (_, path @ ("/healthz" | "/models" | "/metrics" | "/debug/flight")) => (
            "other",
            Response::error_json(405, &format!("{path} only supports GET"))
                .with_header("Allow", "GET")
                .into(),
        ),
        (_, path @ ("/predict" | "/reload" | "/shutdown")) => (
            "other",
            Response::error_json(405, &format!("{path} only supports POST"))
                .with_header("Allow", "POST")
                .into(),
        ),
        (_, path) => (
            "other",
            Response::error_json(404, &format!("no such endpoint: {path}")).into(),
        ),
    }
}

fn healthz(shared: &Shared) -> Response {
    let mut body = String::from("{\"status\":\"ok\",\"models\":");
    body.push_str(&shared.cache.entries().len().to_string());
    body.push_str("}\n");
    Response::json(200, body)
}

fn models(shared: &Shared) -> Response {
    let entries = shared.cache.entries();
    let mut body = String::from("{\"models\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"id\":");
        json::write_escaped(&mut body, &e.id);
        body.push_str(",\"scenario\":");
        json::write_escaped(&mut body, &e.scenario);
        body.push_str(",\"model\":");
        json::write_escaped(&mut body, &e.model);
        body.push_str(",\"engine\":");
        json::write_escaped(&mut body, &shared.cache.active_engine(&e.id).label());
        body.push_str(&format!(",\"bytes\":{},\"seq\":{}}}", e.bytes, e.seq));
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

/// `GET /debug/flight`: the flight recorder's bounded JSON dump —
/// recent requests, sheds, reloads, and batch flushes with timings.
fn flight(shared: &Shared) -> Response {
    Response::json(200, shared.flight.to_json())
}

fn metrics(shared: &Shared) -> Response {
    // Freshness is computed at scrape time so the gauge ages between
    // reloads without a background ticker.
    let age = shared
        .models_loaded_at
        .lock()
        .expect("models_loaded_at poisoned")
        .elapsed();
    shared
        .registry
        .set_gauge("serve.model_age_seconds", age.as_secs_f64());
    Response::text(200, shared.registry.snapshot().to_text())
}

/// Seconds since the unix epoch, for the last-reload timestamp gauge.
fn unix_now_seconds() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

fn reload(shared: &Shared, request: &Request) -> Response {
    let engine = match parse_reload_body(&request.body) {
        Ok(engine) => engine,
        Err(message) => return Response::error_json(400, &message),
    };
    match shared.cache.reload(engine) {
        Ok(new_ids) => {
            shared.registry.inc("serve.reloads_total");
            shared.flight.record(
                "reload",
                &format!(
                    "engine={} new_artifacts={}",
                    shared.cache.engine().label(),
                    new_ids.len()
                ),
                None,
            );
            shared
                .registry
                .set_gauge("serve.last_reload_timestamp_seconds", unix_now_seconds());
            *shared
                .models_loaded_at
                .lock()
                .expect("models_loaded_at poisoned") = Instant::now();
            let mut body = String::from("{\"engine\":");
            json::write_escaped(&mut body, &shared.cache.engine().label());
            body.push_str(",\"new_artifacts\":[");
            for (i, id) in new_ids.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                json::write_escaped(&mut body, id);
            }
            body.push_str("]}\n");
            Response::json(200, body)
        }
        Err(e) => Response::error_json(500, &format!("reload failed: {e}")),
    }
}

/// Optional `POST /reload` body: `{"engine":"interpreted"|"compiled"}`
/// switches the engine newly built predictors use. An empty body (the
/// common case) keeps the current engine.
fn parse_reload_body(body: &[u8]) -> std::result::Result<Option<Engine>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    let value = json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    match value.get("engine") {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Engine::parse(s)
            .map(Some)
            .ok_or_else(|| format!("unknown engine '{s}' (expected 'interpreted' or 'compiled')")),
        Some(_) => Err("'engine' must be a string".to_string()),
    }
}

fn shutdown(shared: &Shared) -> Response {
    shared.flight.record("shutdown", "POST /shutdown", None);
    shared.request_shutdown();
    Response::json(200, "{\"status\":\"shutting down\"}\n".to_string())
}

/// Parsed body of `POST /predict`.
struct PredictRequest {
    artifact: Option<String>,
    scenario: Option<String>,
    model: Option<String>,
    columns: Option<Vec<String>>,
    rows: Vec<Vec<f64>>,
}

fn predict(
    shared: &Shared,
    submitter: Option<&BatchSubmitter>,
    request: &Request,
    ctx: &DeferredReply,
) -> Routed {
    let parsed = match parse_predict_body(&request.body) {
        Ok(parsed) => parsed,
        Err(message) => return Response::error_json(400, &message).into(),
    };

    // Resolve which artifact to run.
    let entry = if let Some(id) = &parsed.artifact {
        match shared.cache.entry(id) {
            Some(entry) => entry,
            None => {
                return Response::error_json(404, &format!("no artifact with id '{id}'")).into()
            }
        }
    } else if let Some(scenario) = &parsed.scenario {
        match shared
            .cache
            .resolve_latest(scenario, parsed.model.as_deref())
        {
            Some(entry) => entry,
            None => {
                let family = parsed.model.as_deref().unwrap_or("any");
                return Response::error_json(
                    404,
                    &format!("no artifact for scenario '{scenario}' (family: {family})"),
                )
                .into();
            }
        }
    } else {
        return Response::error_json(400, "body must name either 'artifact' or 'scenario'").into();
    };

    let predictor = match shared.cache.predictor(&entry.id) {
        Ok(predictor) => predictor,
        Err(e) => {
            return Response::error_json(500, &format!("failed to load artifact: {e}")).into()
        }
    };

    // Validate against the stored schema *before* coalescing so batch
    // errors can only ever be infrastructure faults, and schema errors
    // carry the exhaustive column diagnosis verbatim.
    if let Some(columns) = &parsed.columns {
        let names: Vec<&str> = columns.iter().map(String::as_str).collect();
        if let Err(e) = predictor.validate_columns(&names) {
            let message = match e {
                StoreError::Schema(schema) => schema.to_string(),
                other => other.to_string(),
            };
            return Response::error_json(400, &message).into();
        }
    }
    let width = predictor.artifact().features.len();
    for (i, row) in parsed.rows.iter().enumerate() {
        if row.len() != width {
            return Response::error_json(
                400,
                &format!(
                    "row {i} has {} values, the model's schema has {width} features",
                    row.len()
                ),
            )
            .into();
        }
        if let Some(c) = row.iter().position(|v| !v.is_finite()) {
            return Response::error_json(
                400,
                &format!(
                    "row {i} has a non-finite value in column '{}'",
                    predictor.artifact().features[c]
                ),
            )
            .into();
        }
    }
    if parsed.rows.is_empty() {
        return Response::error_json(400, "'rows' must contain at least one row").into();
    }

    // A request already carrying a full batch of rows flushes alone by
    // construction — the batcher handoff would only serialise it behind
    // other artifacts' flushes for zero coalescing benefit. Predict it
    // inline on the worker.
    let full_batch = parsed.rows.len() >= shared.max_batch;
    let rows = match submitter {
        Some(submitter) if shared.max_batch > 1 && !full_batch => {
            let job = PredictJob {
                artifact_id: entry.id.clone(),
                scenario: predictor.artifact().scenario.clone(),
                predictor: predictor.clone(),
                rows: parsed.rows,
                reply: ReplySink::Deferred(*ctx),
            };
            match submitter.submit(job) {
                // Handed off; the flush path renders, accounts, and
                // delivers the response. This worker moves on.
                Ok(()) => return Routed::Deferred,
                // Submit only refuses during shutdown drain; serve the
                // straggler inline rather than erroring it.
                Err(job) => job.rows,
            }
        }
        _ => {
            if submitter.is_some() && shared.max_batch > 1 {
                shared.metrics.batch_bypass.inc();
            }
            parsed.rows
        }
    };

    let span = shared
        .tracer
        .as_deref()
        .map(|t| t.span(&predictor.artifact().scenario, "serve.predict"));
    let result = rows_to_forecasts(&predictor, rows);
    drop(span);
    match result {
        Ok(forecasts) => {
            render_predict_response(&entry.id, predictor.artifact(), &forecasts).into()
        }
        Err(message) => Response::error_json(500, &message).into(),
    }
}

/// Direct (unbatched) prediction on the worker thread.
fn rows_to_forecasts(
    predictor: &BatchPredictor,
    rows: Vec<Vec<f64>>,
) -> std::result::Result<Vec<f64>, String> {
    let width = predictor.artifact().features.len().max(1);
    let mut flat = Vec::with_capacity(rows.len() * width);
    for row in &rows {
        flat.extend_from_slice(row);
    }
    c100_ml::data::Matrix::from_row_major(flat, width)
        .map_err(|e| e.to_string())
        .and_then(|m| predictor.predict_matrix(&m).map_err(|e| e.to_string()))
}

/// The `/predict` 200 body, shared by the inline path and the
/// batcher's flush-time delivery so both render bit-identically.
fn render_predict_response(
    artifact_id: &str,
    artifact: &ModelArtifact,
    forecasts: &[f64],
) -> Response {
    let mut body = String::with_capacity(64 + forecasts.len() * 20);
    body.push_str("{\"artifact\":");
    json::write_escaped(&mut body, artifact_id);
    body.push_str(",\"scenario\":");
    json::write_escaped(&mut body, &artifact.scenario);
    body.push_str(",\"model\":");
    json::write_escaped(&mut body, artifact.model.family());
    body.push_str(&format!(",\"rows\":{},\"forecasts\":[", forecasts.len()));
    for (i, v) in forecasts.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        // `Display` formatting, matching the CLI's forecast CSV exactly
        // so `/predict` output diffs clean against `repro predict`.
        body.push_str(&format!("{v}"));
    }
    body.push_str("]}\n");
    Response::json(200, body)
}

fn parse_predict_body(body: &[u8]) -> std::result::Result<PredictRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not valid UTF-8".to_string())?;
    if text.trim().is_empty() {
        return Err("empty body; expected a JSON object".to_string());
    }
    let value = json::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;

    let opt_str = |key: &str| -> std::result::Result<Option<String>, String> {
        match value.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(Value::String(s)) => Ok(Some(s.clone())),
            Some(_) => Err(format!("'{key}' must be a string")),
        }
    };
    let artifact = opt_str("artifact")?;
    let scenario = opt_str("scenario")?;
    let model = opt_str("model")?;

    let columns = match value.get("columns") {
        None | Some(Value::Null) => None,
        Some(Value::Array(items)) => {
            let mut names = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Value::String(s) => names.push(s.clone()),
                    _ => return Err("'columns' must be an array of strings".to_string()),
                }
            }
            Some(names)
        }
        Some(_) => return Err("'columns' must be an array of strings".to_string()),
    };

    let rows = match value.get("rows") {
        Some(Value::Array(items)) => {
            let mut rows = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let Value::Array(cells) = item else {
                    return Err(format!("'rows[{i}]' must be an array of numbers"));
                };
                let mut row = Vec::with_capacity(cells.len());
                for cell in cells {
                    match cell {
                        Value::Number(v) => row.push(*v),
                        _ => {
                            return Err(format!("'rows[{i}]' must contain only numbers (no nulls)"))
                        }
                    }
                }
                rows.push(row);
            }
            rows
        }
        _ => return Err("'rows' must be an array of arrays of numbers".to_string()),
    };

    Ok(PredictRequest {
        artifact,
        scenario,
        model,
        columns,
        rows,
    })
}
