//! Batch inference against a loaded artifact.
//!
//! [`BatchPredictor`] is the serving half of the store: it owns a
//! decoded [`ModelArtifact`] and turns validated inputs into forecasts
//! without ever refitting. Validation is strict by design — a frame
//! with missing, extra, or *reordered* columns is rejected outright,
//! because silently reindexing features would feed values into the
//! wrong tree splits and produce confidently wrong forecasts.
//!
//! Every input shape (columnar [`Frame`], row-major
//! [`Matrix`]) funnels into one validated
//! row-major path, which dispatches to the selected [`Engine`]: the
//! interpreted tree walker, or the compiled flat-ensemble backend
//! ([`c100_ml::CompiledEnsemble`], built lazily on first use under a
//! `predict.compile` span). Both engines are bit-identical; the knob
//! trades a one-time flattening cost for faster traversal.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use c100_ml::data::Matrix;
use c100_ml::{CompiledEnsemble, Engine, Predictor};
use c100_obs::{Event, NullObserver, RunObserver, TraceCtx, Tracer};
use c100_timeseries::Frame;
use rayon::prelude::*;

use crate::artifact::ModelArtifact;
use crate::{ReorderedColumn, Result, SchemaError, StoreError};

/// Default rows per parallel prediction chunk. Ensemble traversal is
/// cheap per row, so chunks amortize scheduling overhead; 256 rows per
/// task keeps every core busy even for year-long daily frames.
const DEFAULT_CHUNK_ROWS: usize = 256;

/// Serves batch predictions from a persisted model artifact.
pub struct BatchPredictor {
    artifact: ModelArtifact,
    engine: Engine,
    /// Flattened ensemble, built on first compiled-engine prediction.
    /// Never invalidated: the artifact is immutable, so a compiled form
    /// stays valid even while the knob points at the interpreted engine.
    compiled: OnceLock<CompiledEnsemble>,
    chunk_rows: usize,
    observer: Arc<dyn RunObserver>,
    tracer: Option<Arc<Tracer>>,
}

impl BatchPredictor {
    /// Wraps a decoded artifact for serving with the default
    /// [`Engine`].
    pub fn new(artifact: ModelArtifact) -> BatchPredictor {
        BatchPredictor {
            artifact,
            engine: Engine::default(),
            compiled: OnceLock::new(),
            chunk_rows: DEFAULT_CHUNK_ROWS,
            observer: Arc::new(NullObserver),
            tracer: None,
        }
    }

    /// Selects the inference engine. Both engines are bit-identical;
    /// see [`Engine`] for why the knob exists.
    pub fn with_engine(mut self, engine: Engine) -> BatchPredictor {
        self.engine = engine;
        self
    }

    /// Overrides the parallel chunk size (clamped to at least 1 row).
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> BatchPredictor {
        self.chunk_rows = chunk_rows.max(1);
        self
    }

    /// Replaces the observer (default: [`NullObserver`]); each batch
    /// then emits [`Event::BatchPredicted`] with rows and latency.
    pub fn with_observer(mut self, observer: Arc<dyn RunObserver>) -> BatchPredictor {
        self.observer = observer;
        self
    }

    /// Installs a span tracer (default: none); each batch then records a
    /// `batch_predict` root span tagged with the artifact's scenario,
    /// with one `predict_chunk` child per parallel chunk. The compiled
    /// engine's one-time flattening records a `predict.compile` span.
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> BatchPredictor {
        self.tracer = Some(tracer);
        self
    }

    /// The artifact being served.
    pub fn artifact(&self) -> &ModelArtifact {
        &self.artifact
    }

    /// The engine predictions run on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Checks a frame's columns against the stored feature schema:
    /// exact names, exact order. On any divergence returns a
    /// [`SchemaError::Mismatch`] naming *every* missing, extra, and
    /// reordered column.
    pub fn validate_frame(&self, frame: &Frame) -> Result<()> {
        self.validate_columns(&frame.column_names())
    }

    /// Column-name form of [`validate_frame`](Self::validate_frame),
    /// for callers (like the inference server) that receive a column
    /// list without building a frame.
    pub fn validate_columns(&self, got: &[&str]) -> Result<()> {
        let want = &self.artifact.features;
        let missing: Vec<String> = want
            .iter()
            .filter(|name| !got.iter().any(|g| g == *name))
            .cloned()
            .collect();
        let extra: Vec<String> = got
            .iter()
            .filter(|g| !want.iter().any(|w| w == *g))
            .map(|g| g.to_string())
            .collect();
        // Ordering only makes sense to report once the sets agree;
        // otherwise positions shift and the list is noise.
        let reordered: Vec<ReorderedColumn> = if missing.is_empty() && extra.is_empty() {
            want.iter()
                .zip(got)
                .enumerate()
                .filter(|(_, (w, g))| w != g)
                .map(|(position, (w, g))| ReorderedColumn {
                    position,
                    expected: w.clone(),
                    found: g.to_string(),
                })
                .collect()
        } else {
            Vec::new()
        };
        if missing.is_empty() && extra.is_empty() && reordered.is_empty() {
            Ok(())
        } else {
            Err(SchemaError::Mismatch {
                missing,
                extra,
                reordered,
            }
            .into())
        }
    }

    /// Predicts one value per frame row. The frame must match the
    /// stored schema exactly and contain no missing values.
    pub fn predict_frame(&self, frame: &Frame) -> Result<Vec<f64>> {
        self.validate_frame(frame)?;
        let n_rows = frame.len();
        let width = self.artifact.features.len();

        // Transpose the columnar frame into a row-major buffer once;
        // the shared validated path then treats it like any other
        // row-major input.
        let mut data = vec![0.0; n_rows * width];
        for (c, name) in self.artifact.features.iter().enumerate() {
            let series = frame
                .column(name)
                .expect("validate_frame guarantees presence");
            for (r, &v) in series.values().iter().enumerate() {
                data[r * width + c] = v;
            }
        }
        self.predict_rows(&data, n_rows)
    }

    /// Predicts one value per matrix row; the matrix width must match
    /// the stored feature schema.
    pub fn predict_matrix(&self, x: &Matrix) -> Result<Vec<f64>> {
        let width = self.artifact.features.len();
        if x.n_features() != width {
            return Err(StoreError::Ml(c100_ml::MlError::BadInput(format!(
                "matrix has {} features, artifact schema has {width}",
                x.n_features()
            ))));
        }
        self.predict_rows(x.as_row_major(), x.n_rows())
    }

    /// The single validated entry point every prediction surface
    /// funnels through: scans the row-major buffer for missing values
    /// (a typed [`SchemaError::MissingValue`] naming column and row),
    /// then hands the clean buffer to the selected engine.
    fn predict_rows(&self, data: &[f64], n_rows: usize) -> Result<Vec<f64>> {
        let width = self.artifact.features.len();
        for (r, row) in data.chunks_exact(width).enumerate() {
            if let Some(c) = row.iter().position(|v| v.is_nan()) {
                return Err(SchemaError::MissingValue {
                    column: self.artifact.features[c].clone(),
                    row: r,
                }
                .into());
            }
        }
        Ok(self.predict_row_major(data, n_rows, width))
    }

    /// Resolves the backend for the selected engine, flattening the
    /// ensemble on the compiled engine's first use.
    fn backend(&self) -> &dyn Predictor {
        match self.engine {
            Engine::Interpreted => &self.artifact.model,
            Engine::Compiled => self.compiled.get_or_init(|| {
                let _compile_span = self
                    .tracer
                    .as_deref()
                    .map(|t| t.span(&self.artifact.scenario, "predict.compile"));
                self.artifact.model.compile()
            }),
        }
    }

    /// Chunked parallel prediction over a validated row-major buffer.
    /// Output order is row order regardless of chunk scheduling, so
    /// results are deterministic under any thread count — and under
    /// either engine, since chunking never changes per-row folds.
    fn predict_row_major(&self, data: &[f64], n_rows: usize, width: usize) -> Vec<f64> {
        let started = Instant::now();
        let backend = self.backend();
        let batch_span = self
            .tracer
            .as_deref()
            .map(|t| t.span(&self.artifact.scenario, "batch_predict"));
        let chunk_ctx = batch_span
            .as_ref()
            .map_or(TraceCtx::disabled(), |span| span.ctx());
        let mut preds = vec![0.0; n_rows];
        preds
            .par_chunks_mut(self.chunk_rows)
            .enumerate()
            .for_each(|(chunk_idx, out)| {
                let _chunk_span = chunk_ctx.span("predict_chunk");
                let base = chunk_idx * self.chunk_rows;
                backend.predict_batch(&data[base * width..(base + out.len()) * width], width, out);
            });
        drop(batch_span);
        self.observer.on_event(&Event::BatchPredicted {
            scenario: self.artifact.scenario.clone(),
            model: self.artifact.model.family().to_string(),
            rows: n_rows,
            micros: started.elapsed().as_micros() as u64,
        });
        preds
    }
}
