//! Crypto100 index construction and scaling-factor tuning: reproduces the
//! paper's Figure 2 analysis and exports the series as CSV.
//!
//! ```text
//! cargo run --release -p c100-core --example index_construction
//! ```

use c100_core::index::{crypto100_value, power_comparison, Crypto100Builder};
use c100_core::report::sparkline;

fn main() {
    let data = c100_synth::generate(&c100_synth::SynthConfig::small(3));
    let universe = &data.universe;

    // The raw ingredient: the top-100 cap sum dominates the total market.
    let shares = universe.top100_share();
    println!("top-100 share of total market cap (Figure 1's argument):");
    println!("  {}", sparkline(&shares, 60));
    println!(
        "  min {:.3}, max {:.3}\n",
        c100_timeseries::stats::min(&shares),
        c100_timeseries::stats::max(&shares)
    );

    // The scaling factor: divide by (log10 cap)^power.
    let cap = universe.top100_cap[universe.n_days() / 2];
    println!("scaling a top-100 cap of {cap:.3e}:");
    for power in [5.0, 6.0, 7.0, 8.0] {
        println!(
            "  power {power}: index value {:>14.2}",
            crypto100_value(cap, power)
        );
    }

    // The paper's tuning: power 7 makes the index comparable to BTC.
    println!("\npower comparison against the BTC price:");
    let comparisons =
        power_comparison(universe, &data.btc.close, &[6.0, 7.0, 8.0]).expect("power comparison");
    for c in &comparisons {
        println!(
            "  power {}: mean index/BTC ratio {:>9.4}, correlation {:.4}",
            c.power, c.mean_ratio_to_btc, c.correlation_with_btc
        );
    }

    // Build the final index and write it next to BTC for plotting.
    let index = Crypto100Builder::default().build(universe);
    println!("\nCrypto100 (power 7):");
    println!("  {}", sparkline(index.values(), 60));
    println!("BTC close:");
    println!("  {}", sparkline(&data.btc.close, 60));

    let frame = c100_core::index::figure2_frame(universe, &data.btc.close, &[6.0, 7.0, 8.0])
        .expect("figure 2 frame");
    let path = std::path::Path::new("crypto100_series.csv");
    c100_timeseries::csv::write_frame_to_path(&frame, path).expect("write CSV");
    println!("\nwrote {}", path.display());
}
