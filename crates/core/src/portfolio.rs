//! Forecast-driven portfolio application — the paper's "Application in
//! finance" future-work direction, built on the scenario pipeline.
//!
//! A walk-forward timing strategy: every `rebalance_every` days the model
//! is refit on all data seen so far and forecasts the Crypto100 level
//! `window` days ahead; the expected return sets the allocation between
//! the index and cash. The backtest reports the strategy and buy-and-hold
//! equity curves plus the usual risk/return statistics.

use c100_ml::data::Matrix;
use c100_ml::{Estimator, Regressor};

use crate::scenario::ScenarioData;
use crate::{CoreError, Result, CRYPTO100, TARGET};

/// Configuration of the timing backtest.
#[derive(Debug, Clone, Copy)]
pub struct BacktestConfig {
    /// Days between model refits.
    pub rebalance_every: usize,
    /// Fraction of the scenario reserved as the initial training window.
    pub warmup_fraction: f64,
    /// Expected w-day return mapped to full allocation (e.g. 0.10 →
    /// +10% expected return ⇒ 100% invested). Linear in between,
    /// clamped to `[0, 1]` (long-only, unlevered).
    pub full_allocation_return: f64,
}

impl Default for BacktestConfig {
    fn default() -> Self {
        BacktestConfig {
            rebalance_every: 30,
            warmup_fraction: 0.5,
            full_allocation_return: 0.10,
        }
    }
}

/// Result of a timing backtest.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BacktestResult {
    /// Strategy equity curve (starts at 1.0).
    pub strategy_curve: Vec<f64>,
    /// Buy-and-hold equity curve (starts at 1.0).
    pub benchmark_curve: Vec<f64>,
    /// Allocation per day in `[0, 1]`.
    pub allocations: Vec<f64>,
    /// Total strategy return over the test span.
    pub strategy_return: f64,
    /// Total buy-and-hold return.
    pub benchmark_return: f64,
    /// Annualized Sharpe ratio of the strategy (0% risk-free).
    pub strategy_sharpe: f64,
    /// Annualized Sharpe ratio of buy-and-hold.
    pub benchmark_sharpe: f64,
    /// Maximum drawdown of the strategy (fraction, positive).
    pub strategy_max_drawdown: f64,
    /// Maximum drawdown of buy-and-hold.
    pub benchmark_max_drawdown: f64,
}

fn sharpe(daily_returns: &[f64]) -> f64 {
    if daily_returns.len() < 2 {
        return f64::NAN;
    }
    let n = daily_returns.len() as f64;
    let mean = daily_returns.iter().sum::<f64>() / n;
    let var = daily_returns
        .iter()
        .map(|r| (r - mean).powi(2))
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        return 0.0;
    }
    mean / sd * (365.25f64).sqrt()
}

fn max_drawdown(curve: &[f64]) -> f64 {
    let mut peak = f64::MIN;
    let mut worst: f64 = 0.0;
    for &v in curve {
        peak = peak.max(v);
        worst = worst.max(1.0 - v / peak);
    }
    worst
}

/// Runs the walk-forward timing backtest on a prepared scenario with the
/// given feature set and model family.
pub fn timing_backtest<E: Estimator>(
    scenario: &ScenarioData,
    features: &[String],
    estimator: &E,
    config: &BacktestConfig,
    seed: u64,
) -> Result<BacktestResult> {
    if features.is_empty() {
        return Err(CoreError::Pipeline("no features for backtest".into()));
    }
    if config.rebalance_every == 0
        || !(0.0..1.0).contains(&config.warmup_fraction)
        || config.full_allocation_return <= 0.0
    {
        return Err(CoreError::Pipeline(format!(
            "bad backtest config {config:?}"
        )));
    }
    let refs: Vec<&str> = features.iter().map(|s| s.as_str()).collect();
    let full = scenario.frame.to_matrix(&refs, TARGET)?;
    let x = Matrix::from_row_major(full.x.clone(), full.n_features)?;
    let index = scenario
        .frame
        .column(CRYPTO100)
        .ok_or_else(|| CoreError::Pipeline("index column missing".into()))?
        .values()
        .to_vec();

    let n = x.n_rows();
    let start = ((n as f64) * config.warmup_fraction) as usize;
    if start < 30 || start >= n {
        return Err(CoreError::Pipeline(format!(
            "warmup leaves no usable test span ({start} of {n})"
        )));
    }

    let mut strategy_curve = vec![1.0];
    let mut benchmark_curve = vec![1.0];
    let mut allocations = Vec::new();
    let mut strategy_returns = Vec::new();
    let mut benchmark_returns = Vec::new();

    let mut model: Option<E::Model> = None;
    for t in start..n - 1 {
        if (t - start) % config.rebalance_every == 0 {
            let train_rows: Vec<usize> = (0..t).collect();
            let x_train = x.take_rows(&train_rows);
            let y_train: Vec<f64> = train_rows.iter().map(|&i| full.y[i]).collect();
            model = Some(estimator.fit_model(&x_train, &y_train, seed ^ t as u64)?);
        }
        let model = model.as_ref().expect("fit on first iteration");
        // Expected w-day return from the forecast vs today's level.
        let row_in_frame = full.kept_rows[t];
        let level_today = index[row_in_frame];
        let forecast = model.predict_row(x.row(t));
        let expected = forecast / level_today - 1.0;
        let weight = (expected / config.full_allocation_return).clamp(0.0, 1.0);
        allocations.push(weight);

        // Realize the next day's index return.
        let next_level = index[full.kept_rows[t + 1]];
        let daily = next_level / level_today - 1.0;
        let strategy_daily = weight * daily;
        strategy_returns.push(strategy_daily);
        benchmark_returns.push(daily);
        strategy_curve.push(strategy_curve.last().expect("seeded") * (1.0 + strategy_daily));
        benchmark_curve.push(benchmark_curve.last().expect("seeded") * (1.0 + daily));
    }

    Ok(BacktestResult {
        strategy_return: strategy_curve.last().expect("non-empty") - 1.0,
        benchmark_return: benchmark_curve.last().expect("non-empty") - 1.0,
        strategy_sharpe: sharpe(&strategy_returns),
        benchmark_sharpe: sharpe(&benchmark_returns),
        strategy_max_drawdown: max_drawdown(&strategy_curve),
        benchmark_max_drawdown: max_drawdown(&benchmark_curve),
        strategy_curve,
        benchmark_curve,
        allocations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::assemble;
    use crate::profile::Profile;
    use crate::scenario::{build_scenario, Period};
    use c100_synth::{generate, SynthConfig};

    fn scenario() -> ScenarioData {
        let master = assemble(&generate(&SynthConfig::small(161))).unwrap();
        build_scenario(&master, Period::Y2019, 30).unwrap()
    }

    #[test]
    fn sharpe_and_drawdown_basics() {
        // Constant positive returns: huge Sharpe, no drawdown.
        let steady = [0.01; 30];
        assert!(sharpe(&steady) == 0.0 || sharpe(&steady) > 10.0);
        let curve = [1.0, 1.2, 0.9, 1.1, 0.6];
        // Peak 1.2 → trough 0.6 = 50% drawdown.
        assert!((max_drawdown(&curve) - 0.5).abs() < 1e-12);
        assert_eq!(max_drawdown(&[1.0, 1.1, 1.2]), 0.0);
    }

    #[test]
    fn backtest_produces_consistent_curves() {
        let s = scenario();
        let p = Profile::fast();
        let features = s.feature_names.clone();
        let result = timing_backtest(
            &s,
            &features,
            &p.rf_grid[0],
            &BacktestConfig {
                rebalance_every: 60,
                warmup_fraction: 0.6,
                full_allocation_return: 0.1,
            },
            1,
        )
        .unwrap();
        assert_eq!(result.strategy_curve.len(), result.benchmark_curve.len());
        assert_eq!(result.allocations.len(), result.strategy_curve.len() - 1);
        for w in &result.allocations {
            assert!((0.0..=1.0).contains(w));
        }
        // Long-only, unlevered: daily strategy moves never exceed the
        // index moves in magnitude.
        for t in 1..result.strategy_curve.len() {
            let s_move = (result.strategy_curve[t] / result.strategy_curve[t - 1] - 1.0).abs();
            let b_move = (result.benchmark_curve[t] / result.benchmark_curve[t - 1] - 1.0).abs();
            assert!(s_move <= b_move + 1e-12);
        }
        // Drawdown of the timed strategy can't exceed buy-and-hold by
        // construction of the clamp... it can in adverse timing, but it
        // must stay a valid fraction.
        assert!((0.0..=1.0).contains(&result.strategy_max_drawdown));
    }

    #[test]
    fn rejects_bad_configs() {
        let s = scenario();
        let p = Profile::fast();
        let features = s.feature_names.clone();
        for config in [
            BacktestConfig {
                rebalance_every: 0,
                ..Default::default()
            },
            BacktestConfig {
                warmup_fraction: 1.5,
                ..Default::default()
            },
            BacktestConfig {
                full_allocation_return: 0.0,
                ..Default::default()
            },
        ] {
            assert!(timing_backtest(&s, &features, &p.rf_grid[0], &config, 0).is_err());
        }
        let empty: Vec<String> = vec![];
        assert!(timing_backtest(&s, &empty, &p.rf_grid[0], &BacktestConfig::default(), 0).is_err());
    }
}
