//! Bounded multi-producer multi-consumer queue built on
//! `Mutex` + `Condvar`.
//!
//! The server uses one instance as its connection backlog: the acceptor
//! [`try_push`](BoundedQueue::try_push)es sockets and treats `Full` as
//! a load-shed signal (respond `503` immediately rather than queue
//! unbounded latency), while workers block in
//! [`pop`](BoundedQueue::pop) until work or shutdown arrives.
//! [`close`](BoundedQueue::close) makes `pop` drain whatever is already
//! queued and then return `None`, which is exactly the graceful-drain
//! behaviour shutdown needs.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] rejected an item; the item is handed
/// back so the caller can respond on it (e.g. write the `503`).
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity — shed load.
    Full(T),
    /// The queue was closed — the server is shutting down.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A bounded FIFO shared between threads. The capacity is adjustable
/// at runtime ([`set_capacity`](BoundedQueue::set_capacity)) so the
/// self-tuner can widen or narrow the backlog under load.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues without blocking. Returns the queue depth after the
    /// push, or the item back inside the error when full or closed.
    pub fn try_push(&self, item: T) -> Result<usize, TryPushError<T>> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= state.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: further pushes fail, poppers drain what is
    /// left and then observe `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue poisoned");
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Current capacity (the shed threshold).
    pub fn capacity(&self) -> usize {
        self.state.lock().expect("queue poisoned").capacity
    }

    /// Rebounds the queue (minimum 1). Shrinking never drops queued
    /// items — an over-capacity backlog simply rejects pushes until
    /// consumers drain it below the new bound.
    pub fn set_capacity(&self, capacity: usize) {
        self.state.lock().expect("queue poisoned").capacity = capacity.max(1);
    }

    /// Current depth (racy by nature; for gauges only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy; for gauges only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_and_returns_the_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(TryPushError::Full(item)) => assert_eq!(item, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn set_capacity_rebounds_without_dropping_items() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(TryPushError::Full(2))));
        q.set_capacity(3);
        assert_eq!(q.capacity(), 3);
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        // Shrinking below the backlog rejects pushes but keeps items.
        q.set_capacity(1);
        assert!(matches!(q.try_push(4), Err(TryPushError::Full(4))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_stops_consumers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        match q.try_push(3) {
            Err(TryPushError::Closed(3)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || q.pop())
            })
            .collect();
        // Give the consumers a moment to block, then close.
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_move_every_item() {
        let q = Arc::new(BoundedQueue::new(4));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..50u32 {
                        let item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(_) => break,
                                Err(TryPushError::Full(_)) => thread::yield_now(),
                                Err(TryPushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u32> = (0..4u32)
            .flat_map(|p| (0..50u32).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
