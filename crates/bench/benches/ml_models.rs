//! Microbenchmarks of the ML substrate: tree/forest/GBDT fitting,
//! prediction, permutation importance and TreeSHAP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::importance::{permutation_importance, PermutationConfig};
use c100_ml::shap::{tree_shap, ShapExplainable};
use c100_ml::tree::{MaxFeatures, TreeConfig};
use c100_ml::Regressor;

fn synthetic_regression(n_rows: usize, n_features: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n_rows);
    let mut y = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let f: Vec<f64> = (0..n_features).map(|_| rng.gen::<f64>()).collect();
        let target = 5.0 * f[0]
            + 3.0 * (f[1] * std::f64::consts::PI).sin()
            + f[2] * f[3 % n_features]
            + 0.1 * rng.gen::<f64>();
        rows.push(f);
        y.push(target);
    }
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn bench_tree_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_fit");
    for &(rows, feats) in &[(500usize, 20usize), (1000, 50)] {
        let data = synthetic_regression(rows, feats, 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{feats}")),
            &data,
            |b, (x, y)| {
                let cfg = TreeConfig {
                    max_depth: Some(10),
                    ..Default::default()
                };
                b.iter(|| cfg.fit(x, y, 0).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_forest_fit(c: &mut Criterion) {
    let (x, y) = synthetic_regression(800, 40, 2);
    c.bench_function("forest_fit_50trees_800x40", |b| {
        let cfg = RandomForestConfig {
            n_estimators: 50,
            max_depth: Some(10),
            max_features: MaxFeatures::Sqrt,
            ..Default::default()
        };
        b.iter(|| cfg.fit(&x, &y, 0).unwrap());
    });
}

fn bench_gbdt_fit(c: &mut Criterion) {
    let (x, y) = synthetic_regression(800, 40, 3);
    c.bench_function("gbdt_fit_50rounds_800x40", |b| {
        let cfg = GbdtConfig {
            n_estimators: 50,
            max_depth: 4,
            colsample_bytree: 0.5,
            ..Default::default()
        };
        b.iter(|| cfg.fit(&x, &y, 0).unwrap());
    });
}

fn bench_predict(c: &mut Criterion) {
    let (x, y) = synthetic_regression(800, 40, 4);
    let forest = RandomForestConfig {
        n_estimators: 50,
        max_depth: Some(10),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("forest_predict_800rows", |b| b.iter(|| forest.predict(&x)));
}

fn bench_permutation_importance(c: &mut Criterion) {
    let (x, y) = synthetic_regression(400, 30, 5);
    let forest = RandomForestConfig {
        n_estimators: 20,
        max_depth: Some(8),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("pfi_30features_3repeats", |b| {
        let cfg = PermutationConfig {
            n_repeats: 3,
            seed: 0,
        };
        b.iter(|| permutation_importance(&forest, &x, &y, &cfg).unwrap());
    });
}

fn bench_tree_shap(c: &mut Criterion) {
    let (x, y) = synthetic_regression(500, 20, 6);
    let fit = TreeConfig {
        max_depth: Some(8),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("treeshap_single_row_depth8", |b| {
        b.iter(|| tree_shap(&fit.tree, x.row(0)))
    });

    let forest = RandomForestConfig {
        n_estimators: 20,
        max_depth: Some(8),
        ..Default::default()
    }
    .fit(&x, &y, 0)
    .unwrap();
    c.bench_function("treeshap_forest_row_20trees", |b| {
        b.iter(|| forest.shap_row(x.row(0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tree_fit, bench_forest_fit, bench_gbdt_fit, bench_predict,
              bench_permutation_importance, bench_tree_shap
}
criterion_main!(benches);
