//! The latent factor model driving every observed metric.
//!
//! All paths are simulated over `warmup + n_days` steps; observed day `t`
//! maps to simulated index `warmup + t` (see [`LatentPaths::obs`]), so
//! factors are stationary and long moving averages are warm on the first
//! observed day.
//!
//! Factor construction uses a "mixture of standardized components" scheme:
//! every building block is standardized to zero mean / unit variance over
//! the simulated window, and composite factors are unit-norm linear
//! combinations of (lagged) parents plus an own AR(1) component. The lags
//! are the causal structure the paper's findings hinge on: macro leads the
//! global trend by ~40 days, traditional markets lead the crypto trend by
//! ~25 days, so those categories only pay off at long horizons.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::SynthConfig;

/// Half-life of the macro factors, days.
pub const HL_MACRO: f64 = 180.0;
/// Half-life of the global trend.
pub const HL_GLOBAL: f64 = 120.0;
/// Half-life of the traditional-market factors.
pub const HL_TRADFI: f64 = 60.0;
/// Half-life of the crypto trend `T`.
pub const HL_TREND: f64 = 90.0;
/// Half-life of the cycle `C`.
pub const HL_CYCLE: f64 = 30.0;
/// Half-life of the momentum `F`.
pub const HL_MOMENTUM: f64 = 3.0;
/// Days by which macro factors lead the global trend.
pub const MACRO_LEAD: usize = 40;
/// Days by which traditional markets lead the crypto trend.
pub const TRADFI_LEAD: usize = 25;

/// Daily return loadings of BTC on the latent factors.
pub const BETA_TREND: f64 = 0.0060;
/// Loading on the cycle.
pub const BETA_CYCLE: f64 = 0.0070;
/// Loading on momentum.
pub const BETA_MOMENTUM: f64 = 0.013;
/// Unconditional daily drift.
pub const DRIFT: f64 = 0.0008;
/// Idiosyncratic daily volatility in the calm regime.
pub const SIGMA_CALM: f64 = 0.030;
/// Idiosyncratic daily volatility in the turbulent regime.
pub const SIGMA_TURB: f64 = 0.065;

/// All simulated latent paths, each `warmup + n_days` long.
#[derive(Debug, Clone, PartialEq)]
pub struct LatentPaths {
    /// Hidden warm-up length; observed day `t` is index `warmup + t`.
    pub warmup: usize,
    /// Number of observed days.
    pub n_days: usize,
    /// Three slow macro factors (rates, inflation, uncertainty drivers).
    pub macro_factors: [Vec<f64>; 3],
    /// Global risk trend fed by lagged macro factors.
    pub global_trend: Vec<f64>,
    /// Two traditional-market factors (equity, dollar) sharing the trend.
    pub tradfi_factors: [Vec<f64>; 2],
    /// Crypto trend `T`, led by traditional markets.
    pub trend: Vec<f64>,
    /// Medium cycle `C` — stablecoin flows observe it almost noiselessly.
    pub cycle: Vec<f64>,
    /// Fast momentum `F`.
    pub momentum: Vec<f64>,
    /// Integrated adoption level `A` (grows over the sample).
    pub adoption: Vec<f64>,
    /// Volatility regime per day: 0 = calm, 1 = turbulent.
    pub regime: Vec<u8>,
    /// BTC daily log-price (anchored near ln(1000) at the first observed
    /// day, like the real market in January 2017).
    pub log_price: Vec<f64>,
    /// BTC daily log-returns (`log_price` first differences).
    pub returns: Vec<f64>,
}

impl LatentPaths {
    /// Simulated index of observed day `t`.
    pub fn obs(&self, t: usize) -> usize {
        self.warmup + t
    }

    /// Total simulated length.
    pub fn n_total(&self) -> usize {
        self.warmup + self.n_days
    }

    /// Slice of a path covering only the observed days.
    pub fn observed<'a>(&self, path: &'a [f64]) -> &'a [f64] {
        &path[self.warmup..]
    }
}

/// AR(1) persistence for a given half-life in days.
pub fn phi_for_half_life(half_life: f64) -> f64 {
    0.5f64.powf(1.0 / half_life)
}

/// Simulates a standardized AR(1)/OU path of length `n`.
fn ou_path(n: usize, half_life: f64, rng: &mut StdRng) -> Vec<f64> {
    let phi = phi_for_half_life(half_life);
    let innovation_sd = (1.0 - phi * phi).sqrt();
    let mut path = Vec::with_capacity(n);
    let mut x = gaussian(rng); // start in the stationary distribution
    path.push(x);
    for _ in 1..n {
        x = phi * x + innovation_sd * gaussian(rng);
        path.push(x);
    }
    standardize(&mut path);
    path
}

/// Standard normal via Box–Muller (keeps deps at `rand` alone).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// In-place standardization to zero mean, unit variance.
pub(crate) fn standardize(values: &mut [f64]) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    let sd = var.sqrt().max(f64::MIN_POSITIVE);
    for v in values {
        *v = (*v - mean) / sd;
    }
}

/// Unit-norm combination `a·x_lagged + b·own` followed by standardization.
fn combine_lagged(parent: &[f64], own: &[f64], weight: f64, lag: usize) -> Vec<f64> {
    let a = weight;
    let b = (1.0 - weight * weight).sqrt();
    let mut out: Vec<f64> = (0..own.len())
        .map(|t| a * parent[t.saturating_sub(lag)] + b * own[t])
        .collect();
    standardize(&mut out);
    out
}

/// Simulates every latent path for the configuration.
pub fn simulate(config: &SynthConfig) -> LatentPaths {
    let n = config.warmup_days + config.n_days();
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0xA24B_AED4_963E_E407));

    let macro_factors = [
        ou_path(n, HL_MACRO, &mut rng),
        ou_path(n, HL_MACRO, &mut rng),
        ou_path(n, HL_MACRO, &mut rng),
    ];
    let mut macro_mix: Vec<f64> = (0..n)
        .map(|t| macro_factors.iter().map(|f| f[t]).sum::<f64>() / 3.0)
        .collect();
    standardize(&mut macro_mix);

    let global_own = ou_path(n, HL_GLOBAL, &mut rng);
    let global_trend = combine_lagged(&macro_mix, &global_own, 0.6, MACRO_LEAD);

    let tradfi_factors = [
        combine_lagged(&global_trend, &ou_path(n, HL_TRADFI, &mut rng), 0.7, 0),
        combine_lagged(&global_trend, &ou_path(n, HL_TRADFI, &mut rng), 0.7, 0),
    ];
    let mut tradfi_mix: Vec<f64> = (0..n)
        .map(|t| (tradfi_factors[0][t] + tradfi_factors[1][t]) / 2.0)
        .collect();
    standardize(&mut tradfi_mix);

    let trend = combine_lagged(
        &tradfi_mix,
        &ou_path(n, HL_TREND, &mut rng),
        0.55,
        TRADFI_LEAD,
    );
    let cycle = ou_path(n, HL_CYCLE, &mut rng);
    let momentum = ou_path(n, HL_MOMENTUM, &mut rng);

    // Adoption: integrated growth, slightly pro-cyclical.
    let mut adoption = Vec::with_capacity(n);
    let mut a = 0.0;
    for &trend_t in trend.iter().take(n) {
        a += 0.0015 + 0.0020 * trend_t + 0.0015 * gaussian(&mut rng);
        adoption.push(a);
    }

    // Two-state volatility regime.
    let mut regime = Vec::with_capacity(n);
    let mut state = 0u8;
    for _ in 0..n {
        let p: f64 = rng.gen();
        state = match state {
            0 if p < 0.015 => 1,
            1 if p < 0.050 => 0,
            s => s,
        };
        regime.push(state);
    }

    // BTC log-price: returns load on yesterday's factor values.
    let mut returns = Vec::with_capacity(n);
    let mut log_price = Vec::with_capacity(n);
    let mut lp = 0.0; // anchored after the loop
    for (t, &regime_t) in regime.iter().enumerate().take(n) {
        let tm1 = t.saturating_sub(1);
        let sigma = if regime_t == 1 {
            SIGMA_TURB
        } else {
            SIGMA_CALM
        };
        let r = DRIFT
            + BETA_TREND * trend[tm1]
            + BETA_CYCLE * cycle[tm1]
            + BETA_MOMENTUM * momentum[tm1]
            + sigma * gaussian(&mut rng);
        returns.push(r);
        lp += r;
        log_price.push(lp);
    }
    // Anchor the first *observed* day near ln(1000) ≈ BTC in Jan 2017.
    let anchor = 1000.0f64.ln() - log_price[config.warmup_days.min(n - 1)];
    for v in &mut log_price {
        *v += anchor;
    }

    LatentPaths {
        warmup: config.warmup_days,
        n_days: config.n_days(),
        macro_factors,
        global_trend,
        tradfi_factors,
        trend,
        cycle,
        momentum,
        adoption,
        regime,
        log_price,
        returns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SynthConfig {
        SynthConfig::small(3)
    }

    fn sample_corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma).powi(2)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb).powi(2)).sum();
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn paths_have_expected_length() {
        let cfg = config();
        let paths = simulate(&cfg);
        let n = cfg.warmup_days + cfg.n_days();
        assert_eq!(paths.n_total(), n);
        assert_eq!(paths.trend.len(), n);
        assert_eq!(paths.log_price.len(), n);
        assert_eq!(paths.observed(&paths.trend).len(), cfg.n_days());
        assert_eq!(paths.obs(0), cfg.warmup_days);
    }

    #[test]
    fn factors_are_standardized() {
        let paths = simulate(&config());
        for path in [
            &paths.trend,
            &paths.cycle,
            &paths.momentum,
            &paths.global_trend,
        ] {
            let n = path.len() as f64;
            let mean = path.iter().sum::<f64>() / n;
            let var = path.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_decorrelates_faster_than_trend() {
        let paths = simulate(&SynthConfig {
            seed: 5,
            ..SynthConfig::default()
        });
        let lag = 30;
        let auto = |p: &[f64]| sample_corr(&p[..p.len() - lag], &p[lag..]);
        let trend_auto = auto(&paths.trend);
        let momentum_auto = auto(&paths.momentum);
        assert!(trend_auto > 0.5, "trend 30d autocorr {trend_auto}");
        assert!(momentum_auto < 0.2, "momentum 30d autocorr {momentum_auto}");
    }

    #[test]
    fn tradfi_leads_crypto_trend() {
        let paths = simulate(&SynthConfig {
            seed: 11,
            ..SynthConfig::default()
        });
        let lead = TRADFI_LEAD;
        let mut mix: Vec<f64> = (0..paths.n_total())
            .map(|t| (paths.tradfi_factors[0][t] + paths.tradfi_factors[1][t]) / 2.0)
            .collect();
        standardize(&mut mix);
        // Correlation of tradfi(t) with trend(t + lead) should beat the
        // reverse direction (trend(t) with tradfi(t + lead)).
        let forward = sample_corr(&mix[..mix.len() - lead], &paths.trend[lead..]);
        let backward = sample_corr(&paths.trend[..mix.len() - lead], &mix[lead..]);
        assert!(
            forward > backward,
            "forward {forward} should exceed backward {backward}"
        );
        assert!(forward > 0.3, "forward lead correlation {forward}");
    }

    #[test]
    fn returns_are_factor_predictable() {
        // Aggregate 60-day forward returns should correlate with the trend.
        let paths = simulate(&SynthConfig {
            seed: 13,
            ..SynthConfig::default()
        });
        let w = 60;
        let n = paths.n_total() - w;
        let fwd: Vec<f64> = (0..n)
            .map(|t| paths.log_price[t + w] - paths.log_price[t])
            .collect();
        let corr = sample_corr(&paths.trend[..n], &fwd);
        assert!(corr > 0.2, "trend → 60d forward return corr {corr}");
    }

    #[test]
    fn adoption_grows() {
        let paths = simulate(&config());
        let first = paths.adoption[paths.obs(0)];
        let last = *paths.adoption.last().unwrap();
        assert!(last > first);
    }

    #[test]
    fn regime_visits_both_states() {
        let paths = simulate(&SynthConfig::default());
        let turb: usize = paths.regime.iter().map(|&r| r as usize).sum();
        let frac = turb as f64 / paths.regime.len() as f64;
        assert!(frac > 0.05 && frac < 0.6, "turbulent fraction {frac}");
    }

    #[test]
    fn first_observed_price_is_anchored() {
        let cfg = config();
        let paths = simulate(&cfg);
        let p0 = paths.log_price[paths.obs(0)].exp();
        assert!((p0 - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn phi_half_life_property() {
        let phi = phi_for_half_life(30.0);
        assert!((phi.powf(30.0) - 0.5).abs() < 1e-12);
    }
}
