//! End-to-end observability: a real `Profile::fast()` pipeline run must
//! emit the documented event sequence, round-trip through the JSONL
//! sink, and aggregate into sane metrics.

use std::sync::Arc;

use c100_core::context::RunContext;
use c100_core::dataset::assemble;
use c100_core::pipeline::{run_scenario_with, ScenarioSpec};
use c100_core::profile::Profile;
use c100_core::scenario::Period;
use c100_obs::{
    Event, Fanout, JsonlObserver, MetricsRegistry, RecordingObserver, RunObserver, Stage,
};
use c100_synth::{generate, SynthConfig};

fn run_observed() -> (Vec<Event>, String, c100_obs::MetricsSnapshot) {
    let data = generate(&SynthConfig::small(171));
    let master = assemble(&data).unwrap();
    let profile = Profile::fast().with_seed(17);
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };

    let recorder = Arc::new(RecordingObserver::new());
    let jsonl = Arc::new(JsonlObserver::new(Vec::new()));
    let metrics = Arc::new(MetricsRegistry::new());
    let fanout = Fanout::new()
        .with(recorder.clone() as Arc<dyn RunObserver>)
        .with(jsonl.clone() as Arc<dyn RunObserver>)
        .with(metrics.clone() as Arc<dyn RunObserver>);

    let ctx = RunContext::with_observer(&profile, &fanout);
    let result = run_scenario_with(&master, &spec, &ctx).unwrap();
    assert!(!result.final_features.is_empty());

    let snapshot = metrics.snapshot();
    let events = recorder.take();
    drop(fanout);
    let bytes = Arc::try_unwrap(jsonl)
        .expect("sole JSONL owner")
        .into_inner();
    (events, String::from_utf8(bytes).unwrap(), snapshot)
}

#[test]
fn fast_run_emits_expected_ordered_event_sequence() {
    let (events, jsonl_text, snapshot) = run_observed();

    // --- Ordered skeleton -------------------------------------------------
    // scenario_started, then tune / fra / shap / final_fit stage pairs in
    // pipeline order, then scenario_finished — with the stage-specific
    // events strictly inside their brackets.
    let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
    assert_eq!(kinds.first(), Some(&"scenario_started"));
    assert_eq!(kinds.last(), Some(&"scenario_finished"));

    let pos = |kind: &str| kinds.iter().position(|k| *k == kind).unwrap();
    let stage_bounds = |stage: Stage| {
        let start = events
            .iter()
            .position(|e| matches!(e, Event::StageStarted { stage: s, .. } if *s == stage))
            .unwrap_or_else(|| panic!("no stage_started for {}", stage.label()));
        let end = events
            .iter()
            .position(|e| matches!(e, Event::StageFinished { stage: s, .. } if *s == stage))
            .unwrap_or_else(|| panic!("no stage_finished for {}", stage.label()));
        assert!(start < end, "{} brackets inverted", stage.label());
        (start, end)
    };

    let tune = stage_bounds(Stage::Tune);
    let fra = stage_bounds(Stage::Fra);
    let shap = stage_bounds(Stage::Shap);
    let final_fit = stage_bounds(Stage::FinalFit);
    assert!(tune.1 < fra.0, "tune finishes before fra starts");
    assert!(fra.1 < shap.0, "fra finishes before shap starts");
    assert!(
        shap.1 < final_fit.0,
        "shap finishes before final fit starts"
    );

    // Grid events live inside the tune bracket: one score per candidate
    // plus a summary, for each model family.
    let grid_scored: Vec<usize> = kinds
        .iter()
        .enumerate()
        .filter(|(_, k)| **k == "grid_candidate_scored")
        .map(|(i, _)| i)
        .collect();
    let profile = Profile::fast();
    assert_eq!(
        grid_scored.len(),
        profile.rf_grid.len() + profile.gbdt_grid.len()
    );
    for i in &grid_scored {
        assert!(tune.0 < *i && *i < tune.1, "grid score outside tune stage");
    }
    let grid_finished = events
        .iter()
        .filter(|e| matches!(e, Event::GridSearchFinished { .. }))
        .count();
    assert_eq!(grid_finished, 2, "one grid summary per model family");

    // FRA iterations inside the FRA bracket, numbered 0.. in order.
    let fra_iters: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::FraIteration { .. }))
        .collect();
    assert!(!fra_iters.is_empty());
    for (n, e) in fra_iters.iter().enumerate() {
        if let Event::FraIteration { iteration, .. } = e {
            assert_eq!(*iteration, n);
        }
    }
    let shap_sampled = pos("shap_sampled");
    assert!(shap.0 < shap_sampled && shap_sampled < shap.1);

    // Every event carries the scenario id (grid events via their scope).
    for e in &events {
        match e {
            Event::GridCandidateScored { scope, .. } | Event::GridSearchFinished { scope, .. } => {
                assert!(scope.starts_with("2019_7:"), "scope {scope}");
            }
            other => assert_eq!(other.scenario(), Some("2019_7")),
        }
    }

    // --- JSONL round-trip -------------------------------------------------
    let reparsed: Vec<Event> = jsonl_text
        .lines()
        .map(|l| Event::parse_json_line(l).unwrap())
        .collect();
    assert_eq!(reparsed, events);

    // --- Metrics aggregation ----------------------------------------------
    assert_eq!(snapshot.counters["events_total"], events.len() as u64);
    assert_eq!(snapshot.counters["scenarios_finished_total"], 1);
    assert_eq!(
        snapshot.counters["fra_iterations_total"],
        fra_iters.len() as u64
    );
    assert_eq!(
        snapshot.counters["grid_candidates_total"],
        grid_scored.len() as u64
    );
    // Stage durations nest inside the scenario total.
    let scenario_micros = snapshot.histograms["scenario_micros"].sum_micros;
    for stage in ["tune", "fra", "shap", "final_fit"] {
        let h = &snapshot.histograms[&format!("stage.{stage}_micros")];
        assert_eq!(h.count, 1);
        assert!(
            h.sum_micros <= scenario_micros,
            "stage {stage} longer than its scenario"
        );
    }
}
