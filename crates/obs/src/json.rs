//! Minimal JSON support for the event log: a flat-object writer and a
//! small recursive-descent parser.
//!
//! The observability layer sits at the bottom of the workspace dependency
//! graph, so it hand-rolls the tiny JSON subset it needs instead of
//! pulling in serde. The writer emits exactly the shape
//! [`crate::Event::to_json_line`] needs (one flat object per line); the
//! parser accepts arbitrary JSON values so logs written by future
//! versions (or other tools) still load.

use std::collections::BTreeMap;
use std::fmt;

/// Error produced when parsing or interpreting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    pub(crate) fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`; integers up to 2⁵³ are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; keys are sorted (BTreeMap) for deterministic iteration.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn req(&self, key: &str) -> Result<&Value, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field {key:?}")))
    }

    /// A required string field.
    pub fn req_str(&self, key: &str) -> Result<&str, JsonError> {
        match self.req(key)? {
            Value::String(s) => Ok(s),
            other => Err(JsonError::new(format!(
                "field {key:?} is not a string: {other:?}"
            ))),
        }
    }

    /// A required boolean field.
    pub fn req_bool(&self, key: &str) -> Result<bool, JsonError> {
        match self.req(key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(JsonError::new(format!(
                "field {key:?} is not a bool: {other:?}"
            ))),
        }
    }

    /// A required non-negative integer field (exact below 2⁵³).
    pub fn req_uint(&self, key: &str) -> Result<u64, JsonError> {
        match self.req(key)? {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Ok(*n as u64)
            }
            other => Err(JsonError::new(format!(
                "field {key:?} is not a non-negative integer: {other:?}"
            ))),
        }
    }

    /// A required float field; JSON `null` reads back as NaN (the writer
    /// encodes non-finite floats as `null`).
    pub fn req_float(&self, key: &str) -> Result<f64, JsonError> {
        match self.req(key)? {
            Value::Number(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            other => Err(JsonError::new(format!(
                "field {key:?} is not a number: {other:?}"
            ))),
        }
    }
}

/// Appends `s` to `out` as a JSON string literal.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float to `out`; non-finite values become `null`.
pub fn write_float(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that parses back to
        // the same f64 (and is valid JSON for finite values).
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Builder for one flat JSON object (the shape of every event line).
#[derive(Debug, Default)]
pub struct Writer {
    out: String,
    needs_comma: bool,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Opens the object.
    pub fn begin(&mut self) {
        self.out.push('{');
        self.needs_comma = false;
    }

    fn key(&mut self, key: &str) {
        if self.needs_comma {
            self.out.push(',');
        }
        write_escaped(&mut self.out, key);
        self.out.push(':');
        self.needs_comma = true;
    }

    /// Writes a string field.
    pub fn str_field(&mut self, key: &str, value: &str) {
        self.key(key);
        write_escaped(&mut self.out, value);
    }

    /// Writes an unsigned-integer field.
    pub fn uint_field(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Writes a float field (`null` for non-finite values).
    pub fn float_field(&mut self, key: &str, value: f64) {
        self.key(key);
        write_float(&mut self.out, value);
    }

    /// Writes a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Closes the object.
    pub fn end(&mut self) {
        self.out.push('}');
    }

    /// Returns the serialized object.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected literal {lit:?} at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.expect_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.expect_literal("null").map(|_| Value::Null),
            Some(_) => self.number(),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // logs (the writer never emits them) but
                            // handle lone BMP code points properly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError::new("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => return Err(JsonError::new("control character in string")),
                None => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| JsonError::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}").unwrap();
        assert_eq!(v.req_str("c").unwrap(), "x");
        match v.get("a").unwrap() {
            Value::Array(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{2603}";
        let mut out = String::new();
        write_escaped(&mut out, nasty);
        assert_eq!(parse(&out).unwrap(), Value::String(nasty.to_string()));
    }

    #[test]
    fn floats_round_trip_or_become_null() {
        for v in [0.0, -1.5, 1e-300, 123456789.123456, f64::MAX] {
            let mut out = String::new();
            write_float(&mut out, v);
            assert_eq!(parse(&out).unwrap(), Value::Number(v), "for {v}");
        }
        let mut out = String::new();
        write_float(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn uint_bounds_are_enforced() {
        let v = parse("{\"n\":-1,\"m\":1.5,\"k\":7}").unwrap();
        assert!(v.req_uint("n").is_err());
        assert!(v.req_uint("m").is_err());
        assert_eq!(v.req_uint("k").unwrap(), 7);
    }

    #[test]
    fn escaped_unicode_decodes_bmp_code_points() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\\u2603\"").unwrap(),
            Value::String("Aé☃".into())
        );
        // Mixed escapes and raw multi-byte UTF-8 in one string.
        assert_eq!(
            parse("\"snow\\u2603man ☃\"").unwrap(),
            Value::String("snow☃man ☃".into())
        );
        // Case-insensitive hex digits.
        assert_eq!(parse("\"\\u00E9\"").unwrap(), Value::String("é".into()));
        // \u0000 is a valid (if unusual) code point.
        assert_eq!(parse("\"\\u0000\"").unwrap(), Value::String("\0".into()));
    }

    #[test]
    fn invalid_unicode_escapes_are_rejected() {
        // Lone surrogate: not a valid char.
        assert!(parse("\"\\ud800\"").is_err());
        // Truncated and malformed hex.
        assert!(parse("\"\\u12\"").is_err());
        assert!(parse("\"\\uzzzz\"").is_err());
    }

    #[test]
    fn nested_objects_with_unknown_fields_parse_and_are_ignored() {
        // Forward compat: a future writer may add fields (including
        // nested structures) that today's readers don't know. The
        // parser must keep them, and typed lookups of known fields must
        // be unaffected.
        let line = "{\"kind\":\"stage_finished\",\"scenario\":\"2019_7\",\
                    \"micros\":12,\"new_nested\":{\"a\":[1,{\"b\":2}],\"c\":null},\
                    \"new_flag\":true}";
        let v = parse(line).unwrap();
        assert_eq!(v.req_str("kind").unwrap(), "stage_finished");
        assert_eq!(v.req_uint("micros").unwrap(), 12);
        assert!(v.get("new_nested").unwrap().get("c").is_some());
    }

    #[test]
    fn truncated_lines_fail_cleanly() {
        // Every strict prefix of a valid event line must error (never
        // panic, never silently succeed) — this is what a reader sees
        // when a run is killed mid-write.
        let line =
            "{\"kind\":\"run_finished\",\"scenarios\":10,\"micros\":987654,\"note\":\"a\\u2603b\"}";
        assert!(parse(line).is_ok());
        for cut in 1..line.len() {
            if !line.is_char_boundary(cut) {
                continue;
            }
            assert!(
                parse(&line[..cut]).is_err(),
                "prefix of length {cut} must not parse"
            );
        }
    }
}
