//! The ML substrate exercised on synthetic market data: these tests pin
//! the *predictive structure* of the simulator — the property every
//! experiment in the paper depends on.

use c100_core::dataset::assemble;
use c100_core::scenario::{build_scenario, Period};
use c100_integration::small_market;
use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::metrics::mse;
use c100_ml::tree::MaxFeatures;
use c100_ml::Regressor;

fn matrices(window: usize, features: &[&str], seed: u64) -> (Matrix, Vec<f64>, Matrix, Vec<f64>) {
    let data = small_market(seed);
    let master = assemble(&data).unwrap();
    let scenario = build_scenario(&master, Period::Y2019, window).unwrap();
    let all: Vec<&str>;
    let used: Vec<&str> = if features.is_empty() {
        all = scenario.feature_names.iter().map(|s| s.as_str()).collect();
        all.clone()
    } else {
        features.to_vec()
    };
    let train = scenario.train_matrix(&used).unwrap();
    let test = scenario.test_matrix(&used).unwrap();
    (
        Matrix::from_row_major(train.x.clone(), train.n_features).unwrap(),
        train.y,
        Matrix::from_row_major(test.x.clone(), test.n_features).unwrap(),
        test.y,
    )
}

fn mean_baseline_mse(y_train: &[f64], y_test: &[f64]) -> f64 {
    let mean = y_train.iter().sum::<f64>() / y_train.len() as f64;
    mse(y_test, &vec![mean; y_test.len()])
}

#[test]
fn forest_beats_mean_baseline_on_short_horizon() {
    let (x_train, y_train, x_test, y_test) = matrices(7, &[], 301);
    let model = RandomForestConfig {
        n_estimators: 30,
        max_depth: Some(10),
        max_features: MaxFeatures::All,
        ..Default::default()
    }
    .fit(&x_train, &y_train, 1)
    .unwrap();
    let model_mse = mse(&y_test, &model.predict(&x_test));
    let baseline = mean_baseline_mse(&y_train, &y_test);
    assert!(
        model_mse < baseline * 0.5,
        "forest {model_mse:.3e} vs baseline {baseline:.3e}"
    );
}

#[test]
fn gbdt_beats_mean_baseline_on_short_horizon() {
    let (x_train, y_train, x_test, y_test) = matrices(7, &[], 302);
    let model = GbdtConfig {
        n_estimators: 40,
        learning_rate: 0.2,
        max_depth: 4,
        colsample_bytree: 0.5,
        ..Default::default()
    }
    .fit(&x_train, &y_train, 2)
    .unwrap();
    let model_mse = mse(&y_test, &model.predict(&x_test));
    let baseline = mean_baseline_mse(&y_train, &y_test);
    assert!(
        model_mse < baseline * 0.5,
        "gbdt {model_mse:.3e} vs baseline {baseline:.3e}"
    );
}

#[test]
fn level_features_forecast_better_than_pure_sentiment_short_term() {
    // The market-cap feature knows today's level; sentiment does not.
    // For a 7-day horizon the level is almost the whole answer.
    let (x_lvl_train, y_train, x_lvl_test, y_test) =
        matrices(7, &["market_cap", "CapRealUSD"], 303);
    let (x_sent_train, _, x_sent_test, _) =
        matrices(7, &["tweet_volume", "reddit_posts", "news_volume"], 303);

    let cfg = RandomForestConfig {
        n_estimators: 25,
        max_depth: Some(8),
        ..Default::default()
    };
    let lvl = cfg.fit(&x_lvl_train, &y_train, 3).unwrap();
    let sent = cfg.fit(&x_sent_train, &y_train, 3).unwrap();
    let lvl_mse = mse(&y_test, &lvl.predict(&x_lvl_test));
    let sent_mse = mse(&y_test, &sent.predict(&x_sent_test));
    // The chronological test fold sits at the end of the series, where
    // tree models clamp to the training range — that compresses the gap,
    // but the level features must still win.
    assert!(
        lvl_mse * 1.2 < sent_mse,
        "level {lvl_mse:.3e} should beat sentiment {sent_mse:.3e}"
    );
}

#[test]
fn model_error_grows_with_horizon() {
    // Relative error (vs the mean baseline) must grow with the window:
    // the further out, the less predictable.
    let cfg = RandomForestConfig {
        n_estimators: 25,
        max_depth: Some(10),
        max_features: MaxFeatures::All,
        ..Default::default()
    };
    let mut relative = Vec::new();
    for window in [1, 30, 90] {
        let (x_train, y_train, x_test, y_test) = matrices(window, &[], 304);
        let model = cfg.fit(&x_train, &y_train, 4).unwrap();
        let model_mse = mse(&y_test, &model.predict(&x_test));
        relative.push(model_mse / mean_baseline_mse(&y_train, &y_test));
    }
    assert!(
        relative[0] < relative[2],
        "1-day relative error {} should be below 90-day {}",
        relative[0],
        relative[2]
    );
}

#[test]
fn tuned_models_agree_across_families() {
    // RF and GBDT trained on the same scenario should produce positively
    // correlated predictions — a sanity check that both substrates read
    // the same signal.
    let (x_train, y_train, x_test, _) = matrices(30, &[], 305);
    let rf = RandomForestConfig {
        n_estimators: 20,
        ..Default::default()
    }
    .fit(&x_train, &y_train, 5)
    .unwrap();
    let gbdt = GbdtConfig {
        n_estimators: 30,
        max_depth: 4,
        ..Default::default()
    }
    .fit(&x_train, &y_train, 6)
    .unwrap();
    let p1 = rf.predict(&x_test);
    let p2 = gbdt.predict(&x_test);
    // Out-of-range extrapolation differs between the families (bagged
    // means vs boosted sums), so demand clear agreement, not identity.
    let corr = c100_timeseries::stats::pearson(&p1, &p2);
    assert!(corr > 0.5, "cross-family prediction corr {corr}");
}
