//! Bootstrap-aggregated random forest regressor.
//!
//! Mirrors scikit-learn's `RandomForestRegressor`: each tree is grown on a
//! bootstrap resample with per-split feature subsampling; predictions are
//! the mean over trees; MDI importances are the mean of per-tree normalized
//! importances. Trees are fitted in parallel with rayon.

use c100_obs::TraceCtx;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::data::{check_fit_input, BinnedMatrix, Matrix};
use crate::tree::{bootstrap_indices, FittedTree, MaxFeatures, SplitMethod, TreeConfig};
use crate::{Estimator, MlError, Regressor, Result};

/// Hyper-parameters for the random forest; the fields mirror the sklearn
/// names the paper's grid search sweeps (n_estimators, max_depth,
/// min_samples_split, min_samples_leaf, max_features).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_estimators: usize,
    /// Per-tree depth cap; `None` is unlimited.
    pub max_depth: Option<usize>,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
    /// Whether trees see bootstrap resamples (true) or the full data.
    pub bootstrap: bool,
    /// Split-search strategy shared by every tree (see [`SplitMethod`]).
    pub split_method: SplitMethod,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_estimators: 100,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            // sklearn's regressor default is all features; trees then
            // decorrelate through bootstrapping alone.
            max_features: MaxFeatures::All,
            bootstrap: true,
            split_method: SplitMethod::default(),
        }
    }
}

impl RandomForestConfig {
    fn tree_config(&self) -> TreeConfig {
        TreeConfig {
            max_depth: self.max_depth,
            min_samples_split: self.min_samples_split,
            min_samples_leaf: self.min_samples_leaf,
            max_features: self.max_features,
            min_impurity_decrease: 0.0,
            split_method: self.split_method,
        }
    }

    /// Fits the forest; trees are grown in parallel, each from its own
    /// seed derived deterministically from `seed`.
    pub fn fit(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<RandomForest> {
        self.fit_traced(x, y, seed, TraceCtx::disabled())
    }

    /// [`RandomForestConfig::fit`] with span tracing: a `forest_fit` span
    /// wraps the whole fit and each tree records a `tree_fit` child span
    /// on whichever rayon worker grew it. Produces a forest identical to
    /// the untraced fit.
    pub fn fit_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<RandomForest> {
        self.check(x, y)?;
        match self.split_method {
            SplitMethod::Exact => self.fit_trees(x, y, None, seed, trace),
            SplitMethod::Histogram { max_bins } => {
                // Bin once; every tree (and any caller-side refit through
                // `fit_binned_traced`) shares the same code matrix.
                let binning = trace.span("train_binning");
                let binned = BinnedMatrix::from_matrix(x, max_bins)?;
                drop(binning);
                self.fit_trees(x, y, Some(&binned), seed, trace)
            }
        }
    }

    /// [`RandomForestConfig::fit_traced`] against a caller-built
    /// [`BinnedMatrix`]. Grid search, FRA, and importance loops bin once
    /// and share the result across many fits instead of re-binning each
    /// time. Falls back to a fresh fit when the binning doesn't match the
    /// config (wrong budget or shape) or the config is exact.
    pub fn fit_binned_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        binned: &BinnedMatrix,
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<RandomForest> {
        let usable = matches!(
            self.split_method,
            SplitMethod::Histogram { max_bins }
                if binned.max_bins() == max_bins
                    && binned.n_rows() == x.n_rows()
                    && binned.n_features() == x.n_features()
        );
        if !usable {
            return self.fit_traced(x, y, seed, trace);
        }
        self.check(x, y)?;
        self.fit_trees(x, y, Some(binned), seed, trace)
    }

    /// Shared input/config validation for every fit entry point.
    fn check(&self, x: &Matrix, y: &[f64]) -> Result<()> {
        if self.n_estimators == 0 {
            return Err(MlError::BadConfig("n_estimators must be >= 1".into()));
        }
        check_fit_input(x, y)?;
        self.tree_config().validate()
    }

    /// The parallel tree loop; `binned` carries the shared code matrix on
    /// the histogram path, `None` means exact split search.
    fn fit_trees(
        &self,
        x: &Matrix,
        y: &[f64],
        binned: Option<&BinnedMatrix>,
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<RandomForest> {
        let tree_config = self.tree_config();
        // Derive independent per-tree seeds up front so the parallel loop
        // is order-independent.
        let mut seeder = StdRng::seed_from_u64(seed);
        let seeds: Vec<(u64, u64)> = (0..self.n_estimators)
            .map(|_| (seeder.gen(), seeder.gen()))
            .collect();

        // The forest span stays open through importance aggregation; each
        // tree opens a child span on whichever worker thread grows it,
        // linked through the handed-off `tree_ctx`.
        let span = trace.span("forest_fit");
        let tree_ctx = span.ctx();
        let trees: Result<Vec<FittedTree>> = seeds
            .par_iter()
            .map(|&(boot_seed, tree_seed)| {
                let _tree_span = tree_ctx.span("tree_fit");
                let indices = if self.bootstrap {
                    let mut rng = StdRng::seed_from_u64(boot_seed);
                    bootstrap_indices(x.n_rows(), &mut rng)
                } else {
                    (0..x.n_rows()).collect()
                };
                match binned {
                    Some(b) => tree_config.fit_indices_binned(b, y, &indices, tree_seed),
                    None => tree_config.fit_indices(x, y, &indices, tree_seed),
                }
            })
            .collect();
        let trees = trees?;

        let n_features = x.n_features();
        let mut importances = vec![0.0; n_features];
        for t in &trees {
            for (acc, v) in importances.iter_mut().zip(&t.feature_importances) {
                *acc += v;
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in &mut importances {
                *v /= total;
            }
        }
        Ok(RandomForest {
            trees,
            feature_importances: importances,
            n_features,
        })
    }
}

impl Estimator for RandomForestConfig {
    type Model = RandomForest;

    fn fit_model(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<RandomForest> {
        self.fit(x, y, seed)
    }

    fn fit_model_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<RandomForest> {
        self.fit_traced(x, y, seed, trace)
    }

    fn histogram_bins(&self) -> Option<usize> {
        self.split_method.max_bins()
    }

    fn fit_model_binned_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        binned: Option<&crate::data::BinnedMatrix>,
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<RandomForest> {
        match binned {
            Some(b) => self.fit_binned_traced(x, y, b, seed, trace),
            None => self.fit_traced(x, y, seed, trace),
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RandomForest {
    /// The fitted trees.
    pub trees: Vec<FittedTree>,
    /// Mean normalized MDI importance per feature (sums to 1 unless no
    /// tree ever split).
    pub feature_importances: Vec<f64>,
    /// Width of rows this forest was trained on.
    pub n_features: usize,
}

impl RandomForest {
    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across all trees (a size proxy for persistence).
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.tree.n_nodes()).sum()
    }
}

impl Regressor for RandomForest {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.tree.predict_row(row)).sum();
        sum / self.trees.len() as f64
    }

    fn predict_traced(&self, x: &Matrix, trace: TraceCtx<'_>) -> Vec<f64> {
        let span = trace.span("forest_predict");
        let tree_ctx = span.ctx();
        // Accumulate tree-by-tree in the same order `predict_row` sums so
        // the traced path stays bit-identical to the untraced one: each
        // row's sum is a left fold over trees either way.
        let mut acc = vec![0.0; x.n_rows()];
        for t in &self.trees {
            let _tree_span = tree_ctx.span("tree_predict");
            for (r, slot) in acc.iter_mut().enumerate() {
                *slot += t.tree.predict_row(x.row(r));
            }
        }
        let n = self.trees.len() as f64;
        for slot in &mut acc {
            *slot /= n;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn friedman_like(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        // Smooth nonlinear target over 5 features, last 2 pure noise.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let f: Vec<f64> = (0..5).map(|_| rng.gen::<f64>()).collect();
            let target =
                10.0 * (std::f64::consts::PI * f[0] * f[1]).sin() + 20.0 * (f[2] - 0.5).powi(2);
            rows.push(f);
            y.push(target);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn beats_mean_baseline_on_nonlinear_data() {
        let (x, y) = friedman_like(300, 1);
        let (xt, yt) = friedman_like(100, 2);
        let model = RandomForestConfig {
            n_estimators: 50,
            ..Default::default()
        }
        .fit(&x, &y, 3)
        .unwrap();
        let pred = model.predict(&xt);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let baseline = mse(&yt, &vec![mean; yt.len()]);
        let forest_mse = mse(&yt, &pred);
        assert!(
            forest_mse < baseline * 0.3,
            "forest {forest_mse} vs baseline {baseline}"
        );
    }

    #[test]
    fn importances_rank_signal_over_noise() {
        let (x, y) = friedman_like(400, 5);
        let model = RandomForestConfig {
            n_estimators: 40,
            max_features: MaxFeatures::Sqrt,
            ..Default::default()
        }
        .fit(&x, &y, 7)
        .unwrap();
        let imp = &model.feature_importances;
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Features 0..3 carry the signal; 3 and 4 are noise.
        let signal = imp[0] + imp[1] + imp[2];
        let noise = imp[3] + imp[4];
        assert!(signal > 5.0 * noise, "signal {signal} noise {noise}");
    }

    #[test]
    fn deterministic_under_seed_despite_parallelism() {
        let (x, y) = friedman_like(120, 11);
        let cfg = RandomForestConfig {
            n_estimators: 16,
            ..Default::default()
        };
        let a = cfg.fit(&x, &y, 9).unwrap();
        let b = cfg.fit(&x, &y, 9).unwrap();
        let row = vec![0.3, 0.7, 0.1, 0.9, 0.5];
        assert_eq!(a.predict_row(&row), b.predict_row(&row));
        assert_eq!(a.feature_importances, b.feature_importances);
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = friedman_like(120, 11);
        let cfg = RandomForestConfig {
            n_estimators: 8,
            ..Default::default()
        };
        let a = cfg.fit(&x, &y, 1).unwrap();
        let b = cfg.fit(&x, &y, 2).unwrap();
        let row = vec![0.3, 0.7, 0.1, 0.9, 0.5];
        assert_ne!(a.predict_row(&row), b.predict_row(&row));
    }

    #[test]
    fn rejects_zero_estimators() {
        let (x, y) = friedman_like(30, 0);
        let cfg = RandomForestConfig {
            n_estimators: 0,
            ..Default::default()
        };
        assert!(cfg.fit(&x, &y, 0).is_err());
    }

    #[test]
    fn traced_paths_are_bit_identical_and_record_tree_spans() {
        let (x, y) = friedman_like(80, 21);
        let cfg = RandomForestConfig {
            n_estimators: 8,
            ..Default::default()
        };
        let plain = cfg.fit(&x, &y, 4).unwrap();

        let tracer = c100_obs::Tracer::new();
        let root = tracer.span("test", "fit");
        let traced = cfg.fit_traced(&x, &y, 4, root.ctx()).unwrap();
        drop(root);
        assert_eq!(plain, traced);
        assert_eq!(plain.predict(&x), traced.predict_traced(&x, tracer.ctx()));

        let spans = tracer.snapshot();
        assert_eq!(spans.iter().filter(|s| s.name == "tree_fit").count(), 8);
        assert_eq!(spans.iter().filter(|s| s.name == "tree_predict").count(), 8);
        let forest_fit = spans.iter().find(|s| s.name == "forest_fit").unwrap();
        for tree in spans.iter().filter(|s| s.name == "tree_fit") {
            assert_eq!(tree.parent, Some(forest_fit.id));
        }
    }

    #[test]
    fn no_bootstrap_with_all_features_collapses_to_one_tree() {
        let (x, y) = friedman_like(60, 3);
        let cfg = RandomForestConfig {
            n_estimators: 5,
            bootstrap: false,
            max_features: MaxFeatures::All,
            ..Default::default()
        };
        let forest = cfg.fit(&x, &y, 0).unwrap();
        // All trees see identical data and all features: identical trees
        // (the averaged prediction differs only by summation rounding).
        let row = vec![0.2, 0.4, 0.6, 0.8, 0.1];
        let single = forest.trees[0].tree.predict_row(&row);
        for t in &forest.trees {
            assert_eq!(t.tree.predict_row(&row), single);
        }
        assert!((forest.predict_row(&row) - single).abs() < 1e-12);
    }
}
