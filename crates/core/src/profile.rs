//! Compute profiles: the same pipeline at different costs.
//!
//! The paper's grid search sweeps "parameters relevant to tree structures
//! like number of estimators, maximum depth, sample splits, etc." — a full
//! sweep is expensive, so the profile bundles the grid, forest sizes and
//! sampling counts. `Profile::full()` is what the reproduction binary
//! uses; `Profile::fast()` keeps tests and examples quick on the same code
//! path.

use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::tree::{MaxFeatures, SplitMethod};

/// All knobs controlling pipeline cost.
#[derive(Debug, Clone)]
pub struct Profile {
    /// RF candidate grid for the per-scenario fine-tuning.
    pub rf_grid: Vec<RandomForestConfig>,
    /// XGB-style candidate grid.
    pub gbdt_grid: Vec<GbdtConfig>,
    /// Cross-validation folds (the paper uses 5).
    pub cv_folds: usize,
    /// Permutation-importance repeats inside FRA.
    pub pfi_repeats: usize,
    /// Rows subsampled for the SHAP ranking (TreeSHAP is per-row).
    pub shap_rows: usize,
    /// Forest used for the SHAP ranking (depth-capped: TreeSHAP cost grows
    /// with leaf count × depth²).
    pub shap_forest: RandomForestConfig,
    /// Target length of the FRA-reduced vector (the paper uses 100).
    pub fra_target: usize,
    /// Top-k taken from each of FRA and SHAP for the final union (75).
    pub union_top_k: usize,
    /// Master seed for every model fit in the pipeline.
    pub seed: u64,
}

impl Profile {
    /// The full-size profile used by the reproduction binary. Sized so
    /// the complete 10-scenario evaluation finishes on a single core in
    /// well under an hour while keeping the paper's protocol (5-fold CV
    /// grid search over tree-structure parameters).
    pub fn full() -> Self {
        let mut rf_grid = Vec::new();
        for max_depth in [None, Some(12)] {
            // `All` matches sklearn's regressor default and lets the
            // level-tracking features win splits even inside a wide
            // diverse vector; `Sqrt` is the decorrelating alternative.
            for max_features in [MaxFeatures::Sqrt, MaxFeatures::All] {
                rf_grid.push(RandomForestConfig {
                    n_estimators: 40,
                    max_depth,
                    min_samples_split: 2,
                    min_samples_leaf: 1,
                    max_features,
                    bootstrap: true,
                    split_method: SplitMethod::default(),
                });
            }
        }
        let gbdt_grid = vec![
            GbdtConfig {
                n_estimators: 40,
                learning_rate: 0.1,
                max_depth: 5,
                min_child_weight: 1.0,
                lambda: 1.0,
                gamma: 0.0,
                subsample: 0.8,
                colsample_bytree: 0.5,
                split_method: SplitMethod::default(),
            },
            GbdtConfig {
                n_estimators: 40,
                learning_rate: 0.3,
                max_depth: 3,
                min_child_weight: 1.0,
                lambda: 1.0,
                gamma: 0.0,
                subsample: 0.8,
                colsample_bytree: 0.5,
                split_method: SplitMethod::default(),
            },
        ];
        Profile {
            rf_grid,
            gbdt_grid,
            cv_folds: 5,
            pfi_repeats: 2,
            shap_rows: 256,
            shap_forest: RandomForestConfig {
                n_estimators: 30,
                max_depth: Some(8),
                max_features: MaxFeatures::Sqrt,
                ..Default::default()
            },
            fra_target: 100,
            union_top_k: 75,
            seed: 20240712,
        }
    }

    /// A reduced profile for tests and examples.
    pub fn fast() -> Self {
        Profile {
            rf_grid: vec![
                RandomForestConfig {
                    n_estimators: 25,
                    max_depth: Some(10),
                    max_features: MaxFeatures::All,
                    ..Default::default()
                },
                RandomForestConfig {
                    n_estimators: 25,
                    max_depth: Some(10),
                    max_features: MaxFeatures::Sqrt,
                    ..Default::default()
                },
            ],
            gbdt_grid: vec![GbdtConfig {
                n_estimators: 25,
                learning_rate: 0.2,
                max_depth: 3,
                colsample_bytree: 0.3,
                subsample: 0.8,
                ..Default::default()
            }],
            cv_folds: 3,
            pfi_repeats: 2,
            shap_rows: 96,
            shap_forest: RandomForestConfig {
                n_estimators: 15,
                max_depth: Some(6),
                max_features: MaxFeatures::Sqrt,
                ..Default::default()
            },
            fra_target: 100,
            union_top_k: 75,
            seed: 7,
        }
    }

    /// Replaces the master seed.
    ///
    /// All `with_*` methods consume and return `self`, so presets chain:
    ///
    /// ```
    /// use c100_core::profile::Profile;
    /// let p = Profile::fast().with_seed(7).with_cv_folds(3);
    /// assert_eq!(p.seed, 7);
    /// assert_eq!(p.cv_folds, 3);
    /// ```
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the cross-validation fold count.
    pub fn with_cv_folds(mut self, cv_folds: usize) -> Self {
        self.cv_folds = cv_folds;
        self
    }

    /// Replaces the permutation-importance repeat count used inside FRA.
    pub fn with_pfi_repeats(mut self, pfi_repeats: usize) -> Self {
        self.pfi_repeats = pfi_repeats;
        self
    }

    /// Replaces the SHAP row-subsample budget.
    pub fn with_shap_rows(mut self, shap_rows: usize) -> Self {
        self.shap_rows = shap_rows;
        self
    }

    /// Replaces the forest configuration used for the SHAP ranking.
    pub fn with_shap_forest(mut self, shap_forest: RandomForestConfig) -> Self {
        self.shap_forest = shap_forest;
        self
    }

    /// Replaces the FRA target vector length.
    pub fn with_fra_target(mut self, fra_target: usize) -> Self {
        self.fra_target = fra_target;
        self
    }

    /// Replaces the per-ranking top-k taken into the final union.
    pub fn with_union_top_k(mut self, union_top_k: usize) -> Self {
        self.union_top_k = union_top_k;
        self
    }

    /// Replaces the RF fine-tuning grid.
    pub fn with_rf_grid(mut self, rf_grid: Vec<RandomForestConfig>) -> Self {
        self.rf_grid = rf_grid;
        self
    }

    /// Replaces the XGB-style fine-tuning grid.
    pub fn with_gbdt_grid(mut self, gbdt_grid: Vec<GbdtConfig>) -> Self {
        self.gbdt_grid = gbdt_grid;
        self
    }

    /// Replaces the split-search strategy across every model config in the
    /// profile: both fine-tuning grids and the SHAP ranking forest.
    pub fn with_split_method(mut self, split_method: SplitMethod) -> Self {
        for rf in &mut self.rf_grid {
            rf.split_method = split_method;
        }
        for gbdt in &mut self.gbdt_grid {
            gbdt.split_method = split_method;
        }
        self.shap_forest.split_method = split_method;
        self
    }

    /// Short provenance label recorded in persisted model artifacts:
    /// `full` / `fast` when the grid shape matches the preset (whatever
    /// the seed), `custom` otherwise, always suffixed with the seed. When
    /// every model in the profile shares a non-default split method its
    /// label is appended too (e.g. `fast-seed7-exact`), so artifacts from
    /// an exact-search run are distinguishable from the histogram default.
    pub fn descriptor(&self) -> String {
        let base = match (self.rf_grid.len(), self.gbdt_grid.len(), self.cv_folds) {
            (4, 2, 5) => "full",
            (2, 1, 3) => "fast",
            _ => "custom",
        };
        let mut label = format!("{base}-seed{}", self.seed);
        let first = self.shap_forest.split_method;
        let uniform = self.rf_grid.iter().all(|c| c.split_method == first)
            && self.gbdt_grid.iter().all(|c| c.split_method == first);
        if uniform && first != SplitMethod::default() {
            label.push('-');
            label.push_str(&first.label().replace(':', ""));
        }
        label
    }

    /// Derives a deterministic sub-seed for a named pipeline stage.
    pub fn stage_seed(&self, stage: &str) -> u64 {
        let mut h: u64 = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in stage.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_matches_paper_protocol() {
        let p = Profile::full();
        assert_eq!(p.cv_folds, 5);
        assert_eq!(p.fra_target, 100);
        assert_eq!(p.union_top_k, 75);
        assert_eq!(p.rf_grid.len(), 4);
        assert_eq!(p.gbdt_grid.len(), 2);
    }

    #[test]
    fn stage_seeds_differ_by_stage_and_run() {
        let p = Profile::fast();
        assert_ne!(p.stage_seed("fra"), p.stage_seed("shap"));
        let q = Profile::fast().with_seed(8);
        assert_ne!(p.stage_seed("fra"), q.stage_seed("fra"));
    }

    #[test]
    fn builder_chain_overrides_preset_fields() {
        let p = Profile::fast()
            .with_seed(99)
            .with_cv_folds(4)
            .with_pfi_repeats(1)
            .with_shap_rows(32)
            .with_fra_target(50)
            .with_union_top_k(40);
        assert_eq!(p.seed, 99);
        assert_eq!(p.cv_folds, 4);
        assert_eq!(p.pfi_repeats, 1);
        assert_eq!(p.shap_rows, 32);
        assert_eq!(p.fra_target, 50);
        assert_eq!(p.union_top_k, 40);
        // Untouched fields keep the preset values.
        assert_eq!(p.rf_grid.len(), Profile::fast().rf_grid.len());

        let grids = Profile::full()
            .with_rf_grid(vec![RandomForestConfig::default()])
            .with_gbdt_grid(vec![GbdtConfig::default()])
            .with_shap_forest(RandomForestConfig {
                n_estimators: 5,
                ..Default::default()
            });
        assert_eq!(grids.rf_grid.len(), 1);
        assert_eq!(grids.gbdt_grid.len(), 1);
        assert_eq!(grids.shap_forest.n_estimators, 5);
    }

    #[test]
    fn split_method_applies_everywhere_and_tags_descriptor() {
        let p = Profile::full();
        assert_eq!(p.descriptor(), format!("full-seed{}", p.seed));

        let exact = Profile::full().with_split_method(SplitMethod::Exact);
        assert!(exact
            .rf_grid
            .iter()
            .all(|c| c.split_method == SplitMethod::Exact));
        assert!(exact
            .gbdt_grid
            .iter()
            .all(|c| c.split_method == SplitMethod::Exact));
        assert_eq!(exact.shap_forest.split_method, SplitMethod::Exact);
        assert_eq!(exact.descriptor(), format!("full-seed{}-exact", exact.seed));

        let coarse = Profile::fast().with_split_method(SplitMethod::Histogram { max_bins: 64 });
        assert_eq!(
            coarse.descriptor(),
            format!("fast-seed{}-hist64", coarse.seed)
        );
    }
}
