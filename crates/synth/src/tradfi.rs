//! The Traditional Market Indices inventory (~20 daily closes).
//!
//! Each index is a geometric random walk whose daily returns load on the
//! two traditional-market factors and the global trend. Because those
//! factors *lead* the crypto trend by [`crate::latent::TRADFI_LEAD`] days,
//! index levels carry information about crypto's direction months out —
//! the growing long-horizon relevance Figures 3–4 show for this category.
//!
//! Traditional markets close on weekends, so Saturday/Sunday closes repeat
//! Friday's value (forward-fill), exactly as daily-sampled Yahoo-style
//! feeds behave.

use rand::rngs::StdRng;
use rand::SeedableRng;

use c100_timeseries::{Date, Frame, Series};

use crate::latent::{gaussian, LatentPaths};
use crate::SynthConfig;

/// Return-loading description of one index.
struct IndexSpec {
    name: &'static str,
    /// Initial level on the first observed day.
    base: f64,
    /// Annualized drift.
    drift: f64,
    /// Loadings on (tradfi₀ equity, tradfi₁ dollar, global trend, macro₀
    /// rates) — per-day return contribution per factor standard deviation.
    loads: [f64; 4],
    /// Idiosyncratic daily volatility.
    sigma: f64,
    /// Freeze the feed from this date (defect for the cleaning phase).
    freeze_after: Option<Date>,
}

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::from_ymd(y, m, day).expect("valid constant date")
}

fn index_table() -> Vec<IndexSpec> {
    let eq = |name, base, sigma| IndexSpec {
        name,
        base,
        drift: 0.10,
        loads: [0.0035, 0.0005, 0.0012, -0.0008],
        sigma,
        freeze_after: None,
    };
    vec![
        // Equity indices — share the equity factor.
        eq("QQQ_Close", 120.0, 0.011),
        eq("SPY_Close", 225.0, 0.009),
        eq("DIA_Close", 198.0, 0.009),
        eq("IWM_Close", 135.0, 0.012),
        eq("VTI_Close", 115.0, 0.009),
        eq("XLK_Close", 48.0, 0.012),
        eq("XLF_Close", 23.0, 0.011),
        // Dollar strength and FX.
        IndexSpec {
            name: "UUP_Close",
            base: 26.0,
            drift: 0.0,
            loads: [-0.0005, 0.0030, -0.0012, 0.0010],
            sigma: 0.004,
            freeze_after: None,
        },
        IndexSpec {
            name: "EURUSD_Close",
            base: 1.05,
            drift: 0.0,
            loads: [0.0004, -0.0028, 0.0010, -0.0008],
            sigma: 0.004,
            freeze_after: None,
        },
        IndexSpec {
            name: "GBPUSD_Close",
            base: 1.23,
            drift: 0.0,
            loads: [0.0005, -0.0026, 0.0010, -0.0007],
            sigma: 0.005,
            freeze_after: None,
        },
        IndexSpec {
            name: "JPYUSD_Close",
            base: 0.0086,
            drift: 0.0,
            loads: [-0.0003, -0.0022, -0.0006, -0.0012],
            sigma: 0.004,
            freeze_after: None,
        },
        // Bonds — fall when the rates factor rises.
        IndexSpec {
            name: "BSV_Close",
            base: 79.0,
            drift: 0.01,
            loads: [0.0001, 0.0002, 0.0001, -0.0018],
            sigma: 0.0015,
            freeze_after: None,
        },
        IndexSpec {
            name: "MBB_Close",
            base: 106.0,
            drift: 0.01,
            loads: [0.0002, 0.0002, 0.0002, -0.0022],
            sigma: 0.002,
            freeze_after: None,
        },
        IndexSpec {
            name: "TLT_Close",
            base: 119.0,
            drift: 0.01,
            loads: [-0.0004, 0.0004, -0.0003, -0.0045],
            sigma: 0.007,
            freeze_after: None,
        },
        IndexSpec {
            name: "AGG_Close",
            base: 108.0,
            drift: 0.01,
            loads: [0.0001, 0.0002, 0.0001, -0.0020],
            sigma: 0.002,
            freeze_after: None,
        },
        // Metals and commodities.
        IndexSpec {
            name: "GLD_Close",
            base: 110.0,
            drift: 0.04,
            loads: [-0.0005, -0.0020, 0.0006, -0.0015],
            sigma: 0.008,
            freeze_after: None,
        },
        IndexSpec {
            name: "SLV_Close",
            base: 15.0,
            drift: 0.03,
            loads: [0.0002, -0.0022, 0.0008, -0.0013],
            sigma: 0.013,
            freeze_after: None,
        },
        IndexSpec {
            name: "USO_Close",
            base: 11.0,
            drift: 0.0,
            loads: [0.0015, -0.0010, 0.0018, 0.0004],
            sigma: 0.020,
            freeze_after: None,
        },
        // Two degraded feeds for the cleaning phase.
        IndexSpec {
            name: "VNQ_Close",
            base: 84.0,
            drift: 0.05,
            loads: [0.0022, 0.0002, 0.0008, -0.0020],
            sigma: 0.010,
            freeze_after: Some(d(2021, 9, 1)),
        },
        IndexSpec {
            name: "EEM_Close",
            base: 35.0,
            drift: 0.04,
            loads: [0.0028, -0.0012, 0.0016, -0.0010],
            sigma: 0.012,
            freeze_after: Some(d(2020, 6, 1)),
        },
    ]
}

/// FNV-1a name hash (same scheme as the spec generator).
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Generates the traditional-market frame over the observed window.
pub fn generate(config: &SynthConfig, latents: &LatentPaths) -> Frame {
    let n_obs = config.n_days();
    let warmup = latents.warmup;
    let mut frame = Frame::with_daily_index(config.start, n_obs);

    for spec in index_table() {
        let mut rng = StdRng::seed_from_u64(config.seed ^ name_hash(spec.name));
        let mut level = spec.base;
        let mut values = Vec::with_capacity(n_obs);
        // Each index also follows its own slow idiosyncratic trend (sector
        // rotations, duration bets, …): this decorrelates index *levels*
        // from the crypto level over sub-periods, so traditional indices
        // only pay off through the factor lead at long horizons — the
        // profile Figures 3-4 show.
        let own_phi = crate::latent::phi_for_half_life(120.0);
        let own_sd = (1.0 - own_phi * own_phi).sqrt();
        let mut own = gaussian(&mut rng);
        // Integrate the walk over the full extended horizon so the level on
        // day one reflects factor history; rescale to base afterwards.
        let mut path = Vec::with_capacity(latents.n_total());
        for t in 0..latents.n_total() {
            own = own_phi * own + own_sd * gaussian(&mut rng);
            let r = spec.drift / 365.25
                + spec.loads[0] * latents.tradfi_factors[0][t]
                + spec.loads[1] * latents.tradfi_factors[1][t]
                + spec.loads[2] * latents.global_trend[t]
                + spec.loads[3] * latents.macro_factors[0][t]
                + 0.0035 * own
                + spec.sigma * gaussian(&mut rng);
            level *= r.exp();
            path.push(level);
        }
        let anchor = spec.base / path[warmup];
        for t in 0..n_obs {
            let date = config.start.add_days(t as i32);
            if date.is_weekend() && t > 0 {
                values.push(values[t - 1]); // market closed: repeat Friday
            } else {
                values.push(path[warmup + t] * anchor);
            }
        }
        if let Some(freeze) = spec.freeze_after {
            let from = freeze.days_between(config.start).clamp(0, n_obs as i32) as usize;
            if from < n_obs {
                let frozen = values[from];
                for v in values[from..].iter_mut() {
                    *v = frozen;
                }
            }
        }
        frame
            .push_column(Series::new(spec.name, values))
            .expect("unique tradfi names");
    }

    // VIX-style volatility index: mean-reverting, spikes in the turbulent
    // regime — not a random walk, so handled outside the table.
    let mut rng = StdRng::seed_from_u64(config.seed ^ name_hash("VIX_Close"));
    let mut vix = Vec::with_capacity(n_obs);
    for t in 0..n_obs {
        let date = config.start.add_days(t as i32);
        if date.is_weekend() && t > 0 {
            vix.push(vix[t - 1]);
            continue;
        }
        let s = warmup + t;
        let v = (18.0f64.ln() + 0.55 * latents.regime[s] as f64 - 0.12 * latents.global_trend[s]
            + 0.15 * gaussian(&mut rng))
        .exp();
        vix.push(v);
    }
    frame
        .push_column(Series::new("VIX_Close", vix))
        .expect("unique VIX name");

    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::simulate;

    #[test]
    fn frame_has_paper_vocabulary() {
        let cfg = SynthConfig::small(41);
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        assert!(frame.width() >= 20, "{} columns", frame.width());
        for name in [
            "QQQ_Close",
            "UUP_Close",
            "EURUSD_Close",
            "BSV_Close",
            "MBB_Close",
            "VIX_Close",
        ] {
            assert!(frame.has_column(name), "missing {name}");
        }
    }

    #[test]
    fn weekends_repeat_friday() {
        let cfg = SynthConfig::small(42); // starts 2019-01-01 (a Tuesday)
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        let qqq = frame.column("QQQ_Close").unwrap().values();
        for t in 1..qqq.len() {
            let date = cfg.start.add_days(t as i32);
            if date.is_weekend() {
                assert_eq!(qqq[t], qqq[t - 1], "weekend {date} should repeat");
            }
        }
    }

    #[test]
    fn levels_anchor_at_base() {
        let cfg = SynthConfig::small(43);
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        let spy = frame.column("SPY_Close").unwrap().values();
        assert!((spy[0] - 225.0).abs() < 1e-9);
        assert!(spy.iter().all(|v| *v > 0.0));
    }

    #[test]
    fn frozen_feed_is_flat() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        let eem = frame.column("EEM_Close").unwrap();
        assert!(eem.longest_flat_run() > 365);
        let qqq = frame.column("QQQ_Close").unwrap();
        assert!(qqq.longest_flat_run() < 10);
    }

    #[test]
    fn equities_share_a_factor() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        let qqq = frame.column("QQQ_Close").unwrap().values();
        let spy = frame.column("SPY_Close").unwrap().values();
        let rets = |v: &[f64]| -> Vec<f64> { v.windows(2).map(|w| (w[1] / w[0]).ln()).collect() };
        // The shared equity factor is deliberately modest (idiosyncratic
        // trends dominate so index *levels* decouple from crypto); daily
        // return correlation just needs to be clearly positive.
        let corr = c100_timeseries::stats::pearson(&rets(qqq), &rets(spy));
        assert!(corr > 0.1, "equity return corr {corr}");
    }
}
