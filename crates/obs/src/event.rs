//! The pipeline event vocabulary and its JSONL encoding.
//!
//! Every event serializes to a single JSON object whose `event` field
//! names the variant in `snake_case`; the remaining fields mirror the
//! variant's fields one-to-one. See `crates/obs/README.md` for the full
//! schema table. Durations are carried as integer microseconds (`micros`)
//! so logs stay exact and language-agnostic.

use crate::json::{self, JsonError, Value};

/// A named pipeline stage, as timed by stage start/finish events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Per-scenario RF + XGB fine-tuning (both grid searches).
    Tune,
    /// The Feature Reduction Algorithm loop.
    Fra,
    /// The SHAP validation ranking.
    Shap,
    /// The final refit of the tuned RF on the final feature vector.
    FinalFit,
    /// The data-source-diversity experiment (runs after the pipeline).
    Diversity,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::Tune,
        Stage::Fra,
        Stage::Shap,
        Stage::FinalFit,
        Stage::Diversity,
    ];

    /// Stable `snake_case` label used in serialized events and metric names.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Tune => "tune",
            Stage::Fra => "fra",
            Stage::Shap => "shap",
            Stage::FinalFit => "final_fit",
            Stage::Diversity => "diversity",
        }
    }

    /// Inverse of [`Stage::label`].
    pub fn parse(label: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// One observation from a pipeline run.
///
/// The enum is `#[non_exhaustive]`: future PRs will add variants (cache
/// hits, shard assignments, backend calls) without breaking observers,
/// which must therefore carry a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A multi-scenario evaluation began.
    RunStarted {
        /// Number of scenarios the run will execute.
        scenarios: usize,
    },
    /// One scenario's pipeline began.
    ScenarioStarted {
        /// Scenario id in the paper's `period_window` notation.
        scenario: String,
        /// Candidate features after cleaning/start-date filtering.
        n_candidates: usize,
    },
    /// A pipeline stage began.
    StageStarted {
        /// Owning scenario id.
        scenario: String,
        /// Which stage.
        stage: Stage,
    },
    /// A pipeline stage finished.
    StageFinished {
        /// Owning scenario id.
        scenario: String,
        /// Which stage.
        stage: Stage,
        /// Wall-clock duration in microseconds.
        micros: u64,
    },
    /// A grid-search candidate received its mean CV score.
    GridCandidateScored {
        /// Caller-supplied scope label, e.g. `2019_7:rf`.
        scope: String,
        /// Candidate index in the submitted grid.
        candidate: usize,
        /// Mean cross-validation MSE of the candidate.
        cv_mse: f64,
    },
    /// A grid search selected its winner.
    GridSearchFinished {
        /// Caller-supplied scope label, e.g. `2019_7:rf`.
        scope: String,
        /// Size of the candidate grid.
        candidates: usize,
        /// Index of the winning candidate.
        best: usize,
        /// The winner's mean CV MSE.
        best_mse: f64,
    },
    /// One FRA iteration completed.
    FraIteration {
        /// Owning scenario id.
        scenario: String,
        /// Iteration number (0-based).
        iteration: usize,
        /// Features alive at the start of the iteration.
        n_before: usize,
        /// Features removed this iteration.
        n_removed: usize,
        /// Correlation threshold in force.
        corr_threshold: f64,
        /// Whether the stall-breaker fired.
        stall_break: bool,
    },
    /// The SHAP ranking sampled its evaluation rows.
    ShapSampled {
        /// Owning scenario id.
        scenario: String,
        /// Rows actually used for TreeSHAP.
        rows: usize,
        /// Features ranked.
        features: usize,
    },
    /// One scenario's pipeline finished.
    ScenarioFinished {
        /// Scenario id.
        scenario: String,
        /// Candidate features entering the pipeline.
        n_candidates: usize,
        /// FRA survivors.
        fra_survivors: usize,
        /// FRA iterations executed.
        fra_iterations: usize,
        /// |SHAP top-100 ∩ FRA survivors|.
        shap_overlap: usize,
        /// Final feature-vector length.
        final_features: usize,
        /// Whole-scenario wall-clock duration in microseconds.
        micros: u64,
    },
    /// The multi-scenario evaluation finished.
    RunFinished {
        /// Scenarios executed.
        scenarios: usize,
        /// Whole-run wall-clock duration in microseconds.
        micros: u64,
    },
    /// A fitted model was persisted into an artifact store.
    ArtifactSaved {
        /// Owning scenario id.
        scenario: String,
        /// Model family label (`rf` / `gbdt`).
        model: String,
        /// Content-addressed artifact id (hex checksum).
        artifact_id: String,
        /// Serialized artifact size in bytes.
        bytes: u64,
    },
    /// An artifact was loaded and verified from a store.
    ArtifactLoaded {
        /// Owning scenario id.
        scenario: String,
        /// Model family label (`rf` / `gbdt`).
        model: String,
        /// Content-addressed artifact id (hex checksum).
        artifact_id: String,
        /// Load + verification wall-clock duration in microseconds.
        micros: u64,
    },
    /// A batch of rows was served from a loaded artifact.
    BatchPredicted {
        /// Owning scenario id.
        scenario: String,
        /// Model family label (`rf` / `gbdt`).
        model: String,
        /// Rows predicted in this batch.
        rows: usize,
        /// Batch wall-clock duration in microseconds.
        micros: u64,
    },
    /// An online refit replaced the serving model for a scenario.
    ModelRolledOver {
        /// Owning scenario id.
        scenario: String,
        /// Model family label (`rf` / `gbdt`).
        model: String,
        /// Content-addressed id of the artifact now serving.
        artifact_id: String,
        /// Whether the refit warm-started from the previous model.
        warm: bool,
        /// Refit + persist + reload wall-clock duration in microseconds.
        micros: u64,
    },
}

impl Event {
    /// The `snake_case` discriminant used in the serialized form.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStarted { .. } => "run_started",
            Event::ScenarioStarted { .. } => "scenario_started",
            Event::StageStarted { .. } => "stage_started",
            Event::StageFinished { .. } => "stage_finished",
            Event::GridCandidateScored { .. } => "grid_candidate_scored",
            Event::GridSearchFinished { .. } => "grid_search_finished",
            Event::FraIteration { .. } => "fra_iteration",
            Event::ShapSampled { .. } => "shap_sampled",
            Event::ScenarioFinished { .. } => "scenario_finished",
            Event::RunFinished { .. } => "run_finished",
            Event::ArtifactSaved { .. } => "artifact_saved",
            Event::ArtifactLoaded { .. } => "artifact_loaded",
            Event::BatchPredicted { .. } => "batch_predicted",
            Event::ModelRolledOver { .. } => "model_rolled_over",
        }
    }

    /// The scenario id this event belongs to, if it is scenario-scoped.
    pub fn scenario(&self) -> Option<&str> {
        match self {
            Event::ScenarioStarted { scenario, .. }
            | Event::StageStarted { scenario, .. }
            | Event::StageFinished { scenario, .. }
            | Event::FraIteration { scenario, .. }
            | Event::ShapSampled { scenario, .. }
            | Event::ScenarioFinished { scenario, .. }
            | Event::ArtifactSaved { scenario, .. }
            | Event::ArtifactLoaded { scenario, .. }
            | Event::BatchPredicted { scenario, .. }
            | Event::ModelRolledOver { scenario, .. } => Some(scenario),
            _ => None,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = json::Writer::new();
        w.begin();
        w.str_field("event", self.kind());
        match self {
            Event::RunStarted { scenarios } => {
                w.uint_field("scenarios", *scenarios as u64);
            }
            Event::ScenarioStarted {
                scenario,
                n_candidates,
            } => {
                w.str_field("scenario", scenario);
                w.uint_field("n_candidates", *n_candidates as u64);
            }
            Event::StageStarted { scenario, stage } => {
                w.str_field("scenario", scenario);
                w.str_field("stage", stage.label());
            }
            Event::StageFinished {
                scenario,
                stage,
                micros,
            } => {
                w.str_field("scenario", scenario);
                w.str_field("stage", stage.label());
                w.uint_field("micros", *micros);
            }
            Event::GridCandidateScored {
                scope,
                candidate,
                cv_mse,
            } => {
                w.str_field("scope", scope);
                w.uint_field("candidate", *candidate as u64);
                w.float_field("cv_mse", *cv_mse);
            }
            Event::GridSearchFinished {
                scope,
                candidates,
                best,
                best_mse,
            } => {
                w.str_field("scope", scope);
                w.uint_field("candidates", *candidates as u64);
                w.uint_field("best", *best as u64);
                w.float_field("best_mse", *best_mse);
            }
            Event::FraIteration {
                scenario,
                iteration,
                n_before,
                n_removed,
                corr_threshold,
                stall_break,
            } => {
                w.str_field("scenario", scenario);
                w.uint_field("iteration", *iteration as u64);
                w.uint_field("n_before", *n_before as u64);
                w.uint_field("n_removed", *n_removed as u64);
                w.float_field("corr_threshold", *corr_threshold);
                w.bool_field("stall_break", *stall_break);
            }
            Event::ShapSampled {
                scenario,
                rows,
                features,
            } => {
                w.str_field("scenario", scenario);
                w.uint_field("rows", *rows as u64);
                w.uint_field("features", *features as u64);
            }
            Event::ScenarioFinished {
                scenario,
                n_candidates,
                fra_survivors,
                fra_iterations,
                shap_overlap,
                final_features,
                micros,
            } => {
                w.str_field("scenario", scenario);
                w.uint_field("n_candidates", *n_candidates as u64);
                w.uint_field("fra_survivors", *fra_survivors as u64);
                w.uint_field("fra_iterations", *fra_iterations as u64);
                w.uint_field("shap_overlap", *shap_overlap as u64);
                w.uint_field("final_features", *final_features as u64);
                w.uint_field("micros", *micros);
            }
            Event::RunFinished { scenarios, micros } => {
                w.uint_field("scenarios", *scenarios as u64);
                w.uint_field("micros", *micros);
            }
            Event::ArtifactSaved {
                scenario,
                model,
                artifact_id,
                bytes,
            } => {
                w.str_field("scenario", scenario);
                w.str_field("model", model);
                w.str_field("artifact_id", artifact_id);
                w.uint_field("bytes", *bytes);
            }
            Event::ArtifactLoaded {
                scenario,
                model,
                artifact_id,
                micros,
            } => {
                w.str_field("scenario", scenario);
                w.str_field("model", model);
                w.str_field("artifact_id", artifact_id);
                w.uint_field("micros", *micros);
            }
            Event::BatchPredicted {
                scenario,
                model,
                rows,
                micros,
            } => {
                w.str_field("scenario", scenario);
                w.str_field("model", model);
                w.uint_field("rows", *rows as u64);
                w.uint_field("micros", *micros);
            }
            Event::ModelRolledOver {
                scenario,
                model,
                artifact_id,
                warm,
                micros,
            } => {
                w.str_field("scenario", scenario);
                w.str_field("model", model);
                w.str_field("artifact_id", artifact_id);
                w.bool_field("warm", *warm);
                w.uint_field("micros", *micros);
            }
        }
        w.end();
        w.finish()
    }

    /// Parses one JSONL line produced by [`Event::to_json_line`].
    pub fn parse_json_line(line: &str) -> Result<Event, JsonError> {
        let value = json::parse(line)?;
        Event::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<Event, JsonError> {
        let kind = value.req_str("event")?;
        let scenario = |v: &Value| v.req_str("scenario").map(str::to_string);
        let stage = |v: &Value| {
            let label = v.req_str("stage")?;
            Stage::parse(label)
                .ok_or_else(|| JsonError::new(format!("unknown stage label {label:?}")))
        };
        match kind {
            "run_started" => Ok(Event::RunStarted {
                scenarios: value.req_uint("scenarios")? as usize,
            }),
            "scenario_started" => Ok(Event::ScenarioStarted {
                scenario: scenario(value)?,
                n_candidates: value.req_uint("n_candidates")? as usize,
            }),
            "stage_started" => Ok(Event::StageStarted {
                scenario: scenario(value)?,
                stage: stage(value)?,
            }),
            "stage_finished" => Ok(Event::StageFinished {
                scenario: scenario(value)?,
                stage: stage(value)?,
                micros: value.req_uint("micros")?,
            }),
            "grid_candidate_scored" => Ok(Event::GridCandidateScored {
                scope: value.req_str("scope")?.to_string(),
                candidate: value.req_uint("candidate")? as usize,
                cv_mse: value.req_float("cv_mse")?,
            }),
            "grid_search_finished" => Ok(Event::GridSearchFinished {
                scope: value.req_str("scope")?.to_string(),
                candidates: value.req_uint("candidates")? as usize,
                best: value.req_uint("best")? as usize,
                best_mse: value.req_float("best_mse")?,
            }),
            "fra_iteration" => Ok(Event::FraIteration {
                scenario: scenario(value)?,
                iteration: value.req_uint("iteration")? as usize,
                n_before: value.req_uint("n_before")? as usize,
                n_removed: value.req_uint("n_removed")? as usize,
                corr_threshold: value.req_float("corr_threshold")?,
                stall_break: value.req_bool("stall_break")?,
            }),
            "shap_sampled" => Ok(Event::ShapSampled {
                scenario: scenario(value)?,
                rows: value.req_uint("rows")? as usize,
                features: value.req_uint("features")? as usize,
            }),
            "scenario_finished" => Ok(Event::ScenarioFinished {
                scenario: scenario(value)?,
                n_candidates: value.req_uint("n_candidates")? as usize,
                fra_survivors: value.req_uint("fra_survivors")? as usize,
                fra_iterations: value.req_uint("fra_iterations")? as usize,
                shap_overlap: value.req_uint("shap_overlap")? as usize,
                final_features: value.req_uint("final_features")? as usize,
                micros: value.req_uint("micros")?,
            }),
            "run_finished" => Ok(Event::RunFinished {
                scenarios: value.req_uint("scenarios")? as usize,
                micros: value.req_uint("micros")?,
            }),
            "artifact_saved" => Ok(Event::ArtifactSaved {
                scenario: scenario(value)?,
                model: value.req_str("model")?.to_string(),
                artifact_id: value.req_str("artifact_id")?.to_string(),
                bytes: value.req_uint("bytes")?,
            }),
            "artifact_loaded" => Ok(Event::ArtifactLoaded {
                scenario: scenario(value)?,
                model: value.req_str("model")?.to_string(),
                artifact_id: value.req_str("artifact_id")?.to_string(),
                micros: value.req_uint("micros")?,
            }),
            "batch_predicted" => Ok(Event::BatchPredicted {
                scenario: scenario(value)?,
                model: value.req_str("model")?.to_string(),
                rows: value.req_uint("rows")? as usize,
                micros: value.req_uint("micros")?,
            }),
            "model_rolled_over" => Ok(Event::ModelRolledOver {
                scenario: scenario(value)?,
                model: value.req_str("model")?.to_string(),
                artifact_id: value.req_str("artifact_id")?.to_string(),
                warm: value.req_bool("warm")?,
                micros: value.req_uint("micros")?,
            }),
            other => Err(JsonError::new(format!("unknown event kind {other:?}"))),
        }
    }
}

/// Renders a microsecond duration for humans (`850µs`, `12.3ms`, `4.56s`).
pub fn fmt_micros(micros: u64) -> String {
    if micros < 1_000 {
        format!("{micros}µs")
    } else if micros < 1_000_000 {
        format!("{:.1}ms", micros as f64 / 1_000.0)
    } else if micros < 60_000_000 {
        format!("{:.2}s", micros as f64 / 1_000_000.0)
    } else {
        let secs = micros / 1_000_000;
        format!("{}m{:02}s", secs / 60, secs % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every variant, with awkward values (zeros, floats
    /// needing full precision, strings needing escapes).
    pub(crate) fn exemplars() -> Vec<Event> {
        vec![
            Event::RunStarted { scenarios: 10 },
            Event::ScenarioStarted {
                scenario: "2019_7".into(),
                n_candidates: 214,
            },
            Event::StageStarted {
                scenario: "2019_7".into(),
                stage: Stage::Tune,
            },
            Event::StageFinished {
                scenario: "2019_7".into(),
                stage: Stage::FinalFit,
                micros: 0,
            },
            Event::GridCandidateScored {
                scope: "2019_7:rf".into(),
                candidate: 3,
                cv_mse: 0.000123456789,
            },
            Event::GridSearchFinished {
                scope: "2019_7:gbdt".into(),
                candidates: 2,
                best: 0,
                best_mse: 1.5e-8,
            },
            Event::FraIteration {
                scenario: "2017_180".into(),
                iteration: 12,
                n_before: 180,
                n_removed: 0,
                corr_threshold: 0.7999999999999999,
                stall_break: true,
            },
            Event::ShapSampled {
                scenario: "2017_1".into(),
                rows: 96,
                features: 214,
            },
            Event::ScenarioFinished {
                scenario: "weird \"id\"\\with\nescapes".into(),
                n_candidates: 214,
                fra_survivors: 100,
                fra_iterations: 17,
                shap_overlap: 78,
                final_features: 112,
                micros: u64::MAX >> 12,
            },
            Event::RunFinished {
                scenarios: 10,
                micros: 123_456_789,
            },
            Event::ArtifactSaved {
                scenario: "2019_7".into(),
                model: "rf".into(),
                artifact_id: "9f86d081884c7d65".into(),
                bytes: 1_048_576,
            },
            Event::ArtifactLoaded {
                scenario: "2019_7".into(),
                model: "gbdt".into(),
                artifact_id: "0000000000000000".into(),
                micros: 742,
            },
            Event::BatchPredicted {
                scenario: "2017_90".into(),
                model: "rf".into(),
                rows: 0,
                micros: 1,
            },
            Event::ModelRolledOver {
                scenario: "2019_7".into(),
                model: "gbdt".into(),
                artifact_id: "feedfacecafebeef".into(),
                warm: true,
                micros: 250_000,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_jsonl() {
        for event in exemplars() {
            let line = event.to_json_line();
            assert!(!line.contains('\n'), "JSONL lines must be single-line");
            let back = Event::parse_json_line(&line)
                .unwrap_or_else(|e| panic!("parse failed for {line}: {e}"));
            assert_eq!(back, event, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn kind_matches_serialized_discriminant() {
        for event in exemplars() {
            assert!(event
                .to_json_line()
                .starts_with(&format!("{{\"event\":\"{}\"", event.kind())));
        }
    }

    #[test]
    fn stage_labels_round_trip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::parse(stage.label()), Some(stage));
        }
        assert_eq!(Stage::parse("nope"), None);
    }

    #[test]
    fn scenario_accessor_matches_scoping() {
        assert_eq!(Event::RunStarted { scenarios: 1 }.scenario(), None);
        let e = Event::ShapSampled {
            scenario: "2019_30".into(),
            rows: 1,
            features: 2,
        };
        assert_eq!(e.scenario(), Some("2019_30"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(Event::parse_json_line("not json").is_err());
        assert!(Event::parse_json_line("{\"event\":\"no_such_kind\"}").is_err());
        assert!(Event::parse_json_line("{\"event\":\"run_started\"}").is_err());
        assert!(Event::parse_json_line(
            "{\"event\":\"stage_started\",\"scenario\":\"x\",\"stage\":\"zzz\"}"
        )
        .is_err());
    }

    #[test]
    fn parse_ignores_unknown_fields_for_forward_compat() {
        // A log written by a future version may carry extra fields on
        // any event (flat or nested); today's parser must ignore them
        // rather than reject the line.
        for event in exemplars() {
            let line = event.to_json_line();
            let extended = format!(
                "{},\"future_field\":42,\"future_nested\":{{\"a\":[1,2],\"b\":null}}}}",
                line.strip_suffix('}').unwrap()
            );
            let parsed = Event::parse_json_line(&extended)
                .unwrap_or_else(|e| panic!("extended {} must parse: {e}", event.kind()));
            assert_eq!(parsed, event);
        }
    }

    #[test]
    fn fmt_micros_picks_sane_units() {
        assert_eq!(fmt_micros(850), "850µs");
        assert_eq!(fmt_micros(12_300), "12.3ms");
        assert_eq!(fmt_micros(4_560_000), "4.56s");
        assert_eq!(fmt_micros(83_000_000), "1m23s");
    }
}
