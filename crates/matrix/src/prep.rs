//! Shared dataset prep: one expensive prepare per `(family, window)`,
//! reused by every cell that differs only in horizon or split point.
//!
//! Preparing a window — slicing the master panel, dropping late-starting
//! features, cleaning, interpolating, assembling the dense design matrix
//! and quantile-binning it — dominates cell cost next to fitting a small
//! forest. The matrix crosses each prepared window with several horizons
//! (and walk-forward folds all share the full-span prep, cutting their
//! training prefixes with `prefix_rows`), so the [`PrepCache`] turns
//! `families × windows × horizons` preps into `families × windows`.
//!
//! The cache is keyed by `(family, prep_start, prep_end)` and each entry
//! is a `OnceLock`: the first worker to request a window builds it while
//! any concurrent requester blocks on the same lock and then shares the
//! `Arc` — a prep is never computed twice, on any schedule.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use c100_core::dataset::MasterDataset;
use c100_core::CRYPTO100;
use c100_ml::data::{BinnedMatrix, Matrix};
use c100_timeseries::clean::{clean_frame, CleanConfig};
use c100_timeseries::missing;

/// Bins per feature for the shared histogram binning (and the forest
/// config — [`fit_binned_traced`] requires them to agree).
///
/// [`fit_binned_traced`]: c100_ml::gbdt::GbdtConfig::fit_binned_traced
pub const PREP_MAX_BINS: usize = 64;

/// One prepared `(family, window)` dataset.
#[derive(Debug)]
pub struct WindowPrep {
    /// Feature names, in matrix column order.
    pub feature_names: Vec<String>,
    /// The family index level per window row (the forecast target before
    /// horizon shifting: a cell at horizon `h` trains on `y[t] =
    /// index[t + h]`).
    pub index: Vec<f64>,
    /// Dense feature matrix, one row per window row.
    pub x: Matrix,
    /// Shared quantile binning of `x` at [`PREP_MAX_BINS`].
    pub binned: BinnedMatrix,
}

impl WindowPrep {
    /// Rows in the prepared window.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the window is empty (never true for a successful build).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// Builds the prep for one `(family, window-range)` pair.
///
/// Mirrors the scenario pipeline (late-starter drop → clean →
/// interpolate → dense matrix) with the family index standing in for
/// Crypto100. Errors are returned as strings: a failed prep fails the
/// cells that need it, not the run.
pub fn build_prep(
    master: &MasterDataset,
    family_id: &str,
    family_values: &[f64],
    start: usize,
    end: usize,
) -> Result<WindowPrep, String> {
    let err = |what: String| format!("prep {family_id}[{start}..{end}): {what}");
    if start >= end || end > master.frame.len() {
        return Err(err(format!(
            "invalid row range (panel has {} rows)",
            master.frame.len()
        )));
    }
    let mut frame = master
        .frame
        .row_slice(start, end)
        .map_err(|e| err(e.to_string()))?;
    // The family index replaces Crypto100 as the target column.
    frame
        .drop_column(CRYPTO100)
        .map_err(|e| err(e.to_string()))?;
    let index = c100_timeseries::Series::new(family_id, family_values[start..end].to_vec());
    frame.push_column(index).map_err(|e| err(e.to_string()))?;

    // Features that began recording after the window opened would force
    // row drops; discard them like the scenario pipeline does.
    let late_starters: Vec<String> = frame
        .column_names()
        .into_iter()
        .filter(|n| *n != family_id)
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .into_iter()
        .filter(|name| {
            frame
                .column(name)
                .map(|col| col.first_present() != Some(0))
                .unwrap_or(true)
        })
        .collect();
    for name in &late_starters {
        frame.drop_column(name).map_err(|e| err(e.to_string()))?;
    }

    clean_frame(&mut frame, &CleanConfig::default(), &[family_id]);
    missing::interpolate_frame(&mut frame);
    // A window cut mid-panel can end inside a reporting gap (monthly
    // macro steps, weekly sentiment): interpolation only fills interior
    // gaps, so carry the last observation forward over the trailing
    // edge. The family index is left untouched — a NaN there is a real
    // defect the row-drop check below must surface.
    for col in frame.columns_mut() {
        if col.name() != family_id {
            missing::forward_fill(col);
        }
    }

    let feature_names: Vec<String> = frame
        .column_names()
        .into_iter()
        .filter(|n| *n != family_id)
        .map(|s| s.to_string())
        .collect();
    if feature_names.is_empty() {
        return Err(err("no features survived cleaning".into()));
    }
    let refs: Vec<&str> = feature_names.iter().map(|s| s.as_str()).collect();
    let design = frame
        .to_matrix(&refs, family_id)
        .map_err(|e| err(e.to_string()))?;

    // Horizon shifting and `prefix_rows` training cuts both assume row t
    // of the matrix IS window day t; a design matrix with holes would
    // silently misalign them, so a prep with dropped rows is an error
    // (the family index was NaN somewhere — a degenerate universe cut).
    let n_rows = end - start;
    if design.kept_rows.len() != n_rows || design.kept_rows.iter().enumerate().any(|(i, &r)| i != r)
    {
        return Err(err(format!(
            "design matrix dropped {} of {} rows (family index or features undefined)",
            n_rows - design.kept_rows.len(),
            n_rows
        )));
    }

    let x = Matrix::from_row_major(design.x, design.n_features).map_err(|e| err(e.to_string()))?;
    let binned = BinnedMatrix::from_matrix(&x, PREP_MAX_BINS).map_err(|e| err(e.to_string()))?;
    Ok(WindowPrep {
        feature_names,
        index: design.y,
        x,
        binned,
    })
}

type PrepSlot = Arc<OnceLock<Result<Arc<WindowPrep>, String>>>;

/// Concurrent build-once cache of [`WindowPrep`]s.
pub struct PrepCache<'a> {
    master: &'a MasterDataset,
    /// `(family id, full-span index values)` per family, in config order.
    families: &'a [(String, Vec<f64>)],
    slots: Mutex<HashMap<(usize, usize, usize), PrepSlot>>,
    builds: AtomicU64,
    hits: AtomicU64,
}

impl<'a> PrepCache<'a> {
    /// A cache over the master panel and pre-built family index series.
    pub fn new(master: &'a MasterDataset, families: &'a [(String, Vec<f64>)]) -> PrepCache<'a> {
        PrepCache {
            master,
            families,
            slots: Mutex::new(HashMap::new()),
            builds: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The prep for `(family_idx, start..end)`, building it at most once
    /// across all threads. Concurrent requesters block until the builder
    /// finishes, then share the result.
    pub fn get(
        &self,
        family_idx: usize,
        start: usize,
        end: usize,
    ) -> Result<Arc<WindowPrep>, String> {
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            Arc::clone(slots.entry((family_idx, start, end)).or_default())
        };
        let mut built_here = false;
        let result = slot.get_or_init(|| {
            built_here = true;
            self.builds.fetch_add(1, Ordering::Relaxed);
            let (family_id, values) = &self.families[family_idx];
            build_prep(self.master, family_id, values, start, end).map(Arc::new)
        });
        if !built_here {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result.clone()
    }

    /// Preps actually built.
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Requests served from an already-built prep.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_core::dataset::assemble;
    use c100_core::index::IndexFamilySpec;
    use c100_synth::{generate, SynthConfig};

    fn fixtures() -> (MasterDataset, Vec<(String, Vec<f64>)>) {
        let data = generate(&SynthConfig::small(31));
        let master = assemble(&data).unwrap();
        let families: Vec<(String, Vec<f64>)> = IndexFamilySpec::default_families()
            .iter()
            .map(|f| (f.id(), f.build(&data.universe).into_values()))
            .collect();
        (master, families)
    }

    #[test]
    fn build_prep_keeps_every_row_and_bins_once() {
        let (master, families) = fixtures();
        let (id, values) = &families[0];
        let prep = build_prep(&master, id, values, 50, 450).unwrap();
        assert_eq!(prep.len(), 400);
        assert_eq!(prep.x.n_rows(), 400);
        assert_eq!(prep.binned.n_rows(), 400);
        assert_eq!(prep.x.n_features(), prep.feature_names.len());
        assert_eq!(prep.binned.max_bins(), PREP_MAX_BINS);
        // Row t of the matrix is window day t: index values line up with
        // the family series.
        assert_eq!(prep.index, values[50..450].to_vec());
    }

    #[test]
    fn bad_ranges_fail_the_prep_not_the_process() {
        let (master, families) = fixtures();
        let (id, values) = &families[0];
        let err = build_prep(&master, id, values, 400, 400).unwrap_err();
        assert!(err.contains("invalid row range"), "{err}");
        let err = build_prep(&master, id, values, 0, 10_000).unwrap_err();
        assert!(err.contains("invalid row range"), "{err}");
    }

    #[test]
    fn cache_builds_each_window_once() {
        let (master, families) = fixtures();
        let cache = PrepCache::new(&master, &families);
        let a = cache.get(0, 0, 300).unwrap();
        let b = cache.get(0, 0, 300).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let _other_family = cache.get(1, 0, 300).unwrap();
        let _other_window = cache.get(0, 100, 400).unwrap();
        assert_eq!(cache.builds(), 3);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn concurrent_requests_share_one_build() {
        let (master, families) = fixtures();
        let cache = PrepCache::new(&master, &families);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    cache.get(0, 0, 400).unwrap();
                });
            }
        });
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 3);
    }
}
