//! Monotonic counters, gauges, and duration histograms aggregated
//! across a run.
//!
//! [`MetricsRegistry`] can be used directly (`inc` / `set_gauge` /
//! `observe_micros`) or registered as a [`RunObserver`] sink, in which
//! case it derives a standard set of metrics from the event stream:
//! per-stage duration histograms, scenario/run totals, FRA iteration and
//! grid-candidate counters. Snapshots are plain data and render to JSON
//! (machine diffing, `repro compare`) or to a Prometheus-style text
//! exposition ([`MetricsSnapshot::to_text`], the `GET /metrics` format
//! of `c100-serve`) without serde.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

use crate::event::Event;
use crate::json::{write_escaped, write_float};
use crate::RunObserver;

/// Upper bounds (inclusive, in microseconds) of the histogram buckets:
/// decades from 1µs to ~17min, plus a catch-all.
pub const BUCKET_BOUNDS_MICROS: [u64; 10] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

const N_BUCKETS: usize = BUCKET_BOUNDS_MICROS.len() + 1;

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum_micros: u64,
    min_micros: u64,
    max_micros: u64,
    buckets: [u64; N_BUCKETS],
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: 0,
            sum_micros: 0,
            min_micros: u64::MAX,
            max_micros: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    fn observe(&mut self, micros: u64) {
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
        self.min_micros = self.min_micros.min(micros);
        self.max_micros = self.max_micros.max(micros);
        let idx = BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(N_BUCKETS - 1);
        self.buckets[idx] += 1;
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe counters + duration histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds 1 to the named monotonic counter.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to an instantaneous value (last write wins).
    /// Unlike counters, gauges can move in both directions — queue
    /// depths, cache sizes, worker counts.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.insert(name.to_string(), value);
    }

    /// Records one duration observation in the named histogram.
    pub fn observe_micros(&self, name: &str, micros: u64) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(micros);
    }

    /// Records one [`Duration`] observation in the named histogram.
    pub fn observe(&self, name: &str, duration: Duration) {
        self.observe_micros(name, duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A consistent copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum_micros: h.sum_micros,
                            min_micros: if h.count == 0 { 0 } else { h.min_micros },
                            max_micros: h.max_micros,
                            buckets: BUCKET_BOUNDS_MICROS
                                .iter()
                                .copied()
                                .map(Some)
                                .chain([None])
                                .zip(h.buckets.iter().copied())
                                .map(|(le_micros, count)| Bucket { le_micros, count })
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// The registry as an event sink: derives the standard pipeline metrics.
impl RunObserver for MetricsRegistry {
    fn on_event(&self, event: &Event) {
        self.inc("events_total");
        self.inc(&format!("events.{}", event.kind()));
        match event {
            Event::StageFinished { stage, micros, .. } => {
                self.observe_micros(&format!("stage.{}_micros", stage.label()), *micros);
            }
            Event::GridCandidateScored { .. } => self.inc("grid_candidates_total"),
            Event::FraIteration { n_removed, .. } => {
                self.inc("fra_iterations_total");
                self.add("fra_features_removed_total", *n_removed as u64);
            }
            Event::ScenarioFinished { micros, .. } => {
                self.inc("scenarios_finished_total");
                self.observe_micros("scenario_micros", *micros);
            }
            Event::RunFinished { micros, .. } => {
                self.observe_micros("run_micros", *micros);
            }
            Event::ArtifactSaved { bytes, .. } => {
                self.inc("artifacts_saved_total");
                self.add("artifact_bytes_total", *bytes);
            }
            Event::ArtifactLoaded { micros, .. } => {
                self.inc("artifacts_loaded_total");
                self.observe_micros("artifact_load_micros", *micros);
            }
            Event::ModelRolledOver { warm, micros, .. } => {
                self.inc("model_rollovers_total");
                if *warm {
                    self.inc("model_rollovers_warm_total");
                }
                self.observe_micros("model_rollover_micros", *micros);
            }
            Event::BatchPredicted { rows, micros, .. } => {
                self.inc("batches_predicted_total");
                self.add("inference_rows_total", *rows as u64);
                self.observe_micros("batch_predict_micros", *micros);
            }
            _ => {}
        }
    }
}

/// One histogram bucket: observations with duration ≤ `le_micros`
/// (`None` = the +∞ catch-all), exclusive of lower buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive upper bound in microseconds; `None` for the overflow
    /// bucket.
    pub le_micros: Option<u64>,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, in microseconds.
    pub sum_micros: u64,
    /// Smallest observation (0 when empty).
    pub min_micros: u64,
    /// Largest observation.
    pub max_micros: u64,
    /// Per-bucket counts, smallest bound first.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in microseconds by
    /// linear interpolation inside the bucket that holds the target
    /// rank (the prometheus `histogram_quantile` scheme). The estimate
    /// is clamped to the observed `[min, max]` range, which makes it
    /// exact for single-valued histograms; the overflow bucket
    /// interpolates between the last finite bound and `max_micros`.
    /// Returns 0 for an empty histogram.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let below = cumulative;
            cumulative += bucket.count;
            if (cumulative as f64) < rank || bucket.count == 0 {
                continue;
            }
            let lower = if i == 0 {
                0.0
            } else {
                self.buckets[i - 1].le_micros.unwrap_or(0) as f64
            };
            let upper = match bucket.le_micros {
                Some(le) => le as f64,
                None => self.max_micros as f64,
            };
            let fraction = ((rank - below as f64) / bucket.count as f64).clamp(0.0, 1.0);
            let estimate = lower + (upper - lower) * fraction;
            return estimate.clamp(self.min_micros as f64, self.max_micros as f64);
        }
        self.max_micros as f64
    }
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last set value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as pretty-printed JSON (stable key order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(": ");
            write_float(&mut out, *value);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum_micros\": {}, \"min_micros\": {}, \"max_micros\": {}, \"mean_micros\": ",
                h.count, h.sum_micros, h.min_micros, h.max_micros
            ));
            write_float(&mut out, h.mean_micros());
            out.push_str(", \"buckets\": [");
            for (j, bucket) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                match bucket.le_micros {
                    Some(le) => out.push_str(&format!(
                        "{{\"le_micros\": {le}, \"count\": {}}}",
                        bucket.count
                    )),
                    None => out.push_str(&format!(
                        "{{\"le_micros\": null, \"count\": {}}}",
                        bucket.count
                    )),
                }
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a snapshot previously written by
    /// [`MetricsSnapshot::to_json`]. Unknown fields (e.g. the derived
    /// `mean_micros`, or fields added by future versions) are ignored.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, crate::json::JsonError> {
        use crate::json::{JsonError, Value};
        let value = crate::json::parse(text)?;
        let mut counters = BTreeMap::new();
        if let Some(section @ Value::Object(map)) = value.get("counters") {
            for name in map.keys() {
                counters.insert(name.clone(), section.req_uint(name)?);
            }
        }
        // Absent in files written before gauges existed; an empty map
        // keeps those round-tripping.
        let mut gauges = BTreeMap::new();
        if let Some(section @ Value::Object(map)) = value.get("gauges") {
            for name in map.keys() {
                gauges.insert(name.clone(), section.req_float(name)?);
            }
        }
        let mut histograms = BTreeMap::new();
        if let Some(Value::Object(map)) = value.get("histograms") {
            for (name, h) in map {
                let buckets = match h.get("buckets") {
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(|b| {
                            let le_micros = match b.get("le_micros") {
                                Some(Value::Null) | None => None,
                                _ => Some(b.req_uint("le_micros")?),
                            };
                            Ok(Bucket {
                                le_micros,
                                count: b.req_uint("count")?,
                            })
                        })
                        .collect::<Result<Vec<_>, JsonError>>()?,
                    _ => return Err(JsonError::new(format!("histogram {name:?} lacks buckets"))),
                };
                histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count: h.req_uint("count")?,
                        sum_micros: h.req_uint("sum_micros")?,
                        min_micros: h.req_uint("min_micros")?,
                        max_micros: h.req_uint("max_micros")?,
                        buckets,
                    },
                );
            }
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` comments, `_total`-style counters as
    /// written, histograms as cumulative `_bucket{le="..."}` series plus
    /// `_sum` / `_count`. Metric names are sanitized (`.` → `_`, any
    /// other non-`[a-zA-Z0-9_:]` byte → `_`) so registry keys like
    /// `stage.tune_micros` become legal Prometheus names.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(
            64 * (self.counters.len() + self.gauges.len()) + 512 * self.histograms.len(),
        );
        for (name, value) in &self.counters {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} "));
            write_float(&mut out, *value);
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            // Prometheus buckets are cumulative, ours are per-bucket.
            let mut cumulative = 0u64;
            for bucket in &h.buckets {
                cumulative += bucket.count;
                match bucket.le_micros {
                    Some(le) => {
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    None => {
                        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    }
                }
            }
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n",
                h.sum_micros, h.count
            ));
        }
        out
    }
}

/// Maps a registry key to a legal Prometheus metric name.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use crate::json;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.inc("a");
        m.add("b", 40);
        let snap = m.snapshot();
        assert_eq!(snap.counters["a"], 2);
        assert_eq!(snap.counters["b"], 40);
    }

    #[test]
    fn histograms_track_count_sum_min_max_and_buckets() {
        let m = MetricsRegistry::new();
        m.observe_micros("d", 1); // bucket 0 (≤1)
        m.observe_micros("d", 500); // bucket 3 (≤1_000)
        m.observe_micros("d", 2_000_000_000); // overflow bucket
        let h = &m.snapshot().histograms["d"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_micros, 2_000_000_501);
        assert_eq!(h.min_micros, 1);
        assert_eq!(h.max_micros, 2_000_000_000);
        assert_eq!(h.buckets.len(), BUCKET_BOUNDS_MICROS.len() + 1);
        assert_eq!(h.buckets[0].count, 1);
        assert_eq!(h.buckets[3].count, 1);
        assert_eq!(h.buckets.last().unwrap().count, 1);
        assert_eq!(h.buckets.last().unwrap().le_micros, None);
        let total: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, h.count);
        assert!((h.mean_micros() - 2_000_000_501.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn observer_impl_aggregates_across_scenarios() {
        let m = MetricsRegistry::new();
        for scenario in ["2019_7", "2019_30"] {
            m.on_event(&Event::ScenarioStarted {
                scenario: scenario.into(),
                n_candidates: 200,
            });
            m.on_event(&Event::StageFinished {
                scenario: scenario.into(),
                stage: Stage::Tune,
                micros: 1_000,
            });
            for i in 0..3 {
                m.on_event(&Event::FraIteration {
                    scenario: scenario.into(),
                    iteration: i,
                    n_before: 200 - 5 * i,
                    n_removed: 5,
                    corr_threshold: 0.5,
                    stall_break: false,
                });
            }
            m.on_event(&Event::ScenarioFinished {
                scenario: scenario.into(),
                n_candidates: 200,
                fra_survivors: 100,
                fra_iterations: 3,
                shap_overlap: 70,
                final_features: 110,
                micros: 9_000,
            });
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["scenarios_finished_total"], 2);
        assert_eq!(snap.counters["fra_iterations_total"], 6);
        assert_eq!(snap.counters["fra_features_removed_total"], 30);
        assert_eq!(snap.counters["events.stage_finished"], 2);
        assert_eq!(snap.counters["events_total"], 12);
        assert_eq!(snap.histograms["stage.tune_micros"].count, 2);
        assert_eq!(snap.histograms["scenario_micros"].sum_micros, 18_000);
    }

    #[test]
    fn observer_impl_derives_store_metrics() {
        let m = MetricsRegistry::new();
        m.on_event(&Event::ArtifactSaved {
            scenario: "2019_7".into(),
            model: "rf".into(),
            artifact_id: "abc123".into(),
            bytes: 2_048,
        });
        m.on_event(&Event::ArtifactLoaded {
            scenario: "2019_7".into(),
            model: "rf".into(),
            artifact_id: "abc123".into(),
            micros: 550,
        });
        for _ in 0..3 {
            m.on_event(&Event::BatchPredicted {
                scenario: "2019_7".into(),
                model: "rf".into(),
                rows: 64,
                micros: 1_200,
            });
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["artifacts_saved_total"], 1);
        assert_eq!(snap.counters["artifact_bytes_total"], 2_048);
        assert_eq!(snap.counters["artifacts_loaded_total"], 1);
        assert_eq!(snap.counters["batches_predicted_total"], 3);
        assert_eq!(snap.counters["inference_rows_total"], 192);
        assert_eq!(snap.histograms["artifact_load_micros"].count, 1);
        assert_eq!(snap.histograms["batch_predict_micros"].sum_micros, 3_600);
    }

    #[test]
    fn snapshot_json_is_parseable_and_complete() {
        let m = MetricsRegistry::new();
        m.inc("events_total");
        m.observe_micros("stage.fra_micros", 1234);
        let text = m.snapshot().to_json();
        let value = json::parse(&text).expect("snapshot JSON parses");
        assert_eq!(
            value
                .get("counters")
                .and_then(|c| c.req_uint("events_total").ok()),
            Some(1)
        );
        let h = value
            .get("histograms")
            .and_then(|h| h.get("stage.fra_micros"))
            .expect("histogram present");
        assert_eq!(h.req_uint("count").unwrap(), 1);
        assert_eq!(h.req_uint("sum_micros").unwrap(), 1234);
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let text = MetricsRegistry::new().snapshot().to_json();
        let value = json::parse(&text).unwrap();
        assert!(value.get("counters").is_some());
        assert!(value.get("histograms").is_some());
    }

    /// Which bucket holds a single observation of `micros`.
    fn bucket_of(micros: u64) -> usize {
        let m = MetricsRegistry::new();
        m.observe_micros("h", micros);
        let h = &m.snapshot().histograms["h"];
        h.buckets.iter().position(|b| b.count == 1).unwrap()
    }

    #[test]
    fn values_exactly_on_a_bucket_edge_land_in_that_bucket() {
        // Bounds are inclusive: an observation equal to a bound belongs
        // to that bound's bucket, one more spills into the next.
        for (i, &bound) in BUCKET_BOUNDS_MICROS.iter().enumerate() {
            assert_eq!(bucket_of(bound), i, "exactly {bound}");
            assert_eq!(bucket_of(bound + 1), i + 1, "just over {bound}");
        }
    }

    #[test]
    fn zero_lands_in_the_smallest_bucket() {
        assert_eq!(bucket_of(0), 0);
        let m = MetricsRegistry::new();
        m.observe_micros("h", 0);
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.min_micros, 0);
        assert_eq!(h.max_micros, 0);
        assert_eq!(h.sum_micros, 0);
    }

    #[test]
    fn u64_max_lands_in_the_overflow_bucket_without_overflowing_sum() {
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        let m = MetricsRegistry::new();
        m.observe_micros("h", u64::MAX);
        m.observe_micros("h", u64::MAX); // sum saturates, no panic
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_micros, u64::MAX);
        assert_eq!(h.max_micros, u64::MAX);
        assert_eq!(h.buckets.last().unwrap().count, 2);
    }

    #[test]
    fn last_finite_bound_is_not_the_overflow_bucket() {
        // 1e9 µs is the largest finite bound; it must land in the last
        // *bounded* bucket, with the overflow bucket still empty.
        let m = MetricsRegistry::new();
        m.observe_micros("h", 1_000_000_000);
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.buckets[N_BUCKETS - 2].count, 1);
        assert_eq!(h.buckets[N_BUCKETS - 1].count, 0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let m = MetricsRegistry::new();
        // 100 observations spread over the (100, 1000] bucket.
        for i in 0..100 {
            m.observe_micros("h", 500 + i);
        }
        let h = &m.snapshot().histograms["h"];
        let p50 = h.quantile_micros(0.5);
        let p99 = h.quantile_micros(0.99);
        // Interpolation can only say "inside the bucket", clamped to
        // the observed range.
        assert!((500.0..=599.0).contains(&p50), "p50 = {p50}");
        assert!((500.0..=599.0).contains(&p99), "p99 = {p99}");
        assert!(p99 >= p50);
        // Single observation: exact because of the min/max clamp.
        let m = MetricsRegistry::new();
        m.observe_micros("one", 42);
        let h = &m.snapshot().histograms["one"];
        assert_eq!(h.quantile_micros(0.5), 42.0);
        assert_eq!(h.quantile_micros(0.99), 42.0);
        // Empty histogram.
        let empty = HistogramSnapshot {
            count: 0,
            sum_micros: 0,
            min_micros: 0,
            max_micros: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile_micros(0.5), 0.0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let m = MetricsRegistry::new();
        m.inc("events_total");
        m.add("rows", 512);
        m.set_gauge("serve.queue_depth", 3.0);
        m.set_gauge("serve.load", 0.75);
        m.observe_micros("stage.fra_micros", 1234);
        m.observe_micros("stage.fra_micros", 2_000_000_000);
        let snap = m.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn gauges_take_the_last_written_value() {
        let m = MetricsRegistry::new();
        m.set_gauge("depth", 4.0);
        m.set_gauge("depth", 2.0);
        assert_eq!(m.snapshot().gauges["depth"], 2.0);
    }

    #[test]
    fn text_exposition_renders_all_metric_kinds() {
        let m = MetricsRegistry::new();
        m.add("http_requests_total", 7);
        m.set_gauge("serve.queue_depth", 3.0);
        m.observe_micros("http.predict_micros", 5); // bucket le=10
        m.observe_micros("http.predict_micros", 50_000); // bucket le=100_000
        let text = m.snapshot().to_text();
        assert!(text.contains("# TYPE http_requests_total counter\nhttp_requests_total 7\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3.0\n"));
        assert!(text.contains("# TYPE http_predict_micros histogram\n"));
        // Buckets are cumulative: the le=10 bucket holds 1, everything
        // from le=100000 on holds 2, and +Inf equals the count.
        assert!(text.contains("http_predict_micros_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("http_predict_micros_bucket{le=\"100000\"} 2\n"));
        assert!(text.contains("http_predict_micros_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("http_predict_micros_sum 50005\n"));
        assert!(text.contains("http_predict_micros_count 2\n"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line {line:?}");
        }
    }

    #[test]
    fn from_json_tolerates_missing_gauges_section() {
        let snap =
            MetricsSnapshot::from_json("{\"counters\":{\"a\":1},\"histograms\":{}}").unwrap();
        assert!(snap.gauges.is_empty());
        assert_eq!(snap.counters["a"], 1);
    }

    #[test]
    fn from_json_ignores_unknown_fields() {
        let text = "{\"counters\":{},\"histograms\":{\"h\":{\"count\":1,\
                     \"sum_micros\":5,\"min_micros\":5,\"max_micros\":5,\
                     \"mean_micros\":5.0,\"new_field\":[1,2],\
                     \"buckets\":[{\"le_micros\":null,\"count\":1,\"extra\":0}]}},\
                     \"future_section\":{\"x\":1}}";
        let snap = MetricsSnapshot::from_json(text).unwrap();
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.histograms["h"].buckets.len(), 1);
    }
}
