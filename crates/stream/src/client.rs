//! Minimal HTTP/1.1 client for talking to a running `c100-serve`
//! instance.
//!
//! The server speaks one request per connection (`Connection: close`),
//! which makes the client side equally trivial: dial, write the whole
//! request, read to EOF, split head from body. No pooling, no keepalive,
//! no chunked encoding — none of which the server emits.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::{Result, StreamError};

/// How long a single request may spend connecting, writing, or reading.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP response: status code and body text.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code from the response line.
    pub status: u16,
    /// Response body (everything after the blank line).
    pub body: String,
}

impl HttpReply {
    /// True for any 2xx status.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// POSTs `body` as JSON to `http://{addr}{path}`.
pub fn post_json(addr: &str, path: &str, body: &str) -> Result<HttpReply> {
    request(addr, "POST", path, Some(body))
}

/// GETs `http://{addr}{path}`.
pub fn get(addr: &str, path: &str) -> Result<HttpReply> {
    request(addr, "GET", path, None)
}

fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<HttpReply> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| StreamError::Http(format!("connect {addr}: {e}")))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_nodelay(true).ok();

    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| StreamError::Http(format!("write {method} {path}: {e}")))?;

    // `Connection: close` means the response ends at EOF.
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| StreamError::Http(format!("read {method} {path}: {e}")))?;
    let text = String::from_utf8(raw)
        .map_err(|_| StreamError::Http(format!("{method} {path}: response is not UTF-8")))?;

    let status = text
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| StreamError::Http(format!("{method} {path}: malformed response line")))?;
    let body = match text.split_once("\r\n\r\n") {
        Some((_head, body)) => body.to_string(),
        None => String::new(),
    };
    Ok(HttpReply { status, body })
}

/// Like [`post_json`] but turns any non-2xx status into an error, so
/// callers that require success can `?` it.
pub fn post_json_ok(addr: &str, path: &str, body: &str) -> Result<HttpReply> {
    let reply = post_json(addr, path, body)?;
    if !reply.is_success() {
        return Err(StreamError::Http(format!(
            "POST {path} returned {}: {}",
            reply.status,
            reply.body.trim()
        )));
    }
    Ok(reply)
}
