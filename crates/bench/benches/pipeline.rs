//! End-to-end pipeline-stage benchmarks: one per stage of the per-scenario
//! experiment (synthesis, assembly, index construction, scenario build,
//! FRA, SHAP ranking, diversity evaluation), plus the observer-overhead
//! check backing the c100-obs design claim that a `NullObserver` costs
//! nothing.

use criterion::{criterion_group, criterion_main, Criterion};

use c100_core::dataset::assemble;
use c100_core::diversity::diversity_experiment;
use c100_core::fra::{run_fra, run_fra_observed, FraConfig};
use c100_core::index::Crypto100Builder;
use c100_core::profile::Profile;
use c100_core::scenario::{build_scenario, Period};
use c100_core::selection::shap_ranking;
use c100_obs::NullObserver;
use c100_synth::{generate, SynthConfig};
use c100_timeseries::Date;

/// Very small fixture so single-core Criterion runs stay in seconds.
fn tiny_config(seed: u64) -> SynthConfig {
    SynthConfig {
        seed,
        start: Date::from_ymd(2019, 1, 1).unwrap(),
        end: Date::from_ymd(2019, 12, 31).unwrap(),
        n_assets: 110,
        warmup_days: 250,
    }
}

fn bench_synthesis(c: &mut Criterion) {
    let cfg = SynthConfig::small(1);
    c.bench_function("synth_generate_small", |b| b.iter(|| generate(&cfg)));
}

fn bench_assembly_and_index(c: &mut Criterion) {
    let data = generate(&SynthConfig::small(2));
    c.bench_function("dataset_assemble", |b| b.iter(|| assemble(&data).unwrap()));
    c.bench_function("crypto100_index_build", |b| {
        b.iter(|| Crypto100Builder::default().build(&data.universe))
    });
}

fn bench_scenario_build(c: &mut Criterion) {
    let data = generate(&SynthConfig::small(3));
    let master = assemble(&data).unwrap();
    c.bench_function("scenario_build_2019_w30", |b| {
        b.iter(|| build_scenario(&master, Period::Y2019, 30).unwrap())
    });
}

fn bench_fra(c: &mut Criterion) {
    let data = generate(&tiny_config(4));
    let master = assemble(&data).unwrap();
    let scenario = build_scenario(&master, Period::Y2019, 7).unwrap();
    let profile = Profile::fast();
    // Few iterations: Criterion budget.
    let config = FraConfig::new().with_target_len(180).with_max_iterations(8);
    c.bench_function("fra_full_run_w7", |b| {
        b.iter(|| {
            run_fra(
                &scenario,
                &profile.rf_grid[0],
                &profile.gbdt_grid[0],
                &config,
                1,
                0,
            )
            .unwrap()
        })
    });
}

/// The c100-obs design claim: threading a `NullObserver` through the
/// pipeline costs nothing measurable versus the silent legacy signature.
/// Compare the two `fra` bars of this group — they should be within noise
/// (<1%) of each other.
fn bench_observer_overhead(c: &mut Criterion) {
    let data = generate(&tiny_config(7));
    let master = assemble(&data).unwrap();
    let scenario = build_scenario(&master, Period::Y2019, 7).unwrap();
    let profile = Profile::fast();
    let config = FraConfig::new().with_target_len(180).with_max_iterations(8);
    let mut group = c.benchmark_group("observer_overhead");
    group.bench_function("fra_silent_wrapper", |b| {
        b.iter(|| {
            run_fra(
                &scenario,
                &profile.rf_grid[0],
                &profile.gbdt_grid[0],
                &config,
                1,
                0,
            )
            .unwrap()
        })
    });
    group.bench_function("fra_null_observer", |b| {
        b.iter(|| {
            run_fra_observed(
                &scenario,
                &profile.rf_grid[0],
                &profile.gbdt_grid[0],
                &config,
                1,
                0,
                &NullObserver,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_shap_ranking(c: &mut Criterion) {
    let data = generate(&tiny_config(5));
    let master = assemble(&data).unwrap();
    let scenario = build_scenario(&master, Period::Y2019, 7).unwrap();
    let profile = Profile::fast();
    c.bench_function("shap_ranking_96rows", |b| {
        b.iter(|| shap_ranking(&scenario, &profile.shap_forest, 96, 0).unwrap())
    });
}

fn bench_diversity(c: &mut Criterion) {
    let data = generate(&tiny_config(6));
    let master = assemble(&data).unwrap();
    let scenario = build_scenario(&master, Period::Y2019, 30).unwrap();
    let profile = Profile::fast();
    // A mid-sized "final vector": first 80 candidates.
    let final_features: Vec<String> = scenario.feature_names.iter().take(80).cloned().collect();
    c.bench_function("diversity_experiment_w30", |b| {
        b.iter(|| diversity_experiment(&scenario, &final_features, &profile.rf_grid[0], 0).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_synthesis, bench_assembly_and_index, bench_scenario_build,
              bench_fra, bench_observer_overhead, bench_shap_ranking, bench_diversity
}
criterion_main!(benches);
