//! A named column of daily `f64` samples.
//!
//! Missing observations are encoded as `NaN`: the paper's raw sources start
//! at different dates (USDC metrics in late 2018, the fear-and-greed index
//! in early 2018) and have gaps, so every column must tolerate holes until
//! the preprocessing phase fills or drops them.

/// A named column of `f64` values; `NaN` encodes a missing observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    values: Vec<f64>,
}

impl Series {
    /// Creates a series from a name and raw values.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Series {
            name: name.into(),
            values,
        }
    }

    /// Creates a series of `len` missing values.
    pub fn missing(name: impl Into<String>, len: usize) -> Self {
        Series::new(name, vec![f64::NAN; len])
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the series in place.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Immutable view of the samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the samples.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its backing vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of samples (present or missing).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no samples at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of non-missing samples.
    pub fn count_present(&self) -> usize {
        self.values.iter().filter(|v| !v.is_nan()).count()
    }

    /// Number of missing (`NaN`) samples.
    pub fn count_missing(&self) -> usize {
        self.len() - self.count_present()
    }

    /// Index of the first non-missing sample, if any.
    pub fn first_present(&self) -> Option<usize> {
        self.values.iter().position(|v| !v.is_nan())
    }

    /// Index of the last non-missing sample, if any.
    pub fn last_present(&self) -> Option<usize> {
        self.values.iter().rposition(|v| !v.is_nan())
    }

    /// Length of the longest run of consecutive missing samples.
    pub fn longest_missing_run(&self) -> usize {
        let mut longest = 0;
        let mut current = 0;
        for v in &self.values {
            if v.is_nan() {
                current += 1;
                longest = longest.max(current);
            } else {
                current = 0;
            }
        }
        longest
    }

    /// Length of the longest run over which the present values do not
    /// change (missing samples extend the current run). The cleaning phase
    /// uses this to discard features that are flat for very long periods.
    pub fn longest_flat_run(&self) -> usize {
        let mut longest = 0usize;
        let mut current = 0usize;
        let mut last: Option<f64> = None;
        for v in &self.values {
            if v.is_nan() {
                // A gap does not break a flat run: a stale feed keeps its
                // last value conceptually.
                if last.is_some() {
                    current += 1;
                    longest = longest.max(current);
                }
                continue;
            }
            match last {
                Some(prev) if prev == *v => {
                    current += 1;
                }
                _ => {
                    current = 1;
                }
            }
            last = Some(*v);
            longest = longest.max(current);
        }
        longest
    }

    /// Returns a slice copy of the series over `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Series {
        Series::new(self.name.clone(), self.values[start..end].to_vec())
    }

    /// Applies `f` to every present value in place; missing values are kept.
    pub fn map_present(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.values {
            if !v.is_nan() {
                *v = f(*v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: &[f64]) -> Series {
        Series::new("x", values.to_vec())
    }

    #[test]
    fn counts_present_and_missing() {
        let series = s(&[1.0, f64::NAN, 3.0, f64::NAN]);
        assert_eq!(series.len(), 4);
        assert_eq!(series.count_present(), 2);
        assert_eq!(series.count_missing(), 2);
    }

    #[test]
    fn first_and_last_present() {
        let series = s(&[f64::NAN, f64::NAN, 3.0, 4.0, f64::NAN]);
        assert_eq!(series.first_present(), Some(2));
        assert_eq!(series.last_present(), Some(3));
        assert_eq!(Series::missing("m", 3).first_present(), None);
    }

    #[test]
    fn longest_missing_run_counts_gaps() {
        let series = s(&[1.0, f64::NAN, f64::NAN, 4.0, f64::NAN]);
        assert_eq!(series.longest_missing_run(), 2);
        assert_eq!(s(&[1.0, 2.0]).longest_missing_run(), 0);
    }

    #[test]
    fn longest_flat_run_detects_stale_features() {
        assert_eq!(s(&[5.0, 5.0, 5.0, 6.0]).longest_flat_run(), 3);
        assert_eq!(s(&[1.0, 2.0, 3.0]).longest_flat_run(), 1);
        // A NaN gap between equal values keeps the run alive.
        assert_eq!(s(&[5.0, f64::NAN, 5.0]).longest_flat_run(), 3);
        // Leading missing values do not start a run.
        assert_eq!(s(&[f64::NAN, 1.0, 1.0]).longest_flat_run(), 2);
    }

    #[test]
    fn map_present_skips_missing() {
        let mut series = s(&[1.0, f64::NAN, 3.0]);
        series.map_present(|v| v * 2.0);
        assert_eq!(series.values()[0], 2.0);
        assert!(series.values()[1].is_nan());
        assert_eq!(series.values()[2], 6.0);
    }

    #[test]
    fn slice_copies_range() {
        let series = s(&[1.0, 2.0, 3.0, 4.0]);
        let cut = series.slice(1, 3);
        assert_eq!(cut.values(), &[2.0, 3.0]);
        assert_eq!(cut.name(), "x");
    }
}
