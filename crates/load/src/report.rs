//! The artifact a load run leaves behind: outcome counts, latency
//! summary, and an SLO verdict — rendered to `load_report.json` next
//! to the run's `metrics.json` so CI can both eyeball the numbers and
//! gate on them.

use std::collections::BTreeMap;

use c100_obs::json::{write_escaped, write_float};

/// Everything one replay produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// `"closed"` or `"open"`.
    pub mode: String,
    /// Worker/connection count.
    pub connections: usize,
    /// Open-loop target rate; `0` for closed loop.
    pub rate_per_sec: f64,
    /// The plan seed, for byte-identical re-replay.
    pub seed: u64,
    /// Requests attempted (`ok + shed + failed`).
    pub requests: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 503 responses — deliberate load shedding, *not* failures.
    pub shed: u64,
    /// Everything else: non-2xx/non-503 statuses, I/O errors, timeouts.
    pub failed: u64,
    /// Exact response counts by status code (I/O errors carry none).
    pub statuses: BTreeMap<u16, u64>,
    /// Wall-clock of the whole replay.
    pub elapsed_secs: f64,
    /// `requests / elapsed_secs`.
    pub throughput_rps: f64,
    /// Mean request latency (open loop: from scheduled fire time).
    pub mean_micros: f64,
    /// Median latency.
    pub p50_micros: f64,
    /// 90th percentile latency.
    pub p90_micros: f64,
    /// 99th percentile latency.
    pub p99_micros: f64,
    /// Worst observed latency.
    pub max_micros: u64,
}

impl LoadReport {
    /// Failures as a fraction of attempts. Sheds are excluded: a 503
    /// is the server keeping its latency promise under overload.
    pub fn error_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.failed as f64 / self.requests as f64
        }
    }

    /// Hand-rolled JSON, matching the repo's dependency-free reports.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"mode\":");
        write_escaped(&mut out, &self.mode);
        out.push_str(&format!(
            ",\"connections\":{},\"seed\":{},\"requests\":{},\"ok\":{},\"shed\":{},\
             \"failed\":{}",
            self.connections, self.seed, self.requests, self.ok, self.shed, self.failed
        ));
        out.push_str(",\"rate_per_sec\":");
        write_float(&mut out, self.rate_per_sec);
        out.push_str(",\"error_rate\":");
        write_float(&mut out, self.error_rate());
        out.push_str(",\"elapsed_secs\":");
        write_float(&mut out, self.elapsed_secs);
        out.push_str(",\"throughput_rps\":");
        write_float(&mut out, self.throughput_rps);
        out.push_str(",\"latency_micros\":{\"mean\":");
        write_float(&mut out, self.mean_micros);
        out.push_str(",\"p50\":");
        write_float(&mut out, self.p50_micros);
        out.push_str(",\"p90\":");
        write_float(&mut out, self.p90_micros);
        out.push_str(",\"p99\":");
        write_float(&mut out, self.p99_micros);
        out.push_str(&format!(",\"max\":{}}}", self.max_micros));
        out.push_str(",\"statuses\":{");
        for (i, (status, n)) in self.statuses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{status}\":{n}"));
        }
        out.push_str("}}");
        out
    }
}

/// The service-level objective a replay must meet to pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Slo {
    /// Upper bound on p99 latency, when set.
    pub p99_micros: Option<f64>,
    /// Upper bound on [`LoadReport::error_rate`], when set.
    pub max_error_rate: Option<f64>,
}

impl Slo {
    /// Every objective the report misses, as human-readable lines.
    /// Empty means the run passed.
    pub fn violations(&self, report: &LoadReport) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(limit) = self.p99_micros {
            if report.p99_micros > limit {
                violations.push(format!(
                    "p99 latency {:.0}us exceeds the {limit:.0}us objective",
                    report.p99_micros
                ));
            }
        }
        if let Some(limit) = self.max_error_rate {
            if report.error_rate() > limit {
                violations.push(format!(
                    "error rate {:.4} ({} of {} requests) exceeds the {limit:.4} objective",
                    report.error_rate(),
                    report.failed,
                    report.requests
                ));
            }
        }
        violations
    }

    /// True when the report meets every set objective.
    pub fn passed(&self, report: &LoadReport) -> bool {
        self.violations(report).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LoadReport {
        LoadReport {
            mode: "closed".to_string(),
            connections: 8,
            rate_per_sec: 0.0,
            seed: 42,
            requests: 1000,
            ok: 990,
            shed: 8,
            failed: 2,
            statuses: BTreeMap::from([(200, 990), (503, 8), (500, 2)]),
            elapsed_secs: 2.0,
            throughput_rps: 500.0,
            mean_micros: 800.0,
            p50_micros: 700.0,
            p90_micros: 1500.0,
            p99_micros: 4000.0,
            max_micros: 9000,
        }
    }

    #[test]
    fn sheds_do_not_count_toward_the_error_rate() {
        let r = report();
        assert!((r.error_rate() - 0.002).abs() < 1e-12, "{}", r.error_rate());
    }

    #[test]
    fn json_round_trips_through_the_obs_parser() {
        let text = report().to_json();
        let value = c100_obs::json::parse(&text).unwrap();
        assert_eq!(value.req_str("mode").unwrap(), "closed");
        assert_eq!(value.req_uint("requests").unwrap(), 1000);
        assert_eq!(value.req_uint("shed").unwrap(), 8);
        let latency = value.get("latency_micros").unwrap();
        assert_eq!(latency.req_float("p99").unwrap(), 4000.0);
        let statuses = value.get("statuses").unwrap();
        assert_eq!(statuses.req_uint("503").unwrap(), 8);
    }

    #[test]
    fn slo_names_each_violated_objective() {
        let slo = Slo {
            p99_micros: Some(3000.0),
            max_error_rate: Some(0.001),
        };
        let violations = slo.violations(&report());
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].contains("p99"), "{violations:?}");
        assert!(violations[1].contains("error rate"), "{violations:?}");
        assert!(!slo.passed(&report()));
    }

    #[test]
    fn an_empty_slo_always_passes() {
        assert!(Slo::default().passed(&report()));
        let loose = Slo {
            p99_micros: Some(1e9),
            max_error_rate: Some(1.0),
        };
        assert!(loose.passed(&report()));
    }
}
