//! Moving averages: simple, exponential and weighted.

/// Simple moving average over `window` trailing samples. The first
/// `window - 1` outputs are `NaN`.
pub fn sma(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be >= 1");
    let n = values.len();
    let mut out = vec![f64::NAN; n];
    if n < window {
        return out;
    }
    let mut sum: f64 = values[..window].iter().sum();
    out[window - 1] = sum / window as f64;
    for t in window..n {
        sum += values[t] - values[t - window];
        out[t] = sum / window as f64;
    }
    out
}

/// Exponential moving average with span `window`
/// (`alpha = 2 / (window + 1)`), seeded with the SMA of the first window —
/// the convention most charting platforms use. The first `window - 1`
/// outputs are `NaN`.
pub fn ema(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be >= 1");
    let n = values.len();
    let mut out = vec![f64::NAN; n];
    if n < window {
        return out;
    }
    let alpha = 2.0 / (window as f64 + 1.0);
    let seed: f64 = values[..window].iter().sum::<f64>() / window as f64;
    out[window - 1] = seed;
    let mut prev = seed;
    for t in window..n {
        prev = alpha * values[t] + (1.0 - alpha) * prev;
        out[t] = prev;
    }
    out
}

/// Linearly weighted moving average: the most recent sample gets weight
/// `window`, the oldest weight 1.
pub fn wma(values: &[f64], window: usize) -> Vec<f64> {
    assert!(window >= 1, "window must be >= 1");
    let n = values.len();
    let mut out = vec![f64::NAN; n];
    let denom = (window * (window + 1)) as f64 / 2.0;
    for t in (window - 1)..n {
        let mut acc = 0.0;
        for k in 0..window {
            acc += values[t - k] * (window - k) as f64;
        }
        out[t] = acc / denom;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sma_basic() {
        let out = sma(&[1.0, 2.0, 3.0, 4.0, 5.0], 3);
        assert!(out[0].is_nan() && out[1].is_nan());
        assert_eq!(&out[2..], &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn sma_window_one_is_identity() {
        let v = [3.0, 1.0, 4.0];
        assert_eq!(sma(&v, 1), v.to_vec());
    }

    #[test]
    fn sma_window_longer_than_input_is_all_nan() {
        assert!(sma(&[1.0, 2.0], 5).iter().all(|v| v.is_nan()));
    }

    #[test]
    fn ema_constant_input_stays_constant() {
        let out = ema(&[7.0; 10], 4);
        for v in &out[3..] {
            assert!((v - 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ema_tracks_trend_with_lag() {
        let values: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let out = ema(&values, 10);
        // EMA of a ramp lags below the current value but rises.
        assert!(out[49] < 49.0);
        assert!(out[49] > out[30]);
    }

    #[test]
    fn ema_seed_is_initial_sma() {
        let values = [2.0, 4.0, 6.0, 100.0];
        let out = ema(&values, 3);
        assert_eq!(out[2], 4.0);
    }

    #[test]
    fn ema_bounded_by_input_range() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64).collect();
        let out = ema(&values, 5);
        for v in out.iter().filter(|v| !v.is_nan()) {
            assert!((0.0..=10.0).contains(v));
        }
    }

    #[test]
    fn wma_weights_recent_more() {
        // Rising series: WMA > SMA.
        let values: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let w = wma(&values, 5);
        let s = sma(&values, 5);
        assert!(w[19] > s[19]);
        // Hand check: wma([1,2,3], 3) = (1*1 + 2*2 + 3*3)/6 = 14/6.
        let out = wma(&[1.0, 2.0, 3.0], 3);
        assert!((out[2] - 14.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn zero_window_panics() {
        sma(&[1.0], 0);
    }
}
