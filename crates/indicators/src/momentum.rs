//! Momentum oscillators: RSI, ROC, MACD, stochastic oscillator.

use crate::moving::{ema, sma};

/// Relative Strength Index over `period` days, using Wilder's smoothing.
/// Output is in `[0, 100]`; the first `period` entries are `NaN`.
pub fn rsi(values: &[f64], period: usize) -> Vec<f64> {
    assert!(period >= 1, "period must be >= 1");
    let n = values.len();
    let mut out = vec![f64::NAN; n];
    if n <= period {
        return out;
    }
    let mut avg_gain = 0.0;
    let mut avg_loss = 0.0;
    for t in 1..=period {
        let change = values[t] - values[t - 1];
        if change > 0.0 {
            avg_gain += change;
        } else {
            avg_loss -= change;
        }
    }
    avg_gain /= period as f64;
    avg_loss /= period as f64;
    out[period] = rsi_from(avg_gain, avg_loss);
    for t in (period + 1)..n {
        let change = values[t] - values[t - 1];
        let (gain, loss) = if change > 0.0 {
            (change, 0.0)
        } else {
            (0.0, -change)
        };
        avg_gain = (avg_gain * (period - 1) as f64 + gain) / period as f64;
        avg_loss = (avg_loss * (period - 1) as f64 + loss) / period as f64;
        out[t] = rsi_from(avg_gain, avg_loss);
    }
    out
}

fn rsi_from(avg_gain: f64, avg_loss: f64) -> f64 {
    if avg_loss == 0.0 {
        if avg_gain == 0.0 {
            50.0
        } else {
            100.0
        }
    } else {
        100.0 - 100.0 / (1.0 + avg_gain / avg_loss)
    }
}

/// Rate of change over `period` days, as a percentage.
pub fn roc(values: &[f64], period: usize) -> Vec<f64> {
    assert!(period >= 1, "period must be >= 1");
    crate::with_warmup(values.len(), period, |t| {
        let past = values[t - period];
        if past == 0.0 {
            f64::NAN
        } else {
            (values[t] - past) / past * 100.0
        }
    })
}

/// Momentum: raw difference `x[t] - x[t-period]`.
pub fn momentum(values: &[f64], period: usize) -> Vec<f64> {
    assert!(period >= 1, "period must be >= 1");
    crate::with_warmup(values.len(), period, |t| values[t] - values[t - period])
}

/// MACD line, signal line and histogram.
#[derive(Debug, Clone)]
pub struct Macd {
    /// Fast EMA minus slow EMA.
    pub macd: Vec<f64>,
    /// EMA of the MACD line.
    pub signal: Vec<f64>,
    /// MACD minus signal.
    pub histogram: Vec<f64>,
}

/// MACD with the conventional `(fast, slow, signal)` spans, e.g. (12, 26, 9).
pub fn macd(values: &[f64], fast: usize, slow: usize, signal_span: usize) -> Macd {
    assert!(fast < slow, "fast span must be shorter than slow");
    let ema_fast = ema(values, fast);
    let ema_slow = ema(values, slow);
    let n = values.len();
    let mut line = vec![f64::NAN; n];
    for t in 0..n {
        if !ema_fast[t].is_nan() && !ema_slow[t].is_nan() {
            line[t] = ema_fast[t] - ema_slow[t];
        }
    }
    // Signal = EMA of the defined part of the MACD line.
    let first = line.iter().position(|v| !v.is_nan()).unwrap_or(n);
    let mut signal = vec![f64::NAN; n];
    if first < n {
        let tail_signal = ema(&line[first..], signal_span);
        signal[first..].copy_from_slice(&tail_signal);
    }
    let mut histogram = vec![f64::NAN; n];
    for t in 0..n {
        if !line[t].is_nan() && !signal[t].is_nan() {
            histogram[t] = line[t] - signal[t];
        }
    }
    Macd {
        macd: line,
        signal,
        histogram,
    }
}

/// Stochastic oscillator %K and %D.
#[derive(Debug, Clone)]
pub struct Stochastic {
    /// Raw %K: position of the close within the trailing high-low range.
    pub k: Vec<f64>,
    /// %D: SMA of %K.
    pub d: Vec<f64>,
}

/// Stochastic oscillator over `period` days with a `d_span`-day %D.
pub fn stochastic(
    high: &[f64],
    low: &[f64],
    close: &[f64],
    period: usize,
    d_span: usize,
) -> Stochastic {
    assert_eq!(high.len(), low.len());
    assert_eq!(high.len(), close.len());
    assert!(period >= 1, "period must be >= 1");
    let n = close.len();
    let k = crate::with_warmup(n, period - 1, |t| {
        let lo = low[t + 1 - period..=t]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = high[t + 1 - period..=t]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if hi > lo {
            (close[t] - lo) / (hi - lo) * 100.0
        } else {
            50.0
        }
    });
    let first = k.iter().position(|v| !v.is_nan()).unwrap_or(n);
    let mut d = vec![f64::NAN; n];
    if first < n {
        let tail = sma(&k[first..], d_span);
        d[first..].copy_from_slice(&tail);
    }
    Stochastic { k, d }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsi_extremes() {
        let rising: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let out = rsi(&rising, 14);
        assert!((out[29] - 100.0).abs() < 1e-9);
        let falling: Vec<f64> = (0..30).map(|i| 100.0 - i as f64).collect();
        let out = rsi(&falling, 14);
        assert!(out[29].abs() < 1e-9);
    }

    #[test]
    fn rsi_flat_is_fifty() {
        let out = rsi(&[5.0; 20], 14);
        assert_eq!(out[19], 50.0);
    }

    #[test]
    fn rsi_in_range() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 83) % 97) as f64).collect();
        for v in rsi(&values, 14).iter().filter(|v| !v.is_nan()) {
            assert!((0.0..=100.0).contains(v));
        }
    }

    #[test]
    fn roc_and_momentum() {
        let v = [100.0, 110.0, 121.0];
        let r = roc(&v, 1);
        assert!((r[1] - 10.0).abs() < 1e-9);
        assert!((r[2] - 10.0).abs() < 1e-9);
        let m = momentum(&v, 2);
        assert!((m[2] - 21.0).abs() < 1e-9);
    }

    #[test]
    fn macd_constant_input_is_zero() {
        let out = macd(&[10.0; 60], 12, 26, 9);
        let defined: Vec<f64> = out.macd.iter().copied().filter(|v| !v.is_nan()).collect();
        assert!(!defined.is_empty());
        for v in defined {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn macd_positive_in_uptrend() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.05).exp()).collect();
        let out = macd(&values, 12, 26, 9);
        assert!(out.macd[99] > 0.0);
        assert!(!out.signal[99].is_nan());
        assert!((out.histogram[99] - (out.macd[99] - out.signal[99])).abs() < 1e-12);
    }

    #[test]
    fn stochastic_bounds_and_flat_case() {
        let high: Vec<f64> = (0..40).map(|i| 10.0 + ((i * 7) % 5) as f64).collect();
        let low: Vec<f64> = high.iter().map(|h| h - 2.0).collect();
        let close: Vec<f64> = high.iter().map(|h| h - 1.0).collect();
        let out = stochastic(&high, &low, &close, 14, 3);
        for v in out.k.iter().filter(|v| !v.is_nan()) {
            assert!((0.0..=100.0).contains(v));
        }
        // Degenerate flat market: %K pinned to 50.
        let flat = stochastic(&[5.0; 20], &[5.0; 20], &[5.0; 20], 14, 3);
        assert_eq!(flat.k[19], 50.0);
    }
}
