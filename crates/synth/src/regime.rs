//! Market-regime labeling and segmentation over the synthetic BTC path.
//!
//! The scenario matrix (`c100-matrix`) evaluates models inside
//! regime-conditioned windows: contiguous bull / bear / sideways segments
//! of the observed sample. Labels are derived from the *latent* log-price
//! path, which is a pure function of the seed — so for a given
//! [`crate::SynthConfig`] the segmentation is bit-identical no matter how
//! many scheduler threads later consume it.
//!
//! A day is labeled by its trailing `lookback`-day log-return: above
//! `threshold` is bull, below `-threshold` is bear, otherwise sideways.
//! The warm-up days simulated before the first observed day provide the
//! trailing history, so day 0 is labeled from real (simulated) returns
//! rather than a truncated window. Raw labels are then run-length encoded
//! and runs shorter than `min_segment` are merged into a neighbour, so
//! segments are long enough to train and evaluate inside.

use crate::latent::LatentPaths;

/// Trailing-return market regime of a single observed day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MarketRegime {
    /// Trailing return above the threshold.
    Bull,
    /// Trailing return below the negative threshold.
    Bear,
    /// Trailing return within the threshold band.
    Sideways,
}

impl MarketRegime {
    /// All regimes, in the order segments are reported.
    pub const ALL: [MarketRegime; 3] = [
        MarketRegime::Bull,
        MarketRegime::Bear,
        MarketRegime::Sideways,
    ];

    /// Stable lowercase label used in scenario ids and `matrix.json`.
    pub fn label(self) -> &'static str {
        match self {
            MarketRegime::Bull => "bull",
            MarketRegime::Bear => "bear",
            MarketRegime::Sideways => "sideways",
        }
    }

    /// Parses a label produced by [`MarketRegime::label`].
    pub fn parse(s: &str) -> Option<MarketRegime> {
        MarketRegime::ALL.into_iter().find(|r| r.label() == s)
    }
}

impl std::fmt::Display for MarketRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parameters of the trailing-return labeling rule.
#[derive(Debug, Clone)]
pub struct RegimeConfig {
    /// Trailing window, days, over which the log-return is measured.
    pub lookback: usize,
    /// Log-return magnitude separating bull/bear from sideways.
    pub threshold: f64,
    /// Minimum segment length; shorter runs are merged into a neighbour.
    pub min_segment: usize,
}

impl Default for RegimeConfig {
    fn default() -> Self {
        RegimeConfig {
            lookback: 30,
            threshold: 0.15,
            min_segment: 45,
        }
    }
}

/// A maximal run of days assigned to one regime: rows `[start, end)` of
/// the observed sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegimeSegment {
    /// Regime the segment was merged under.
    pub regime: MarketRegime,
    /// First observed-day row (inclusive).
    pub start: usize,
    /// One past the last observed-day row (exclusive).
    pub end: usize,
}

impl RegimeSegment {
    /// Number of days in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the segment is empty (never produced by segmentation).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Labels every observed day of a simulated log-price path.
///
/// `log_price` is the full simulated path (`warmup` hidden days followed
/// by the observed sample); the result has `log_price.len() - warmup`
/// entries, one per observed day. The trailing window is clamped at the
/// start of the simulated path, so short warm-ups degrade gracefully.
pub fn label_path(log_price: &[f64], warmup: usize, config: &RegimeConfig) -> Vec<MarketRegime> {
    assert!(warmup <= log_price.len(), "warmup exceeds path length");
    let n_obs = log_price.len() - warmup;
    let mut labels = Vec::with_capacity(n_obs);
    for t in 0..n_obs {
        let here = warmup + t;
        let back = here.saturating_sub(config.lookback);
        let ret = log_price[here] - log_price[back];
        let label = if ret > config.threshold {
            MarketRegime::Bull
        } else if ret < -config.threshold {
            MarketRegime::Bear
        } else {
            MarketRegime::Sideways
        };
        labels.push(label);
    }
    labels
}

/// Labels every observed day of the latent BTC path.
pub fn label_days(latents: &LatentPaths, config: &RegimeConfig) -> Vec<MarketRegime> {
    label_path(&latents.log_price, latents.warmup, config)
}

/// Run-length encodes `labels` and merges runs shorter than
/// `min_segment` into an adjacent run.
///
/// The result partitions `0..labels.len()`: segments are non-empty,
/// contiguous, non-overlapping and cover every day exactly once. A short
/// run is absorbed by its predecessor (the first run by its successor),
/// keeping the absorber's regime, until every segment meets the minimum —
/// or only one segment remains (a degenerate all-sideways path yields one
/// segment spanning the whole sample).
pub fn segment_regimes(labels: &[MarketRegime], min_segment: usize) -> Vec<RegimeSegment> {
    if labels.is_empty() {
        return Vec::new();
    }
    // Run-length encode.
    let mut segments: Vec<RegimeSegment> = Vec::new();
    let mut start = 0usize;
    for t in 1..=labels.len() {
        if t == labels.len() || labels[t] != labels[start] {
            segments.push(RegimeSegment {
                regime: labels[start],
                start,
                end: t,
            });
            start = t;
        }
    }
    // Merge short runs, shortest first so ties resolve deterministically.
    // Absorption can leave two same-regime segments adjacent (the absorbed
    // run was the only thing separating them); coalesce after each step so
    // segments stay maximal runs.
    while segments.len() > 1 {
        let (idx, seg) = segments
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.len(), *i))
            .map(|(i, s)| (i, *s))
            .expect("segments is non-empty");
        if seg.len() >= min_segment {
            break;
        }
        if idx == 0 {
            segments[1].start = seg.start;
        } else {
            segments[idx - 1].end = seg.end;
        }
        segments.remove(idx);
        let mut i = 0;
        while i + 1 < segments.len() {
            if segments[i].regime == segments[i + 1].regime {
                segments[i].end = segments[i + 1].end;
                segments.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
    segments
}

/// Labels and segments the observed sample in one call.
pub fn segments_for(latents: &LatentPaths, config: &RegimeConfig) -> Vec<RegimeSegment> {
    segment_regimes(&label_days(latents, config), config.min_segment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthConfig;

    fn assert_partition(segments: &[RegimeSegment], n_days: usize) {
        if n_days == 0 {
            assert!(segments.is_empty());
            return;
        }
        assert!(!segments.is_empty());
        assert_eq!(segments[0].start, 0);
        assert_eq!(segments.last().unwrap().end, n_days);
        for w in segments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must tile the window");
        }
        for s in segments {
            assert!(s.start < s.end, "empty segment {s:?}");
        }
        // Every day covered exactly once.
        let covered: usize = segments.iter().map(|s| s.len()).sum();
        assert_eq!(covered, n_days);
    }

    #[test]
    fn labels_cover_observed_days() {
        let cfg = SynthConfig::small(17);
        let latents = crate::latent::simulate(&cfg);
        let labels = label_days(&latents, &RegimeConfig::default());
        assert_eq!(labels.len(), cfg.n_days());
    }

    #[test]
    fn default_config_finds_multiple_regimes() {
        let cfg = SynthConfig::default();
        let latents = crate::latent::simulate(&cfg);
        let labels = label_days(&latents, &RegimeConfig::default());
        let mut seen: Vec<MarketRegime> = labels.clone();
        seen.sort();
        seen.dedup();
        assert!(
            seen.len() >= 2,
            "full-sample path should visit multiple regimes, saw {seen:?}"
        );
        let segments = segment_regimes(&labels, RegimeConfig::default().min_segment);
        assert_partition(&segments, labels.len());
        for s in &segments {
            assert!(s.len() >= RegimeConfig::default().min_segment || segments.len() == 1);
        }
    }

    #[test]
    fn constant_path_is_all_sideways() {
        let log_price = vec![7.0; 400];
        let labels = label_path(&log_price, 100, &RegimeConfig::default());
        assert_eq!(labels.len(), 300);
        assert!(labels.iter().all(|&l| l == MarketRegime::Sideways));
        let segments = segment_regimes(&labels, 45);
        assert_eq!(segments.len(), 1);
        assert_eq!(
            segments[0],
            RegimeSegment {
                regime: MarketRegime::Sideways,
                start: 0,
                end: 300
            }
        );
    }

    #[test]
    fn monotone_ramp_is_all_bull() {
        let log_price: Vec<f64> = (0..200).map(|t| t as f64 * 0.02).collect();
        let labels = label_path(&log_price, 50, &RegimeConfig::default());
        assert!(labels.iter().all(|&l| l == MarketRegime::Bull));
    }

    #[test]
    fn short_runs_merge_into_neighbours() {
        use MarketRegime::*;
        // 10 bull, 3 bear, 10 bull → the bear blip is absorbed.
        let mut labels = vec![Bull; 10];
        labels.extend(vec![Bear; 3]);
        labels.extend(vec![Bull; 10]);
        let segments = segment_regimes(&labels, 5);
        assert_partition(&segments, labels.len());
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].regime, Bull);
    }

    #[test]
    fn leading_short_run_merges_forward() {
        use MarketRegime::*;
        let mut labels = vec![Bear; 2];
        labels.extend(vec![Sideways; 20]);
        let segments = segment_regimes(&labels, 5);
        assert_partition(&segments, labels.len());
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].regime, Sideways);
    }

    #[test]
    fn empty_labels_yield_no_segments() {
        assert!(segment_regimes(&[], 10).is_empty());
    }

    #[test]
    fn labeling_is_deterministic() {
        let cfg = SynthConfig::small(23);
        let a = segments_for(&crate::latent::simulate(&cfg), &RegimeConfig::default());
        let b = segments_for(&crate::latent::simulate(&cfg), &RegimeConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn regime_labels_round_trip() {
        for r in MarketRegime::ALL {
            assert_eq!(MarketRegime::parse(r.label()), Some(r));
        }
        assert_eq!(MarketRegime::parse("sidewise"), None);
    }
}
