//! The Macroeconomic Indicators inventory (~16 series).
//!
//! Macro series observe the three slow macro factors — the very top of the
//! causal chain (macro → global trend → traditional markets → crypto
//! trend, with ~65 days of cumulative lead). They therefore only pay off
//! at the paper's 90/180-day windows, and being monthly publications their
//! within-window variance is small, which is why the shorter 2019 scenario
//! set can drop the category entirely (Figure 4).

use rand::rngs::StdRng;
use rand::SeedableRng;

use c100_timeseries::{Date, Frame, Series};

use crate::latent::{gaussian, LatentPaths};
use crate::SynthConfig;

struct MacroSpec {
    name: &'static str,
    /// Level around which the series moves.
    base: f64,
    /// Additive sensitivity to each macro factor.
    loads: [f64; 3],
    /// Measurement noise (additive, in series units).
    noise: f64,
    /// Monthly publication steps (false = daily, e.g. the EPU index).
    monthly: bool,
    /// Freeze date for deliberately degraded feeds.
    freeze_after: Option<Date>,
    /// Clamp at zero (rates cannot go very negative here).
    floor_zero: bool,
}

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::from_ymd(y, m, day).expect("valid constant date")
}

fn table() -> Vec<MacroSpec> {
    vec![
        MacroSpec {
            name: "fed_funds_rate",
            base: 2.0,
            loads: [1.6, 0.2, 0.0],
            noise: 0.02,
            monthly: true,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "ecb_main_rate",
            base: 1.0,
            loads: [1.2, 0.1, 0.0],
            noise: 0.02,
            monthly: true,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "us_cpi_yoy",
            base: 3.0,
            loads: [0.4, 1.8, 0.0],
            noise: 0.08,
            monthly: true,
            freeze_after: None,
            floor_zero: false,
        },
        MacroSpec {
            name: "hicp_yoy",
            base: 2.5,
            loads: [0.3, 1.6, 0.0],
            noise: 0.08,
            monthly: true,
            freeze_after: None,
            floor_zero: false,
        },
        MacroSpec {
            name: "us_unemployment",
            base: 5.0,
            loads: [-0.3, 0.4, 0.9],
            noise: 0.06,
            monthly: true,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "us_10y_yield",
            base: 2.4,
            loads: [1.1, 0.8, 0.1],
            noise: 0.04,
            monthly: false,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "m2_money_supply_yoy",
            base: 6.0,
            loads: [-1.2, 0.8, 0.5],
            noise: 0.10,
            monthly: true,
            freeze_after: None,
            floor_zero: false,
        },
        MacroSpec {
            name: "epu_index",
            base: 120.0,
            loads: [5.0, 8.0, 35.0],
            noise: 22.0,
            monthly: false,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "epu_index_ma30",
            base: 120.0,
            loads: [5.0, 8.0, 35.0],
            noise: 6.0,
            monthly: true,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "consumer_confidence",
            base: 100.0,
            loads: [-2.0, -4.0, -8.0],
            noise: 1.5,
            monthly: true,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "ism_pmi",
            base: 54.0,
            loads: [-1.2, -1.6, -3.0],
            noise: 0.8,
            monthly: true,
            freeze_after: None,
            floor_zero: true,
        },
        MacroSpec {
            name: "retail_sales_yoy",
            base: 4.0,
            loads: [-0.6, 0.8, -1.5],
            noise: 0.5,
            monthly: true,
            freeze_after: None,
            floor_zero: false,
        },
        MacroSpec {
            name: "industrial_production_yoy",
            base: 2.0,
            loads: [-0.5, 0.4, -1.8],
            noise: 0.5,
            monthly: true,
            freeze_after: None,
            floor_zero: false,
        },
        MacroSpec {
            name: "housing_starts_yoy",
            base: 3.0,
            loads: [-1.5, -0.5, -1.0],
            noise: 1.2,
            monthly: true,
            freeze_after: Some(d(2021, 11, 1)),
            floor_zero: false,
        },
        MacroSpec {
            name: "trade_balance_bn",
            base: -45.0,
            loads: [0.8, -1.2, 0.5],
            noise: 2.0,
            monthly: true,
            freeze_after: Some(d(2020, 9, 1)),
            floor_zero: false,
        },
        MacroSpec {
            name: "gdp_nowcast",
            base: 2.2,
            loads: [-0.5, -0.3, -2.2],
            noise: 0.3,
            monthly: true,
            freeze_after: None,
            floor_zero: false,
        },
    ]
}

fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Generates the macro frame over the observed window.
pub fn generate(config: &SynthConfig, latents: &LatentPaths) -> Frame {
    let n_obs = config.n_days();
    let warmup = latents.warmup;
    let mut frame = Frame::with_daily_index(config.start, n_obs);

    for spec in table() {
        let mut rng = StdRng::seed_from_u64(config.seed ^ name_hash(spec.name));
        let mut values = Vec::with_capacity(n_obs);
        let mut held = f64::NAN;
        for t in 0..n_obs {
            let s = warmup + t;
            let date = config.start.add_days(t as i32);
            let fresh = !spec.monthly || date.day() == 1 || t == 0;
            if fresh {
                // Macro factors only reach crypto through the long
                // macro → global → tradfi → trend chain; the damped
                // amplitude keeps the category marginal enough that the
                // shorter 2019 set can drop it entirely, as the paper saw.
                let amplitude = 0.8;
                let mut v = spec.base
                    + amplitude
                        * (spec.loads[0] * latents.macro_factors[0][s]
                            + spec.loads[1] * latents.macro_factors[1][s]
                            + spec.loads[2] * latents.macro_factors[2][s])
                    + spec.noise * gaussian(&mut rng);
                if spec.floor_zero {
                    v = v.max(0.0);
                }
                held = v;
            }
            values.push(held);
        }
        if let Some(freeze) = spec.freeze_after {
            let from = freeze.days_between(config.start).clamp(0, n_obs as i32) as usize;
            if from < n_obs {
                let frozen = values[from];
                for v in values[from..].iter_mut() {
                    *v = frozen;
                }
            }
        }
        frame
            .push_column(Series::new(spec.name, values))
            .expect("unique macro names");
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::simulate;

    #[test]
    fn frame_shape_and_vocabulary() {
        let cfg = SynthConfig::small(51);
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        assert!(frame.width() >= 15, "{}", frame.width());
        for name in ["fed_funds_rate", "us_cpi_yoy", "epu_index", "hicp_yoy"] {
            assert!(frame.has_column(name), "missing {name}");
        }
    }

    #[test]
    fn monthly_series_step_on_the_first() {
        let cfg = SynthConfig::small(52); // starts 2019-01-01
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        let cpi = frame.column("us_cpi_yoy").unwrap().values();
        for t in 1..31 {
            assert_eq!(cpi[t], cpi[0]);
        }
        // EPU is daily: it must move within the month.
        let epu = frame.column("epu_index").unwrap().values();
        assert!(epu[1..31].iter().any(|v| v != &epu[0]));
    }

    #[test]
    fn rates_are_floored_at_zero() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        for v in frame.column("fed_funds_rate").unwrap().values() {
            assert!(*v >= 0.0);
        }
    }

    #[test]
    fn degraded_feeds_freeze() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        assert!(frame.column("trade_balance_bn").unwrap().longest_flat_run() > 365);
        // Healthy monthly series have ~31-day flat runs, not year-long.
        assert!(frame.column("us_cpi_yoy").unwrap().longest_flat_run() < 100);
    }

    #[test]
    fn macro_tracks_macro_factors() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let frame = generate(&cfg, &latents);
        let rate = frame.column("fed_funds_rate").unwrap().values();
        let factor = latents.observed(&latents.macro_factors[0]);
        let corr = c100_timeseries::stats::pearson(rate, factor);
        assert!(corr > 0.5, "rate vs factor corr {corr}");
    }
}
