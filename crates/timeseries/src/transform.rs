//! Column transforms: lags, horizon targets, returns, scaling.
//!
//! The forecasting task predicts the Crypto100 price `w` days ahead, so the
//! central transform here is [`future_target`], which shifts a column
//! backward by the prediction window to produce the supervised target.

use crate::frame::Frame;
use crate::series::Series;
use crate::{Result, TsError};

/// A copy of the series shifted forward by `lag` days: row `t` holds the
/// value observed at `t - lag`. The first `lag` rows are missing.
pub fn lag(series: &Series, lag: usize) -> Series {
    let n = series.len();
    let mut out = vec![f64::NAN; n];
    if lag < n {
        out[lag..].copy_from_slice(&series.values()[..n - lag]);
    }
    Series::new(format!("{}_lag{}", series.name(), lag), out)
}

/// The supervised target for a `horizon`-day-ahead prediction: row `t`
/// holds the value observed at `t + horizon`. The last `horizon` rows are
/// missing (their future is unobserved).
pub fn future_target(series: &Series, horizon: usize) -> Series {
    let n = series.len();
    let mut out = vec![f64::NAN; n];
    let observed = n.saturating_sub(horizon);
    out[..observed].copy_from_slice(&series.values()[n - observed..]);
    Series::new(format!("{}_t+{}", series.name(), horizon), out)
}

/// First difference: row `t` holds `x[t] - x[t-1]`.
pub fn diff(series: &Series) -> Series {
    let n = series.len();
    let mut out = vec![f64::NAN; n];
    let values = series.values();
    for (t, slot) in out.iter_mut().enumerate().skip(1) {
        *slot = values[t] - values[t - 1];
    }
    Series::new(format!("{}_diff", series.name()), out)
}

/// Simple returns: row `t` holds `x[t]/x[t-1] - 1`.
pub fn pct_change(series: &Series) -> Series {
    let n = series.len();
    let mut out = vec![f64::NAN; n];
    let values = series.values();
    for (t, slot) in out.iter_mut().enumerate().skip(1) {
        if values[t - 1] != 0.0 {
            *slot = values[t] / values[t - 1] - 1.0;
        }
    }
    Series::new(format!("{}_ret", series.name()), out)
}

/// Natural log of each present value; non-positive values become missing.
pub fn log(series: &Series) -> Series {
    let out = series
        .values()
        .iter()
        .map(|&v| if v > 0.0 { v.ln() } else { f64::NAN })
        .collect();
    Series::new(format!("{}_log", series.name()), out)
}

/// Per-column standardization (z-score) fitted on one frame and applied to
/// others, so test data never leaks into the fit.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    /// Per-column `(name, mean, std)` fitted statistics.
    pub stats: Vec<(String, f64, f64)>,
}

impl StandardScaler {
    /// Fits means and standard deviations on every column of `frame`.
    pub fn fit(frame: &Frame) -> Self {
        let stats = frame
            .columns()
            .iter()
            .map(|col| {
                let m = crate::stats::mean(col.values());
                let s = crate::stats::std_dev(col.values());
                (col.name().to_string(), m, s)
            })
            .collect();
        StandardScaler { stats }
    }

    /// Applies `(x - mean) / std` in place to the matching columns of
    /// `frame`. Columns with zero or NaN fitted std are centered only.
    pub fn transform(&self, frame: &mut Frame) -> Result<()> {
        for (name, m, s) in &self.stats {
            let col = frame
                .column_mut(name)
                .ok_or_else(|| TsError::MissingColumn(name.clone()))?;
            let (m, s) = (*m, *s);
            if s.is_nan() || m.is_nan() {
                continue;
            }
            col.map_present(|v| if s > 0.0 { (v - m) / s } else { v - m });
        }
        Ok(())
    }

    /// Inverts the scaling for a single named column's values.
    pub fn inverse_transform_column(&self, name: &str, values: &mut [f64]) -> Result<()> {
        let (_, m, s) = self
            .stats
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| TsError::MissingColumn(name.to_string()))?;
        for v in values.iter_mut() {
            if !v.is_nan() {
                *v = if *s > 0.0 { *v * s + m } else { *v + m };
            }
        }
        Ok(())
    }
}

/// Min-max scaling to `[0, 1]` fitted on one frame.
#[derive(Debug, Clone)]
pub struct MinMaxScaler {
    /// Per-column `(name, min, max)` fitted statistics.
    pub stats: Vec<(String, f64, f64)>,
}

impl MinMaxScaler {
    /// Fits per-column minima and maxima.
    pub fn fit(frame: &Frame) -> Self {
        let stats = frame
            .columns()
            .iter()
            .map(|col| {
                (
                    col.name().to_string(),
                    crate::stats::min(col.values()),
                    crate::stats::max(col.values()),
                )
            })
            .collect();
        MinMaxScaler { stats }
    }

    /// Applies `(x - min) / (max - min)` in place; constant columns map to 0.
    pub fn transform(&self, frame: &mut Frame) -> Result<()> {
        for (name, lo, hi) in &self.stats {
            let col = frame
                .column_mut(name)
                .ok_or_else(|| TsError::MissingColumn(name.clone()))?;
            let (lo, hi) = (*lo, *hi);
            if lo.is_nan() || hi.is_nan() {
                continue;
            }
            let span = hi - lo;
            col.map_present(|v| if span > 0.0 { (v - lo) / span } else { 0.0 });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn s(values: &[f64]) -> Series {
        Series::new("x", values.to_vec())
    }

    #[test]
    fn lag_shifts_forward() {
        let out = lag(&s(&[1.0, 2.0, 3.0, 4.0]), 2);
        assert!(out.values()[0].is_nan() && out.values()[1].is_nan());
        assert_eq!(&out.values()[2..], &[1.0, 2.0]);
        assert_eq!(out.name(), "x_lag2");
    }

    #[test]
    fn future_target_shifts_backward() {
        let out = future_target(&s(&[1.0, 2.0, 3.0, 4.0]), 1);
        assert_eq!(&out.values()[..3], &[2.0, 3.0, 4.0]);
        assert!(out.values()[3].is_nan());
    }

    #[test]
    fn future_target_longer_than_series() {
        let out = future_target(&s(&[1.0, 2.0]), 5);
        assert_eq!(out.count_missing(), 2);
    }

    #[test]
    fn diff_and_pct_change() {
        let d = diff(&s(&[1.0, 3.0, 6.0]));
        assert!(d.values()[0].is_nan());
        assert_eq!(&d.values()[1..], &[2.0, 3.0]);
        let r = pct_change(&s(&[2.0, 3.0, 6.0]));
        assert!((r.values()[1] - 0.5).abs() < 1e-12);
        assert!((r.values()[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_blanks_non_positive() {
        let l = log(&s(&[std::f64::consts::E, 0.0, -1.0]));
        assert!((l.values()[0] - 1.0).abs() < 1e-12);
        assert!(l.values()[1].is_nan());
        assert!(l.values()[2].is_nan());
    }

    #[test]
    fn standard_scaler_round_trip() {
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), 4);
        f.push_column(s(&[1.0, 2.0, 3.0, 4.0])).unwrap();
        let scaler = StandardScaler::fit(&f);
        scaler.transform(&mut f).unwrap();
        let scaled = f.column("x").unwrap().values().to_vec();
        assert!(crate::stats::mean(&scaled).abs() < 1e-12);
        assert!((crate::stats::std_dev(&scaled) - 1.0).abs() < 1e-12);
        let mut back = scaled;
        scaler.inverse_transform_column("x", &mut back).unwrap();
        for (a, b) in back.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_scaler_constant_column_centers() {
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), 3);
        f.push_column(s(&[5.0, 5.0, 5.0])).unwrap();
        let scaler = StandardScaler::fit(&f);
        scaler.transform(&mut f).unwrap();
        assert_eq!(f.column("x").unwrap().values(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn minmax_scaler_hits_unit_interval() {
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), 3);
        f.push_column(s(&[10.0, 20.0, 30.0])).unwrap();
        let scaler = MinMaxScaler::fit(&f);
        scaler.transform(&mut f).unwrap();
        assert_eq!(f.column("x").unwrap().values(), &[0.0, 0.5, 1.0]);
    }
}
