//! The Crypto100 index.
//!
//! ```text
//!                    Σ_{i=1..100} MarketCap_i
//! Crypto100 = ─────────────────────────────────────
//!              ( log₁₀( Σ_{i=1..100} MarketCap_i ) )^power
//! ```
//!
//! with `power = 7` chosen by the paper so the index is price-comparable
//! to Bitcoin (Figure 2a shows powers 7 vs 8, Figure 2b powers 6 vs 7).
//! [`power_comparison`] reproduces that tuning analysis.

use c100_synth::universe::{Sector, Universe};
use c100_timeseries::{Frame, Series};

use crate::{CoreError, Result};

/// The paper's chosen exponent for the scaling factor.
pub const DEFAULT_POWER: f64 = 7.0;

/// Computes the Crypto100 value for a single day's top-100 cap sum.
pub fn crypto100_value(top100_cap: f64, power: f64) -> f64 {
    if top100_cap <= 1.0 {
        return f64::NAN;
    }
    top100_cap / top100_cap.log10().powf(power)
}

/// Builder for Crypto100 series at configurable scaling powers.
#[derive(Debug, Clone, Copy)]
pub struct Crypto100Builder {
    /// Exponent applied to the `log₁₀` scaling factor.
    pub power: f64,
}

impl Default for Crypto100Builder {
    fn default() -> Self {
        Crypto100Builder {
            power: DEFAULT_POWER,
        }
    }
}

impl Crypto100Builder {
    /// Computes the daily index series from the simulated universe.
    pub fn build(&self, universe: &Universe) -> Series {
        let values: Vec<f64> = universe
            .top100_cap
            .iter()
            .map(|&cap| crypto100_value(cap, self.power))
            .collect();
        Series::new(format!("crypto100_p{}", self.power), values)
    }
}

/// Summary of how one scaling power compares to the BTC price — the
/// quantities behind Figure 2.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PowerComparison {
    /// The scaling power.
    pub power: f64,
    /// Mean of index / BTC-price over the window (≈1 means comparable).
    pub mean_ratio_to_btc: f64,
    /// Pearson correlation with the BTC price.
    pub correlation_with_btc: f64,
    /// Index level on the first day.
    pub first_value: f64,
    /// Index level on the last day.
    pub last_value: f64,
}

/// Evaluates a set of candidate powers against the BTC price, reproducing
/// the paper's scaling-factor tuning (Figures 2a/2b).
pub fn power_comparison(
    universe: &Universe,
    btc_close: &[f64],
    powers: &[f64],
) -> Result<Vec<PowerComparison>> {
    if btc_close.len() != universe.n_days() {
        return Err(CoreError::Pipeline(format!(
            "BTC close has {} days, universe {}",
            btc_close.len(),
            universe.n_days()
        )));
    }
    Ok(powers
        .iter()
        .map(|&power| {
            let series = Crypto100Builder { power }.build(universe);
            let values = series.values();
            let ratios: Vec<f64> = values.iter().zip(btc_close).map(|(v, b)| v / b).collect();
            PowerComparison {
                power,
                mean_ratio_to_btc: c100_timeseries::stats::mean(&ratios),
                correlation_with_btc: c100_timeseries::stats::pearson(values, btc_close),
                first_value: values[0],
                last_value: *values.last().expect("non-empty index"),
            }
        })
        .collect())
}

/// A frame holding the Figure 2 series: BTC price plus the index at each
/// requested power, ready for CSV export.
pub fn figure2_frame(universe: &Universe, btc_close: &[f64], powers: &[f64]) -> Result<Frame> {
    let mut frame = Frame::with_daily_index(universe.start, universe.n_days());
    frame.push_column(Series::new("BTC_close", btc_close.to_vec()))?;
    for &power in powers {
        frame.push_column(Crypto100Builder { power }.build(universe))?;
    }
    Ok(frame)
}

/// CRIX base value on the first observed day.
pub const CRIX_BASE: f64 = 1000.0;

/// A family of index constructions over the simulated universe.
///
/// The scenario matrix treats "which index is the target built from" as
/// one axis of the cross-product; every family turns the daily cap panel
/// into one daily level series. Implementations must be pure functions of
/// the universe so matrix cells stay bit-identical across schedulers.
pub trait IndexFamily {
    /// Stable id used in scenario cell ids, spec strings and column names.
    fn id(&self) -> String;

    /// Daily index level over the whole observed sample.
    fn build(&self, universe: &Universe) -> Series;
}

/// Top-N market-cap cut with the paper's log-power scaling; `TopN { n:
/// 100, power: 7 }` is the Crypto100 index itself generalized to any cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopNIndex {
    /// Number of constituents summed each day.
    pub n: usize,
    /// Exponent of the `log₁₀` scaling factor.
    pub power: f64,
}

impl TopNIndex {
    /// Top-N family at the paper's scaling power.
    pub fn new(n: usize) -> TopNIndex {
        TopNIndex {
            n,
            power: DEFAULT_POWER,
        }
    }
}

impl IndexFamily for TopNIndex {
    fn id(&self) -> String {
        format!("top{}", self.n)
    }

    fn build(&self, universe: &Universe) -> Series {
        let n_days = universe.n_days();
        let mut values = Vec::with_capacity(n_days);
        let mut day_caps: Vec<f64> = Vec::with_capacity(universe.n_assets());
        for t in 0..n_days {
            day_caps.clear();
            day_caps.extend(universe.caps.iter().map(|c| c[t]));
            let k = self.n.min(day_caps.len());
            day_caps.select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("finite caps"));
            let top: f64 = day_caps[..k].iter().sum();
            values.push(crypto100_value(top, self.power));
        }
        Series::new(self.id(), values)
    }
}

/// CRIX-style dynamically-rebalanced index (Trimborn & Härdle): a fixed
/// constituent list is held between rebalance dates, and at each
/// rebalance the membership is re-selected by market cap while a divisor
/// adjustment keeps the index level continuous. Starts at [`CRIX_BASE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrixIndex {
    /// Number of constituents selected at each rebalance.
    pub constituents: usize,
    /// Days between reweightings.
    pub rebalance_days: usize,
}

impl IndexFamily for CrixIndex {
    fn id(&self) -> String {
        format!("crix{}r{}", self.constituents, self.rebalance_days)
    }

    fn build(&self, universe: &Universe) -> Series {
        let n_days = universe.n_days();
        let cap_sum = |members: &[usize], t: usize| -> f64 {
            members.iter().map(|&i| universe.caps[i][t]).sum()
        };
        let mut values = Vec::with_capacity(n_days);
        if n_days == 0 {
            return Series::new(self.id(), values);
        }
        let mut members = universe.top_k(0, self.constituents);
        let mut divisor = (cap_sum(&members, 0) / CRIX_BASE).max(f64::MIN_POSITIVE);
        for t in 0..n_days {
            if t > 0 && self.rebalance_days > 0 && t % self.rebalance_days == 0 {
                // Level carried across the rebalance: today's caps under
                // the outgoing membership fix the chain-link point.
                let level = (cap_sum(&members, t) / divisor).max(f64::MIN_POSITIVE);
                members = universe.top_k(t, self.constituents);
                divisor = (cap_sum(&members, t) / level).max(f64::MIN_POSITIVE);
            }
            values.push(cap_sum(&members, t) / divisor);
        }
        Series::new(self.id(), values)
    }
}

/// Sector-restricted top-K cut: the paper's index construction applied to
/// one [`Sector`] of the universe only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SectorIndex {
    /// Sector the constituents are drawn from.
    pub sector: Sector,
    /// Maximum number of constituents summed each day.
    pub max_constituents: usize,
    /// Exponent of the `log₁₀` scaling factor.
    pub power: f64,
}

impl SectorIndex {
    /// Sector family at the paper's scaling power.
    pub fn new(sector: Sector, max_constituents: usize) -> SectorIndex {
        SectorIndex {
            sector,
            max_constituents,
            power: DEFAULT_POWER,
        }
    }
}

impl IndexFamily for SectorIndex {
    fn id(&self) -> String {
        format!("sector-{}-{}", self.sector.label(), self.max_constituents)
    }

    fn build(&self, universe: &Universe) -> Series {
        let n_days = universe.n_days();
        let assets: Vec<usize> = (0..universe.n_assets())
            .filter(|&i| universe.sectors[i] == self.sector)
            .collect();
        let mut values = Vec::with_capacity(n_days);
        let mut day_caps: Vec<f64> = Vec::with_capacity(assets.len());
        for t in 0..n_days {
            day_caps.clear();
            day_caps.extend(assets.iter().map(|&i| universe.caps[i][t]));
            let k = self.max_constituents.min(day_caps.len());
            if k == 0 {
                values.push(f64::NAN);
                continue;
            }
            day_caps.select_nth_unstable_by(k - 1, |a, b| b.partial_cmp(a).expect("finite caps"));
            let top: f64 = day_caps[..k].iter().sum();
            values.push(crypto100_value(top, self.power));
        }
        Series::new(self.id(), values)
    }
}

/// A parseable description of one index family — the unit the matrix CLI
/// and `matrix.json` use to name the index axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexFamilySpec {
    /// `top<N>`, e.g. `top100`.
    TopN(TopNIndex),
    /// `crix<N>r<D>`, e.g. `crix30r30`.
    Crix(CrixIndex),
    /// `sector-<label>[-<N>]`, e.g. `sector-defi-50`.
    Sector(SectorIndex),
}

impl IndexFamilySpec {
    /// The default matrix axis: the paper's index plus two CRIX variants
    /// and a sector cut.
    pub fn default_families() -> Vec<IndexFamilySpec> {
        vec![
            IndexFamilySpec::TopN(TopNIndex::new(100)),
            IndexFamilySpec::Crix(CrixIndex {
                constituents: 30,
                rebalance_days: 30,
            }),
            IndexFamilySpec::Crix(CrixIndex {
                constituents: 50,
                rebalance_days: 90,
            }),
            IndexFamilySpec::Sector(SectorIndex::new(Sector::DeFi, 50)),
        ]
    }

    /// Parses one family token. Every failure mode names the offending
    /// token and lists the valid alternatives.
    pub fn parse(token: &str) -> Result<IndexFamilySpec> {
        const GRAMMAR: &str = "valid families: top<N> (e.g. top100), \
             crix<N>r<D> (e.g. crix30r30), sector-<label>[-<N>] (e.g. sector-defi-50)";
        let fail = |detail: String| CoreError::Pipeline(format!("{detail}; {GRAMMAR}"));

        if let Some(rest) = token.strip_prefix("top") {
            let n: usize = rest.parse().map_err(|_| {
                fail(format!(
                    "invalid index family {token:?}: constituent count {rest:?} is not a number"
                ))
            })?;
            if n == 0 {
                return Err(fail(format!(
                    "invalid index family {token:?}: constituent count must be at least 1"
                )));
            }
            return Ok(IndexFamilySpec::TopN(TopNIndex::new(n)));
        }
        if let Some(rest) = token.strip_prefix("crix") {
            let Some((n_str, d_str)) = rest.split_once('r') else {
                return Err(fail(format!(
                    "invalid index family {token:?}: missing 'r<rebalance_days>' suffix"
                )));
            };
            let n: usize = n_str.parse().map_err(|_| {
                fail(format!(
                    "invalid index family {token:?}: constituent count {n_str:?} is not a number"
                ))
            })?;
            let d: usize = d_str.parse().map_err(|_| {
                fail(format!(
                    "invalid index family {token:?}: rebalance cadence {d_str:?} is not a number"
                ))
            })?;
            if n == 0 || d == 0 {
                return Err(fail(format!(
                    "invalid index family {token:?}: constituent count and cadence must be at least 1"
                )));
            }
            return Ok(IndexFamilySpec::Crix(CrixIndex {
                constituents: n,
                rebalance_days: d,
            }));
        }
        if let Some(rest) = token.strip_prefix("sector-") {
            let (label, n) = match rest.rsplit_once('-') {
                Some((label, n_str)) => {
                    let n: usize = n_str.parse().map_err(|_| {
                        fail(format!(
                            "invalid index family {token:?}: constituent count {n_str:?} \
                             is not a number"
                        ))
                    })?;
                    (label, n)
                }
                None => (rest, 50),
            };
            let Some(sector) = Sector::parse(label) else {
                let valid = Sector::ALL
                    .iter()
                    .map(|s| s.label())
                    .collect::<Vec<_>>()
                    .join(", ");
                return Err(fail(format!(
                    "invalid index family {token:?}: unknown sector {label:?} \
                     (valid sectors: {valid})"
                )));
            };
            if n == 0 {
                return Err(fail(format!(
                    "invalid index family {token:?}: constituent count must be at least 1"
                )));
            }
            return Ok(IndexFamilySpec::Sector(SectorIndex::new(sector, n)));
        }
        Err(fail(format!(
            "invalid index family {token:?}: unknown family prefix"
        )))
    }

    /// The family behind the spec, as a trait object.
    pub fn family(&self) -> &dyn IndexFamily {
        match self {
            IndexFamilySpec::TopN(f) => f,
            IndexFamilySpec::Crix(f) => f,
            IndexFamilySpec::Sector(f) => f,
        }
    }

    /// Stable id (identical to `self.family().id()`).
    pub fn id(&self) -> String {
        self.family().id()
    }

    /// Builds the family's daily index series.
    pub fn build(&self, universe: &Universe) -> Series {
        self.family().build(universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_synth::{generate, SynthConfig};

    fn universe() -> (c100_synth::MarketData, Universe) {
        let data = generate(&SynthConfig::small(71));
        let u = data.universe.clone();
        (data, u)
    }

    #[test]
    fn index_is_positive_and_monotone_in_cap() {
        // Higher top-100 cap ⇒ higher index, over the realistic range.
        let mut prev = 0.0;
        for cap in [1e9, 1e10, 1e11, 1e12] {
            let v = crypto100_value(cap, 7.0);
            assert!(v > prev, "cap {cap}");
            prev = v;
        }
    }

    #[test]
    fn degenerate_cap_is_nan() {
        assert!(crypto100_value(0.5, 7.0).is_nan());
        assert!(crypto100_value(0.0, 7.0).is_nan());
    }

    #[test]
    fn lower_power_scales_index_up() {
        // Dividing by a smaller power of log₁₀(cap) (>1) leaves more level.
        let (_, u) = universe();
        let p6 = Crypto100Builder { power: 6.0 }.build(&u);
        let p7 = Crypto100Builder { power: 7.0 }.build(&u);
        for (a, b) in p6.values().iter().zip(p7.values()) {
            assert!(a > b);
        }
    }

    #[test]
    fn power7_is_most_btc_comparable() {
        // Reproduces the paper's tuning: with caps around 10^11-10^12,
        // power 7 lands the index near the BTC price scale while 6 is far
        // above it.
        let (data, u) = universe();
        let comps = power_comparison(&u, &data.btc.close, &[6.0, 7.0, 8.0]).unwrap();
        let dist = |c: &PowerComparison| (c.mean_ratio_to_btc.log10()).abs();
        let d6 = dist(&comps[0]);
        let d7 = dist(&comps[1]);
        assert!(d7 < d6, "power 7 ratio distance {d7} vs power 6 {d6}");
        // The index correlates strongly with BTC regardless of power.
        for c in &comps {
            assert!(
                c.correlation_with_btc > 0.9,
                "power {} corr {}",
                c.power,
                c.correlation_with_btc
            );
        }
    }

    #[test]
    fn top100_family_matches_crypto100_builder() {
        let (_, u) = universe();
        let family = TopNIndex::new(100).build(&u);
        let builder = Crypto100Builder::default().build(&u);
        for (a, b) in family.values().iter().zip(builder.values()) {
            // Same top-100 cap sum accumulated in a different order.
            assert!((a - b).abs() <= a.abs() * 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn crix_starts_at_base_and_is_continuous_across_rebalances() {
        let (_, u) = universe();
        let idx = CrixIndex {
            constituents: 30,
            rebalance_days: 30,
        };
        let series = idx.build(&u);
        let v = series.values();
        assert!((v[0] - CRIX_BASE).abs() < 1e-9);
        // Daily moves stay bounded at rebalance dates: the divisor chain
        // must not introduce level jumps beyond market moves.
        for t in (30..v.len()).step_by(30) {
            let jump = (v[t] / v[t - 1]).ln().abs();
            assert!(jump < 0.5, "day {t} rebalancing jump {jump}");
        }
        assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn crix_rebalancing_changes_membership_weighting() {
        let (_, u) = universe();
        let fast = CrixIndex {
            constituents: 20,
            rebalance_days: 30,
        }
        .build(&u);
        let slow = CrixIndex {
            constituents: 20,
            rebalance_days: 10_000,
        }
        .build(&u);
        // With churn in the universe, rebalancing must eventually diverge
        // from the static-membership chain.
        let diverged = fast
            .values()
            .iter()
            .zip(slow.values())
            .any(|(a, b)| (a - b).abs() > 1e-6 * a.abs());
        assert!(diverged, "rebalancing never changed the index");
    }

    #[test]
    fn sector_index_is_positive_where_sector_is_live() {
        let (_, u) = universe();
        let series = SectorIndex::new(c100_synth::universe::Sector::DeFi, 50).build(&u);
        let finite = series.values().iter().filter(|v| v.is_finite()).count();
        assert!(finite > 0, "sector index never produced a level");
    }

    #[test]
    fn family_ids_are_stable() {
        assert_eq!(TopNIndex::new(100).id(), "top100");
        assert_eq!(
            CrixIndex {
                constituents: 30,
                rebalance_days: 30
            }
            .id(),
            "crix30r30"
        );
        assert_eq!(
            SectorIndex::new(c100_synth::universe::Sector::DeFi, 50).id(),
            "sector-defi-50"
        );
    }

    #[test]
    fn family_spec_round_trips() {
        for token in [
            "top100",
            "top50",
            "crix30r30",
            "sector-defi-50",
            "sector-meme",
        ] {
            let spec = IndexFamilySpec::parse(token).unwrap();
            let id = spec.id();
            assert_eq!(IndexFamilySpec::parse(&id).unwrap(), spec);
        }
        for spec in IndexFamilySpec::default_families() {
            assert_eq!(IndexFamilySpec::parse(&spec.id()).unwrap(), spec);
        }
    }

    #[test]
    fn family_spec_errors_name_token_and_alternatives() {
        let cases = [
            ("frankenindex", "unknown family prefix"),
            ("topx", "constituent count \"x\" is not a number"),
            ("top0", "must be at least 1"),
            ("crix30", "missing 'r<rebalance_days>' suffix"),
            ("crixAr30", "constituent count \"A\" is not a number"),
            ("crix30rB", "rebalance cadence \"B\" is not a number"),
            ("crix0r5", "must be at least 1"),
            ("sector-food-50", "unknown sector \"food\""),
            (
                "sector-defi-many",
                "constituent count \"many\" is not a number",
            ),
            ("sector-defi-0", "must be at least 1"),
        ];
        for (token, expect) in cases {
            let err = IndexFamilySpec::parse(token).unwrap_err().to_string();
            assert!(err.contains(expect), "{token}: {err}");
            assert!(err.contains(&format!("{token:?}")), "{token}: {err}");
            assert!(err.contains("valid families:"), "{token}: {err}");
        }
        let err = IndexFamilySpec::parse("sector-food-50")
            .unwrap_err()
            .to_string();
        assert!(err.contains("currency, smartcontract, defi, infra, meme"));
    }

    #[test]
    fn figure2_frame_has_all_series() {
        let (data, u) = universe();
        let frame = figure2_frame(&u, &data.btc.close, &[6.0, 7.0, 8.0]).unwrap();
        assert!(frame.has_column("BTC_close"));
        assert!(frame.has_column("crypto100_p6"));
        assert!(frame.has_column("crypto100_p7"));
        assert!(frame.has_column("crypto100_p8"));
        assert_eq!(frame.len(), u.n_days());
    }
}
