//! End-to-end streaming: synth ticks folded through incremental
//! indicators, online GBDT rollovers (drift/decay/scheduled, warm
//! refits) persisted into a store, and hot-swapped into a live
//! `c100-serve` instance — with zero failed in-flight requests — plus
//! batch-parity of the exported feature history.

use std::path::PathBuf;
use std::sync::Arc;

use c100_indicators::momentum::rsi;
use c100_indicators::moving::{ema, sma};
use c100_indicators::volatility::atr;
use c100_indicators::SMA_RESYNC_TOLERANCE;
use c100_obs::{json, FlightRecorder, MetricsRegistry};
use c100_serve::{ServeConfig, Server};
use c100_stream::{client, run_stream, StreamConfig, SynthTickSource, FEATURE_NAMES};
use c100_synth::SynthConfig;
use c100_timeseries::csv::read_frame_from_path;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c100_streaming_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn quick_config(store_dir: &std::path::Path) -> StreamConfig {
    let mut config = StreamConfig::new(store_dir);
    config.seed = 7;
    config.ticks = 200;
    config.refit_every = 50;
    config.min_train_rows = 40;
    config.gbdt.n_estimators = 10;
    config
}

/// The full loop against a live server started on an (initially empty)
/// store: the stream must roll models in while `/predict` traffic keeps
/// flowing, and no request may fail across the hot swaps.
#[test]
fn stream_rolls_models_into_a_live_server_without_dropping_requests() {
    let store_dir = temp_dir("live");
    std::fs::create_dir_all(&store_dir).unwrap();

    let serve_registry = Arc::new(MetricsRegistry::new());
    let handle = Server::start(
        ServeConfig::new(&store_dir, "127.0.0.1:0"),
        serve_registry.clone(),
        None,
    )
    .expect("start server");
    let addr = handle.local_addr().to_string();

    let mut config = quick_config(&store_dir);
    config.serve_addr = Some(addr.clone());
    let registry = Arc::new(MetricsRegistry::new());
    let flight = FlightRecorder::new();
    let report = run_stream(&config, &registry, None, Some(&flight)).expect("stream run");

    // At least the initial fit plus one warm refit happened, and the
    // live traffic that ran concurrently with the reloads all succeeded.
    assert!(report.rollovers >= 2, "rollovers: {}", report.rollovers);
    assert!(report.warm_rollovers >= 1);
    assert!(report.predict_requests > 0);
    assert_eq!(report.predict_failures, 0, "in-flight requests failed");

    // The deployed artifact is resident in the server's model cache.
    let final_id = report.final_artifact.clone().expect("deployed artifact");
    let models = client::get(&addr, "/models").expect("GET /models");
    assert!(models.is_success());
    assert!(
        models.body.contains(&format!("\"id\":\"{final_id}\"")),
        "server models {} missing {final_id}",
        models.body.trim()
    );

    // Server-side counters: one reload per rollover, no shed requests.
    let metrics = client::get(&addr, "/metrics").expect("GET /metrics");
    assert!(metrics
        .body
        .contains(&format!("serve_reloads_total {}", report.rollovers)));
    assert!(metrics.body.contains("serve_last_reload_timestamp_seconds"));
    assert!(metrics.body.contains("serve_model_age_seconds"));
    // The per-endpoint latency split of the telemetry plane is live.
    assert!(metrics.body.contains("serve_queue_wait_micros_count"));
    assert!(metrics.body.contains("serve_handler_micros_predict_count"));
    assert!(metrics.body.contains("serve_inflight_requests"));

    // The flight recorder answers under live traffic: bounded JSON with
    // one record per request the server just absorbed, reloads included.
    let flight_resp = client::get(&addr, "/debug/flight").expect("GET /debug/flight");
    assert!(flight_resp.is_success());
    let dump = json::parse(&flight_resp.body).expect("flight JSON parses");
    let records = match dump.get("records") {
        Some(json::Value::Array(items)) => items,
        other => panic!("flight dump has no records array: {other:?}"),
    };
    assert!(!records.is_empty());
    let capacity = dump.req_uint("capacity").expect("capacity field");
    assert!(records.len() as u64 <= capacity, "flight dump unbounded");
    assert!(records
        .iter()
        .any(|r| matches!(r.get("kind"), Some(json::Value::String(k)) if k == "reload")));

    // Stream-side counters agree with the report.
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counters["model_rollovers_total"] as usize,
        report.rollovers
    );
    assert_eq!(
        snapshot.counters["model_rollovers_warm_total"] as usize,
        report.warm_rollovers
    );
    assert_eq!(
        snapshot.counters["stream.serve_predicts_total"],
        report.predict_requests
    );
    assert_eq!(
        snapshot.counters["stream.ticks_total"] as usize,
        report.ticks
    );

    client::post_json(&addr, "/shutdown", "").expect("POST /shutdown");
    handle.wait();
    std::fs::remove_dir_all(&store_dir).ok();
}

/// The exported feature history must match a from-scratch batch
/// recompute over the same synthetic market: EMA/RSI/ATR bit-identical
/// (their incremental states replay the batch recurrences exactly, and
/// CSV round-trips `f64` losslessly), SMAs within the resync tolerance.
#[test]
fn exported_stream_features_match_batch_recompute() {
    let store_dir = temp_dir("parity");
    let config = quick_config(&store_dir);
    let registry = Arc::new(MetricsRegistry::new());
    let report = run_stream(&config, &registry, None, None).expect("stream run");
    let csv = report.features_csv.clone().expect("features CSV");
    let frame = read_frame_from_path(&csv).expect("read features CSV");

    // Replay the same market and recompute every indicator in batch.
    let mut source = SynthTickSource::new(&SynthConfig::small(config.seed));
    let mut high = Vec::new();
    let mut low = Vec::new();
    let mut close = Vec::new();
    let mut volume = Vec::new();
    let mut dates = Vec::new();
    for _ in 0..config.ticks {
        let tick = source.next_tick().expect("enough synth ticks");
        high.push(tick.high);
        low.push(tick.low);
        close.push(tick.close);
        volume.push(tick.volume);
        dates.push(tick.date);
    }
    let batch: [(&str, Vec<f64>, bool); 6] = [
        ("sma_7", sma(&close, 7), false),
        ("sma_30", sma(&close, 30), false),
        ("ema_14", ema(&close, 14), true),
        ("rsi_14", rsi(&close, 14), true),
        ("atr_14", atr(&high, &low, &close, 14), true),
        ("vol_sma_7", sma(&volume, 7), false),
    ];

    // The frame starts at the first complete row; anchor by date.
    let offset = dates
        .iter()
        .position(|d| *d == frame.start())
        .expect("frame start is a market date");
    assert_eq!(frame.len(), config.ticks - offset);
    for name in FEATURE_NAMES {
        assert!(frame.column(name).is_some(), "missing column {name}");
    }

    for (name, series, exact) in &batch {
        let streamed = frame.column(name).expect("stream column").values();
        for (r, inc) in streamed.iter().enumerate() {
            let expected = series[offset + r];
            if *exact {
                assert_eq!(
                    inc.to_bits(),
                    expected.to_bits(),
                    "{name} row {r}: {inc} vs {expected}"
                );
            } else {
                let rel = (inc - expected).abs() / expected.abs().max(1.0);
                assert!(
                    rel <= SMA_RESYNC_TOLERANCE,
                    "{name} row {r}: {inc} vs {expected} (rel {rel:e})"
                );
            }
        }
    }
    std::fs::remove_dir_all(&store_dir).ok();
}
