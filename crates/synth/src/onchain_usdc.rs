//! The On-chain Metrics (USDC) inventory (~66 metrics, history starting
//! 2018-10-01 — the stablecoin launched in late 2018, which is one of the
//! two reasons the paper cuts a second scenario set at January 2019).
//!
//! The economics this category encodes: stablecoin supply and flows are
//! where capital waits when it enters or leaves the crypto market, so USDC
//! metrics observe the latent **cycle** `C` (and, cumulatively, the trend)
//! with *very little measurement noise*. That low-noise medium-horizon
//! signal is what makes the category the top contributor for the 30/90/180
//! day windows of the paper's 2019 set (Figure 4).

use c100_timeseries::Date;

use crate::latent::LatentPaths;
use crate::spec::{Defect, GenCtx, MetricSpec};
use crate::{DataCategory, SynthConfig};

const CAT: DataCategory = DataCategory::OnChainUsdc;

/// First day of USDC history.
pub fn usdc_launch() -> Date {
    Date::from_ymd(2018, 10, 1).expect("valid constant")
}

/// Deterministic USDC circulating supply path (extended indexing).
///
/// Supply growth responds to the cycle and trend:
/// `S[t+1] = S[t]·exp(g + c₁·C[t] + c₂·T[t])`, anchored at $25M at launch.
/// Being a pure function of the latents (no per-metric noise), every
/// derived metric sees the *same* supply history.
pub fn usdc_supply(config: &SynthConfig, latents: &LatentPaths) -> Vec<f64> {
    let n = latents.n_total();
    let warmup = latents.warmup as i32;
    let launch = usdc_launch();
    let mut out = vec![0.0; n];
    let mut s = 25.0e6;
    for (t, slot) in out.iter_mut().enumerate() {
        let date = config.start.add_days(t as i32 - warmup);
        if date < launch {
            continue;
        }
        *slot = s;
        s *= (0.0042 + 0.0052 * latents.cycle[t] + 0.0036 * latents.trend[t]).exp();
    }
    out
}

fn supply_derived(
    name: &str,
    share_base: f64,
    cycle_load: f64,
    trend_load: f64,
    noise: f64,
) -> MetricSpec {
    let share_base = share_base.clamp(1e-6, 1.0);
    let name_owned = name.to_string();
    MetricSpec::custom(name_owned, CAT, usdc_launch(), move |ctx: &mut GenCtx| {
        let supply = usdc_supply(ctx.config, ctx.latents);
        (0..ctx.latents.n_total())
            .map(|t| {
                if supply[t] == 0.0 {
                    return 0.0;
                }
                let tilt = (cycle_load * ctx.latents.cycle[t]
                    + trend_load * ctx.latents.trend[t]
                    + noise * ctx.noise())
                .exp();
                supply[t] * share_base * tilt
            })
            .collect()
    })
}

/// Builds the USDC on-chain spec list.
pub fn specs(config: &SynthConfig) -> Vec<MetricSpec> {
    let _ = config;
    let launch = usdc_launch();
    let mut specs: Vec<MetricSpec> = Vec::with_capacity(70);

    // --- Address counts -------------------------------------------------
    let one_in: [&str; 5] = ["1K", "10K", "100K", "1M", "100M"];
    for (i, suffix) in one_in.iter().enumerate() {
        specs.push(MetricSpec::log_linear(
            format!("usdc_AdrBal1in{suffix}Cnt"),
            CAT,
            launch,
            3.0 + 2.0 * i as f64,
            (0.60, 0.15, 0.22 - 0.03 * i as f64, 0.0, 0.0),
            0,
            0.04,
        ));
    }
    let usd_thresholds: [&str; 7] = ["1", "10", "100", "1K", "10K", "100K", "1M"];
    for (i, suffix) in usd_thresholds.iter().enumerate() {
        let x = i as f64 / 6.0;
        specs.push(MetricSpec::log_linear(
            format!("usdc_AdrBalUSD{suffix}Cnt"),
            CAT,
            launch,
            13.0 - 1.4 * i as f64,
            (0.70 - 0.2 * x, 0.12 + 0.08 * x, 0.28 + 0.12 * x, 0.05, 0.0),
            0,
            0.025,
        ));
    }
    // Native thresholds are numerically the dollar thresholds for a
    // stablecoin, but Coinmetrics reports them separately; so do we.
    for (i, suffix) in usd_thresholds.iter().enumerate() {
        let x = i as f64 / 6.0;
        specs.push(MetricSpec::log_linear(
            format!("usdc_AdrBalNtv{suffix}Cnt"),
            CAT,
            launch,
            13.0 - 1.4 * i as f64,
            (0.70 - 0.2 * x, 0.12 + 0.08 * x, 0.29 + 0.12 * x, 0.05, 0.0),
            0,
            0.025,
        ));
    }
    specs.push(MetricSpec::log_linear(
        "usdc_AdrBalCnt",
        CAT,
        launch,
        13.4,
        (0.72, 0.10, 0.18, 0.02, 0.0),
        0,
        0.03,
    ));

    // --- Supply distribution (shares of the common supply path) ----------
    let sply_usd: [(&str, f64); 8] = [
        ("1", 0.995),
        ("10", 0.98),
        ("100", 0.95),
        ("1K", 0.90),
        ("10K", 0.80),
        ("100K", 0.65),
        ("1M", 0.45),
        ("10M", 0.25),
    ];
    for (i, (suffix, share)) in sply_usd.iter().enumerate() {
        let x = i as f64 / 7.0;
        specs.push(supply_derived(
            &format!("usdc_SplyAdrBalUSD{suffix}"),
            *share,
            0.18 + 0.12 * x,
            0.10 + 0.08 * x,
            0.015,
        ));
    }
    let sply_ntv: [(&str, f64); 8] = [
        ("0.001", 0.999),
        ("0.01", 0.998),
        ("0.1", 0.997),
        ("1", 0.995),
        ("10", 0.98),
        ("100", 0.95),
        ("1K", 0.90),
        ("10K", 0.80),
    ];
    for (i, (suffix, share)) in sply_ntv.iter().enumerate() {
        let x = i as f64 / 7.0;
        specs.push(supply_derived(
            &format!("usdc_SplyAdrBalNtv{suffix}"),
            *share,
            0.16 + 0.12 * x,
            0.10 + 0.07 * x,
            0.015,
        ));
    }
    for (i, suffix) in ["1K", "10K", "100K", "1M", "100M"].iter().enumerate() {
        specs.push(supply_derived(
            &format!("usdc_SplyAdrBal1in{suffix}"),
            0.9 - 0.12 * i as f64,
            0.20,
            0.10,
            0.02,
        ));
    }

    // --- Supply activity ---------------------------------------------------
    let act: [(&str, f64, f64); 7] = [
        ("7d", 0.45, 0.30),
        ("30d", 0.40, 0.15),
        ("90d", 0.32, 0.08),
        ("180d", 0.25, 0.04),
        ("1yr", 0.18, 0.02),
        ("2yr", 0.10, 0.0),
        ("3yr", 0.06, 0.0),
    ];
    for (suffix, cy, mo) in act {
        specs.push(supply_derived(
            &format!("usdc_SplyAct{suffix}"),
            0.5,
            cy,
            mo * 0.2,
            0.04,
        ));
    }
    specs.push(MetricSpec::bounded(
        "usdc_SplyActPct1yr",
        CAT,
        launch,
        (40.0, 95.0),
        (0.25, 0.50, 0.05),
        0.0,
        0.10,
    ));
    specs.push(supply_derived("usdc_SplyActEver", 0.97, 0.01, 0.01, 0.005));
    specs.push(supply_derived("usdc_SplyCur", 1.0, 0.0, 0.0, 0.0));
    specs.push(supply_derived("usdc_SplyFF", 0.93, 0.02, 0.02, 0.01));

    // --- Capitalization ---------------------------------------------------
    specs.push(supply_derived("usdc_CapMrktCurUSD", 1.0, 0.0, 0.0, 0.002));
    specs.push(supply_derived("usdc_CapMrktFFUSD", 0.93, 0.02, 0.02, 0.01));
    specs.push(supply_derived("usdc_CapAct1yrUSD", 0.6, 0.22, 0.06, 0.03));

    // --- Transactions and flows --------------------------------------------
    specs.push(MetricSpec::log_linear(
        "usdc_TxCnt",
        CAT,
        launch,
        11.0,
        (0.55, 0.10, 0.35, 0.25, 0.0),
        0,
        0.06,
    ));
    specs.push(MetricSpec::log_linear(
        "usdc_TxTfrCnt",
        CAT,
        launch,
        11.3,
        (0.55, 0.10, 0.33, 0.24, 0.0),
        0,
        0.06,
    ));
    specs.push(MetricSpec::log_linear(
        "usdc_TxTfrValAdjUSD",
        CAT,
        launch,
        20.0,
        (0.55, 0.12, 0.40, 0.22, 0.0),
        0,
        0.08,
    ));
    specs.push(MetricSpec::log_linear(
        "usdc_TxTfrValMeanUSD",
        CAT,
        launch,
        9.0,
        (0.05, 0.05, 0.18, 0.10, 0.0),
        0,
        0.10,
    ));
    specs.push(
        MetricSpec::log_linear(
            "usdc_TxTfrValMedUSD",
            CAT,
            launch,
            6.0,
            (0.05, 0.05, 0.15, 0.08, 0.0),
            0,
            0.10,
        )
        .with_defect(Defect::FlatAfter(
            Date::from_ymd(2022, 3, 1).expect("valid constant"),
        )),
    );
    specs.push(MetricSpec::log_linear(
        "usdc_AdrActCnt",
        CAT,
        launch,
        10.6,
        (0.55, 0.10, 0.32, 0.28, 0.0),
        0,
        0.06,
    ));
    specs.push(MetricSpec::log_linear(
        "usdc_AdrNewCnt",
        CAT,
        launch,
        10.0,
        (0.55, 0.12, 0.32, 0.30, 0.0),
        0,
        0.07,
    ));
    // Exchange flows observe the cycle almost noiselessly — buying power
    // entering and leaving the market.
    specs.push(MetricSpec::log_linear(
        "usdc_FlowInExUSD",
        CAT,
        launch,
        18.5,
        (0.50, 0.10, 0.45, 0.15, 0.0),
        0,
        0.05,
    ));
    specs.push(MetricSpec::log_linear(
        "usdc_FlowOutExUSD",
        CAT,
        launch,
        18.4,
        (0.50, 0.08, -0.40, -0.10, 0.0),
        0,
        0.05,
    ));
    specs.push(MetricSpec::custom(
        "usdc_FlowNetExUSD",
        CAT,
        launch,
        |ctx| {
            // Net inflow: signed, proportional to supply and the cycle.
            let supply = usdc_supply(ctx.config, ctx.latents);
            (0..ctx.latents.n_total())
                .map(|t| {
                    supply[t]
                        * 0.01
                        * (ctx.latents.cycle[t]
                            + 0.3 * ctx.latents.momentum[t]
                            + 0.15 * ctx.noise())
                })
                .collect()
        },
    ));

    // --- Ratios ---------------------------------------------------------------
    specs.push(MetricSpec::bounded(
        "usdc_SER",
        CAT,
        launch,
        (0.05, 0.35),
        (-0.30, -0.20, 0.0),
        0.0,
        0.10,
    ));
    specs.push(MetricSpec::log_linear(
        "usdc_VelCur1yr",
        CAT,
        launch,
        (20.0f64).ln(),
        (-0.05, 0.10, 0.30, 0.10, 0.0),
        0,
        0.06,
    ));

    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::simulate;
    use crate::spec::materialize;

    #[test]
    fn inventory_size_and_vocabulary() {
        let cfg = SynthConfig::default();
        let list = specs(&cfg);
        assert!(list.len() >= 60, "{} specs", list.len());
        let names: std::collections::HashSet<&str> = list.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), list.len());
        for expected in [
            "usdc_AdrBalNtv1Cnt",
            "usdc_AdrBalNtv10KCnt",
            "usdc_SplyAdrBalNtv100",
            "usdc_SplyCur",
            "usdc_SplyAct2yr",
            "usdc_SplyAct7d",
            "usdc_CapMrktFFUSD",
            "usdc_SplyAdrBalUSD10",
            "usdc_SplyAdrBal1in100M",
        ] {
            assert!(names.contains(expected), "missing {expected}");
        }
        for s in &list {
            assert!(s.name.starts_with("usdc_"));
            assert_eq!(s.start, usdc_launch());
        }
    }

    #[test]
    fn supply_is_zero_before_launch_then_grows() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let supply = usdc_supply(&cfg, &latents);
        let launch_idx = latents.warmup + usdc_launch().days_between(cfg.start) as usize;
        assert!(supply[..launch_idx].iter().all(|&v| v == 0.0));
        assert!((supply[launch_idx] - 25.0e6).abs() < 1.0);
        // Multi-billion by the end of the sample.
        assert!(
            *supply.last().unwrap() > 1.0e9,
            "{}",
            supply.last().unwrap()
        );
    }

    #[test]
    fn metrics_start_at_launch_in_full_config() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        let frame = materialize(&specs(&cfg), &cfg, &latents, &btc);
        let col = frame.column("usdc_SplyCur").unwrap();
        let expected_first = usdc_launch().days_between(cfg.start) as usize;
        assert_eq!(col.first_present(), Some(expected_first));
    }

    #[test]
    fn flows_observe_the_cycle() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        let frame = materialize(&specs(&cfg), &cfg, &latents, &btc);
        let flow = frame.column("usdc_FlowInExUSD").unwrap().values();
        let first = frame
            .column("usdc_FlowInExUSD")
            .unwrap()
            .first_present()
            .unwrap();
        let log_flow: Vec<f64> = flow[first..].iter().map(|v| v.ln()).collect();
        let cycle = &latents.observed(&latents.cycle)[first..];
        // Partial out nothing — raw correlation should still be visible
        // despite adoption growth, thanks to the low noise.
        let diffs_flow: Vec<f64> = log_flow.windows(30).map(|w| w[29] - w[0]).collect();
        let diffs_cycle: Vec<f64> = cycle.windows(30).map(|w| w[29] - w[0]).collect();
        let corr = c100_timeseries::stats::pearson(&diffs_flow, &diffs_cycle);
        assert!(corr > 0.5, "cycle observation corr {corr}");
    }
}
