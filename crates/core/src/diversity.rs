//! The data-source-diversity experiments (Tables 5, 6 and §4.3).
//!
//! For a scenario, the per-scenario fine-tuned model configuration is
//! trained and evaluated (5-fold cross-validated MSE, the paper's
//! evaluation measure) twice: once on the diverse final feature vector and
//! once per single data category (using all the category's cleaned
//! candidate features). *Performance improvement* is the percentage
//! decrease of MSE relative to the diverse model:
//! `(MSE_single − MSE_diverse) / MSE_diverse × 100`.

use c100_ml::data::Matrix;
use c100_ml::metrics::mse_percentage_decrease;
use c100_ml::model_selection::cross_val_mse;
use c100_ml::Estimator;
use c100_synth::DataCategory;

use crate::scenario::ScenarioData;
use crate::{CoreError, Result};

/// Test MSE of one single-category model vs the diverse model.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CategoryImprovement {
    /// Display name of the category.
    pub category: String,
    /// Number of features the single-category model used.
    pub n_features: usize,
    /// Test MSE of the single-category model.
    pub single_mse: f64,
    /// Percentage decrease of MSE achieved by the diverse model.
    pub improvement_pct: f64,
}

/// Full result of a diversity experiment for one scenario and model family.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DiversityResult {
    /// Scenario id (`2017_30` style).
    pub scenario: String,
    /// Test MSE of the diverse model.
    pub diverse_mse: f64,
    /// Number of features in the diverse vector.
    pub diverse_n_features: usize,
    /// Per-category comparisons (categories with no candidates omitted).
    pub per_category: Vec<CategoryImprovement>,
}

impl DiversityResult {
    /// Mean improvement over all evaluated categories — the quantity
    /// Table 5 averages per prediction window.
    pub fn mean_improvement(&self) -> f64 {
        if self.per_category.is_empty() {
            return f64::NAN;
        }
        self.per_category
            .iter()
            .map(|c| c.improvement_pct)
            .sum::<f64>()
            / self.per_category.len() as f64
    }
}

/// Number of CV folds used for the diversity evaluation (paper: 5).
pub const EVAL_FOLDS: usize = 5;

fn fit_and_eval<E: Estimator>(
    scenario: &ScenarioData,
    features: &[&str],
    estimator: &E,
    seed: u64,
) -> Result<f64> {
    // Evaluate over the full scenario span (train + test windows) with
    // contiguous 5-fold CV — the paper's MSE measure for Tables 5/6.
    let full = scenario.frame.to_matrix(features, crate::TARGET)?;
    let x = Matrix::from_row_major(full.x.clone(), full.n_features)?;
    Ok(cross_val_mse(estimator, &x, &full.y, EVAL_FOLDS, seed)?)
}

/// Runs the diversity experiment for one scenario using the scenario's
/// fine-tuned model configuration (the paper tunes per scenario, then
/// trains the tuned model on each feature subset).
pub fn diversity_experiment<E: Estimator>(
    scenario: &ScenarioData,
    final_features: &[String],
    estimator: &E,
    seed: u64,
) -> Result<DiversityResult> {
    if final_features.is_empty() {
        return Err(CoreError::Pipeline("empty final feature vector".into()));
    }
    let diverse: Vec<&str> = final_features.iter().map(|s| s.as_str()).collect();
    let diverse_mse = fit_and_eval(scenario, &diverse, estimator, seed)?;

    use rayon::prelude::*;
    let per_category: Result<Vec<Option<CategoryImprovement>>> = DataCategory::ALL
        .par_iter()
        .map(|&category| {
            let features = scenario.features_of(category);
            if features.is_empty() {
                return Ok(None); // e.g. USDC in the 2017 set — "-" in Table 6
            }
            let refs: Vec<&str> = features.iter().map(|s| s.as_str()).collect();
            let single_mse = fit_and_eval(scenario, &refs, estimator, seed ^ 0x51)?;
            Ok(Some(CategoryImprovement {
                category: category.display_name().to_string(),
                n_features: features.len(),
                single_mse,
                improvement_pct: mse_percentage_decrease(single_mse, diverse_mse),
            }))
        })
        .collect();
    let per_category: Vec<CategoryImprovement> = per_category?.into_iter().flatten().collect();

    Ok(DiversityResult {
        scenario: scenario.id(),
        diverse_mse,
        diverse_n_features: final_features.len(),
        per_category,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::assemble;
    use crate::profile::Profile;
    use crate::scenario::{build_scenario, Period};
    use c100_synth::{generate, SynthConfig};

    fn scenario(window: usize) -> ScenarioData {
        let master = assemble(&generate(&SynthConfig::small(131))).unwrap();
        build_scenario(&master, Period::Y2019, window).unwrap()
    }

    #[test]
    fn diverse_model_beats_weak_categories() {
        let s = scenario(30);
        let p = Profile::fast();
        // Use a representative mixed final vector: top candidates of each
        // category by correlation would be ideal; the full feature set is
        // an upper bound on diversity and is fine for the test.
        let final_features = s.feature_names.clone();
        let result = diversity_experiment(&s, &final_features, &p.rf_grid[0], 3).unwrap();
        assert!(result.diverse_mse > 0.0);
        assert!(!result.per_category.is_empty());
        // Sentiment/macro lack level information: single-category MSE far
        // above the diverse model.
        let sentiment = result
            .per_category
            .iter()
            .find(|c| c.category.contains("Sentiment"));
        if let Some(sent) = sentiment {
            assert!(
                sent.improvement_pct > 50.0,
                "sentiment improvement {}",
                sent.improvement_pct
            );
        }
        // On-chain BTC carries level info: modest improvement.
        let onchain = result
            .per_category
            .iter()
            .find(|c| c.category == "On-chain Metrics (BTC)")
            .expect("BTC category present");
        let sentiment_improvement = sentiment.map(|s| s.improvement_pct).unwrap_or(f64::MAX);
        assert!(
            onchain.improvement_pct < sentiment_improvement,
            "on-chain {} should improve less than sentiment {}",
            onchain.improvement_pct,
            sentiment_improvement
        );
    }

    #[test]
    fn mean_improvement_averages_categories() {
        let r = DiversityResult {
            scenario: "t".into(),
            diverse_mse: 1.0,
            diverse_n_features: 10,
            per_category: vec![
                CategoryImprovement {
                    category: "a".into(),
                    n_features: 1,
                    single_mse: 2.0,
                    improvement_pct: 100.0,
                },
                CategoryImprovement {
                    category: "b".into(),
                    n_features: 1,
                    single_mse: 4.0,
                    improvement_pct: 300.0,
                },
            ],
        };
        assert!((r.mean_improvement() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn empty_final_vector_is_rejected() {
        let s = scenario(7);
        let p = Profile::fast();
        assert!(diversity_experiment(&s, &[], &p.rf_grid[0], 0).is_err());
    }
}
