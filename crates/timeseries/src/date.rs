//! Civil (proleptic Gregorian) dates with O(1) day arithmetic.
//!
//! The dataset is strictly daily, so a date is represented internally as a
//! count of days since the Unix epoch (1970-01-01). Conversions to and from
//! year/month/day use the classic Howard Hinnant `days_from_civil`
//! algorithm, which is exact over the entire `i32` day range.

use crate::{Result, TsError};

/// A civil calendar date, stored as days since 1970-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    days: i32,
}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Whether `year` is a leap year in the proleptic Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` (1-12) of `year`.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize] as u32
    }
}

fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    // Hinnant, "chrono-Compatible Low-Level Date Algorithms".
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32; // [0, 399]
    let mp = (m + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i32 - 719468
}

fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl Date {
    /// Builds a date from year/month/day, validating the components.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Self> {
        if !(1..=12).contains(&month) {
            return Err(TsError::InvalidDate(format!("{year}-{month:02}-{day:02}")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(TsError::InvalidDate(format!("{year}-{month:02}-{day:02}")));
        }
        Ok(Date {
            days: days_from_civil(year, month, day),
        })
    }

    /// Builds a date directly from a days-since-epoch count.
    pub fn from_days(days: i32) -> Self {
        Date { days }
    }

    /// Days since 1970-01-01 (negative before the epoch).
    pub fn days_since_epoch(self) -> i32 {
        self.days
    }

    /// The `(year, month, day)` components of this date.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.days)
    }

    /// Calendar year.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// Calendar month, 1-12.
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// Day of month, 1-31.
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// Day of week with Monday = 0 … Sunday = 6.
    pub fn weekday(self) -> u32 {
        // 1970-01-01 was a Thursday (index 3).
        ((self.days % 7 + 7 + 3) % 7) as u32
    }

    /// True for Saturday or Sunday — traditional markets are closed, so the
    /// synthetic traditional-index generators forward-fill these days.
    pub fn is_weekend(self) -> bool {
        self.weekday() >= 5
    }

    /// This date plus `n` days (`n` may be negative).
    pub fn add_days(self, n: i32) -> Self {
        Date {
            days: self.days + n,
        }
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_between(self, other: Date) -> i32 {
        self.days - other.days
    }

    /// Parses an ISO-8601 `YYYY-MM-DD` string.
    pub fn parse(s: &str) -> Result<Self> {
        let mut parts = s.splitn(3, '-');
        let bad = || TsError::InvalidDate(s.to_string());
        let y: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::from_ymd(y, m, d)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Inclusive range of consecutive days, iterable.
#[derive(Debug, Clone, Copy)]
pub struct DateRange {
    next: i32,
    last: i32,
}

impl DateRange {
    /// Inclusive daily range `[start, end]`; empty if `end < start`.
    pub fn inclusive(start: Date, end: Date) -> Self {
        DateRange {
            next: start.days,
            last: end.days,
        }
    }

    /// Number of days in the range.
    pub fn len(&self) -> usize {
        if self.last < self.next {
            0
        } else {
            (self.last - self.next + 1) as usize
        }
    }

    /// True when the range contains no days.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for DateRange {
    type Item = Date;

    fn next(&mut self) -> Option<Date> {
        if self.next > self.last {
            None
        } else {
            let d = Date::from_days(self.next);
            self.next += 1;
            Some(d)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for DateRange {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let d = Date::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(d.days_since_epoch(), 0);
        assert_eq!(d.ymd(), (1970, 1, 1));
    }

    #[test]
    fn known_dates_round_trip() {
        for &(y, m, d) in &[
            (2017, 1, 1),
            (2019, 1, 1),
            (2020, 2, 29),
            (2023, 6, 30),
            (1999, 12, 31),
            (2000, 1, 1),
            (1900, 3, 1),
        ] {
            let date = Date::from_ymd(y, m, d).unwrap();
            assert_eq!(date.ymd(), (y, m, d), "{y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2020));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2023));
        assert_eq!(days_in_month(2020, 2), 29);
        assert_eq!(days_in_month(2021, 2), 28);
    }

    #[test]
    fn rejects_invalid_components() {
        assert!(Date::from_ymd(2021, 2, 29).is_err());
        assert!(Date::from_ymd(2021, 13, 1).is_err());
        assert!(Date::from_ymd(2021, 0, 1).is_err());
        assert!(Date::from_ymd(2021, 4, 31).is_err());
        assert!(Date::from_ymd(2021, 4, 0).is_err());
    }

    #[test]
    fn weekday_is_correct() {
        // 2017-01-01 was a Sunday; 2023-06-30 was a Friday.
        assert_eq!(Date::from_ymd(2017, 1, 1).unwrap().weekday(), 6);
        assert_eq!(Date::from_ymd(2023, 6, 30).unwrap().weekday(), 4);
        assert!(Date::from_ymd(2017, 1, 1).unwrap().is_weekend());
        assert!(!Date::from_ymd(2023, 6, 30).unwrap().is_weekend());
    }

    #[test]
    fn arithmetic_and_span() {
        let start = Date::from_ymd(2017, 1, 1).unwrap();
        let end = Date::from_ymd(2023, 6, 30).unwrap();
        // 2017..2023 spans two leap years (2020 is inside, 2017+2372 days).
        assert_eq!(end.days_between(start), 2371);
        assert_eq!(start.add_days(2371), end);
        assert_eq!(start.add_days(-1).ymd(), (2016, 12, 31));
    }

    #[test]
    fn parse_and_display_round_trip() {
        let d = Date::parse("2019-01-01").unwrap();
        assert_eq!(d.ymd(), (2019, 1, 1));
        assert_eq!(d.to_string(), "2019-01-01");
        assert!(Date::parse("2019-1").is_err());
        assert!(Date::parse("abc").is_err());
        assert!(Date::parse("2019-02-30").is_err());
    }

    #[test]
    fn date_range_iterates_inclusively() {
        let start = Date::from_ymd(2020, 2, 27).unwrap();
        let end = Date::from_ymd(2020, 3, 1).unwrap();
        let days: Vec<String> = DateRange::inclusive(start, end)
            .map(|d| d.to_string())
            .collect();
        assert_eq!(
            days,
            ["2020-02-27", "2020-02-28", "2020-02-29", "2020-03-01"]
        );
        assert!(DateRange::inclusive(end, start).is_empty());
    }

    #[test]
    fn sequential_scan_matches_component_math() {
        // Walk five years day by day and re-derive components each step.
        let mut date = Date::from_ymd(2016, 12, 31).unwrap();
        let (mut y, mut m, mut d) = date.ymd();
        for _ in 0..2000 {
            date = date.add_days(1);
            d += 1;
            if d > days_in_month(y, m) {
                d = 1;
                m += 1;
                if m > 12 {
                    m = 1;
                    y += 1;
                }
            }
            assert_eq!(date.ymd(), (y, m, d));
        }
    }
}
