//! SHAP validation and the final feature vector.
//!
//! The paper validates FRA with SHAP computed "from the original sets"
//! (all cleaned candidate features, not just FRA's survivors), reports an
//! average overlap of ~78 features between SHAP's top-100 and FRA's
//! survivors, and builds the final vector per scenario as the union of the
//! top-75 features of each ranking (Table 1).

use std::collections::HashSet;

use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::shap::mean_abs_shap;
use c100_obs::{Event, NullObserver, RunObserver, TraceCtx};

use crate::fra::FraResult;
use crate::scenario::ScenarioData;
use crate::{CoreError, Result};

/// SHAP-based global importance ranking over all scenario features.
#[derive(Debug, Clone)]
pub struct ShapRanking {
    /// `(feature, mean |SHAP|)`, most important first.
    pub ranked: Vec<(String, f64)>,
}

impl ShapRanking {
    /// The top-`k` feature names.
    pub fn top(&self, k: usize) -> Vec<&str> {
        self.ranked
            .iter()
            .take(k)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Computes the mean-|SHAP| ranking on a row subsample of the train set.
///
/// TreeSHAP cost grows with rows × leaves × depth², so the forest is
/// depth-capped and rows are subsampled deterministically (every k-th row,
/// which for a time series is also a uniform temporal coverage).
///
/// Silent wrapper around [`shap_ranking_observed`].
pub fn shap_ranking(
    scenario: &ScenarioData,
    forest: &RandomForestConfig,
    max_rows: usize,
    seed: u64,
) -> Result<ShapRanking> {
    shap_ranking_observed(scenario, forest, max_rows, seed, &NullObserver)
}

/// [`shap_ranking`] with telemetry: emits one [`Event::ShapSampled`]
/// reporting the rows actually evaluated and the features ranked.
pub fn shap_ranking_observed(
    scenario: &ScenarioData,
    forest: &RandomForestConfig,
    max_rows: usize,
    seed: u64,
    observer: &dyn RunObserver,
) -> Result<ShapRanking> {
    shap_ranking_traced(
        scenario,
        forest,
        max_rows,
        seed,
        observer,
        TraceCtx::disabled(),
    )
}

/// [`shap_ranking_observed`] with span tracing: the explainer forest fit
/// records a `shap_fit` span (with per-tree children) and the TreeSHAP
/// evaluation records `shap_values`. The ranking is identical to the
/// untraced path.
pub fn shap_ranking_traced(
    scenario: &ScenarioData,
    forest: &RandomForestConfig,
    max_rows: usize,
    seed: u64,
    observer: &dyn RunObserver,
    trace: TraceCtx<'_>,
) -> Result<ShapRanking> {
    let names: Vec<&str> = scenario.feature_names.iter().map(|s| s.as_str()).collect();
    if names.is_empty() {
        return Err(CoreError::Pipeline("no features for SHAP".into()));
    }
    let train = scenario.train_matrix(&names)?;
    let x = Matrix::from_row_major(train.x.clone(), train.n_features)?;
    let fit_span = trace.span("shap_fit");
    let model = forest.fit_traced(&x, &train.y, seed, fit_span.ctx())?;
    drop(fit_span);

    let stride = (x.n_rows() / max_rows.max(1)).max(1);
    let rows: Vec<usize> = (0..x.n_rows()).step_by(stride).collect();
    observer.on_event(&Event::ShapSampled {
        scenario: scenario.id(),
        rows: rows.len(),
        features: names.len(),
    });
    let sample = x.take_rows(&rows);
    let importances = {
        let _span = trace.span("shap_values");
        mean_abs_shap(&model, &sample)
    };

    let mut ranked: Vec<(String, f64)> = scenario
        .feature_names
        .iter()
        .cloned()
        .zip(importances)
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite SHAP values")
            .then(a.0.cmp(&b.0))
    });
    Ok(ShapRanking { ranked })
}

/// The final per-scenario feature vector and its diagnostics.
#[derive(Debug, Clone)]
pub struct FinalSelection {
    /// Union of the two top-`k` lists, FRA-ranked members first.
    pub features: Vec<String>,
    /// |SHAP top-100 ∩ FRA survivors| — the paper's validation overlap.
    pub overlap_shap100_fra: usize,
}

/// Builds the final feature vector: union of FRA's and SHAP's top-`k`.
pub fn final_vector(fra: &FraResult, shap: &ShapRanking, top_k: usize) -> FinalSelection {
    let fra_top: Vec<&str> = fra
        .surviving
        .iter()
        .take(top_k)
        .map(|s| s.as_str())
        .collect();
    let shap_top = shap.top(top_k);

    let mut seen: HashSet<&str> = HashSet::new();
    let mut features = Vec::new();
    for name in fra_top.iter().chain(shap_top.iter()) {
        if seen.insert(name) {
            features.push(name.to_string());
        }
    }

    let fra_set: HashSet<&str> = fra.surviving.iter().map(|s| s.as_str()).collect();
    let overlap = shap
        .top(100)
        .iter()
        .filter(|n| fra_set.contains(**n))
        .count();

    FinalSelection {
        features,
        overlap_shap100_fra: overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::assemble;
    use crate::fra::{run_fra, FraConfig};
    use crate::profile::Profile;
    use crate::scenario::{build_scenario, Period};
    use c100_synth::{generate, SynthConfig};

    fn scenario() -> ScenarioData {
        let master = assemble(&generate(&SynthConfig::small(111))).unwrap();
        build_scenario(&master, Period::Y2019, 7).unwrap()
    }

    #[test]
    fn shap_ranking_is_sorted_and_complete() {
        let s = scenario();
        let p = Profile::fast();
        let ranking = shap_ranking(&s, &p.shap_forest, p.shap_rows, 1).unwrap();
        assert_eq!(ranking.ranked.len(), s.feature_names.len());
        for w in ranking.ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert_eq!(ranking.top(5).len(), 5);
    }

    #[test]
    fn union_respects_bounds() {
        let s = scenario();
        let p = Profile::fast();
        let fra = run_fra(
            &s,
            &p.rf_grid[0],
            &p.gbdt_grid[0],
            &FraConfig::new().with_target_len(80),
            p.pfi_repeats,
            3,
        )
        .unwrap();
        let shap = shap_ranking(&s, &p.shap_forest, p.shap_rows, 4).unwrap();
        let selection = final_vector(&fra, &shap, 75);
        // Union of two 75-lists: between 75 and 150, no duplicates.
        assert!(selection.features.len() >= 75.min(fra.surviving.len()));
        assert!(selection.features.len() <= 150);
        let set: HashSet<&String> = selection.features.iter().collect();
        assert_eq!(set.len(), selection.features.len());
        // The two rankings agree substantially (paper: ~78/100 overlap).
        assert!(
            selection.overlap_shap100_fra >= 30,
            "overlap {}",
            selection.overlap_shap100_fra
        );
    }

    #[test]
    fn shap_and_fra_agree_on_strong_features() {
        // Both rankings should put level-tracking features high; check the
        // SHAP top-30 contains at least one of the known strong metrics.
        let s = scenario();
        let p = Profile::fast();
        let ranking = shap_ranking(&s, &p.shap_forest, p.shap_rows, 5).unwrap();
        let top30 = ranking.top(30);
        let strong = [
            "market_cap",
            "CapMrktCurUSD",
            "RevAllTimeUSD",
            "CapRealUSD",
            "CapMrktFFUSD",
        ];
        assert!(
            top30.iter().any(|n| strong.contains(n)),
            "no strong level feature in SHAP top-30: {top30:?}"
        );
    }
}
