//! Deterministic load replay for the serving layer.
//!
//! `c100-load` drives a live `c100-serve` endpoint with a reproducible
//! request stream and reports latency/outcome numbers in the same
//! shapes the rest of the repo already diffs. The pieces:
//!
//! - [`plan`] — request templates pre-rendered to HTTP/1.1 wire bytes
//!   and sequenced by a seeded SplitMix64 draw: same templates + same
//!   seed ⇒ byte-identical replay, so two runs (or two PRs in CI) are
//!   comparing the server, not the workload.
//! - [`client`] — the keep-alive client half: blocking I/O, an
//!   incremental `Content-Length`-framed response reader that never
//!   bleeds one response into the next.
//! - [`runner`] — closed-loop (fixed concurrency, next request on
//!   response) and open-loop (fixed schedule, latency measured from
//!   the *scheduled* fire time to dodge coordinated omission) worker
//!   pools over a shared plan cursor.
//! - [`report`] — [`LoadReport`] with outcome counts, throughput, and
//!   latency percentiles, plus [`Slo`] assertions (p99 / error-rate)
//!   that CI gates on.
//!
//! Latencies land in a `load.request_micros` histogram inside a
//! [`MetricsRegistry`](c100_obs::MetricsRegistry) — the identical
//! log-linear buckets the server uses — so a load run writes a
//! `metrics.json` that `repro compare` diffs and gates exactly like a
//! pipeline run's. A shed 503 is counted separately from a failure:
//! shedding under overload is the contract, not a bug.

pub mod client;
pub mod plan;
pub mod report;
pub mod runner;

pub use client::{CallOutcome, LoadConnection};
pub use plan::{LoadPlan, RequestTemplate, SplitMix64};
pub use report::{LoadReport, Slo};
pub use runner::{run, LoadConfig, Mode};
