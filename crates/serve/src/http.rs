//! Strict HTTP/1.1 request parsing and response writing.
//!
//! The parser is deliberately narrow: origin-form targets, `GET`/`POST`
//! only, bodies framed by `Content-Length` only. Everything outside
//! that envelope maps to a precise 4xx — `405` for other methods, `414`
//! for an oversized request line, `431` for an oversized header block,
//! `413` for a body beyond the configured cap, and `400` for anything
//! malformed (including `Transfer-Encoding`, which this server refuses
//! rather than mis-frames). It is incremental — bytes arrive in
//! arbitrary splits from a socket and are buffered until a full request
//! materialises — and total: no byte sequence panics.

use std::fmt;
use std::io::{self, Write};

/// Longest accepted request line (`GET /path HTTP/1.1`), per RFC 9112's
/// recommended minimum. Beyond this the target is the likely culprit:
/// `414 URI Too Long`.
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;

/// Longest accepted head (request line + all headers + terminator).
/// Beyond this: `431 Request Header Fields Too Large`.
pub const MAX_HEAD_BYTES: usize = 32 * 1024;

/// Default body cap; [`ServeConfig`](crate::ServeConfig) can override.
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// The two protocol versions this server accepts. The distinction
/// matters only for connection persistence: HTTP/1.1 defaults to
/// keep-alive, HTTP/1.0 defaults to close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0` — persistent only with `Connection: keep-alive`.
    Http10,
    /// `HTTP/1.1` — persistent unless `Connection: close`.
    Http11,
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Version::Http10 => write!(f, "HTTP/1.0"),
            Version::Http11 => write!(f, "HTTP/1.1"),
        }
    }
}

/// The two methods this server understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET` — read-only endpoints.
    Get,
    /// `POST` — endpoints with a request body or side effects.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Get => write!(f, "GET"),
            Method::Post => write!(f, "POST"),
        }
    }
}

/// A fully parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Origin-form target as sent, query string included.
    pub target: String,
    /// Protocol version from the request line.
    pub version: Version,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Target with any query string stripped — the routing key.
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((path, _)) => path,
            None => &self.target,
        }
    }

    /// Whether the connection persists after this request, per RFC 9112
    /// §9.3: HTTP/1.1 defaults to keep-alive unless the `Connection`
    /// header lists `close`; HTTP/1.0 defaults to close unless it lists
    /// `keep-alive`. The header is a comma-separated token list, matched
    /// case-insensitively.
    pub fn keep_alive(&self) -> bool {
        let tokens = self.header("connection").unwrap_or("");
        let has = |want: &str| {
            tokens
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case(want))
        };
        match self.version {
            Version::Http11 => !has("close"),
            Version::Http10 => has("keep-alive"),
        }
    }
}

/// Why a request was rejected; each variant maps to one status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Structurally invalid request (`400`).
    BadRequest(String),
    /// A method other than `GET`/`POST` (`405`).
    MethodNotAllowed(String),
    /// Declared body larger than the configured cap (`413`).
    PayloadTooLarge(u64),
    /// Request line beyond [`MAX_REQUEST_LINE_BYTES`] (`414`).
    UriTooLong(usize),
    /// Head beyond [`MAX_HEAD_BYTES`] (`431`).
    HeadersTooLarge(usize),
}

impl HttpError {
    /// The response status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::MethodNotAllowed(_) => 405,
            HttpError::PayloadTooLarge(_) => 413,
            HttpError::UriTooLong(_) => 414,
            HttpError::HeadersTooLarge(_) => 431,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            HttpError::MethodNotAllowed(m) => {
                write!(f, "method '{m}' not allowed (only GET and POST)")
            }
            HttpError::PayloadTooLarge(n) => write!(f, "request body of {n} bytes exceeds limit"),
            HttpError::UriTooLong(n) => write!(f, "request line of {n} bytes exceeds limit"),
            HttpError::HeadersTooLarge(n) => write!(f, "request head of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Incremental request parser. Feed socket bytes with
/// [`push`](Self::push) in whatever splits they arrive; a request is
/// returned as soon as its head and declared body are complete. Under
/// keep-alive a single read may carry the tail of one request plus the
/// head of the next; completed requests consume exactly their own bytes
/// and the surplus stays buffered — [`next_request`](Self::next_request)
/// pulls further pipelined requests without new socket bytes. Errors
/// are terminal — the connection should answer with
/// [`HttpError::status`] and close.
pub struct RequestParser {
    buf: Vec<u8>,
    max_body_bytes: usize,
}

impl RequestParser {
    /// A parser enforcing the given body cap (head limits are fixed).
    pub fn new(max_body_bytes: usize) -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            max_body_bytes,
        }
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends bytes and attempts to complete a request. `Ok(None)`
    /// means more bytes are needed.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        self.buf.extend_from_slice(bytes);
        self.try_parse()
    }

    /// Attempts to complete a request from bytes already buffered —
    /// the pipelining path, called after a completed request to drain
    /// any follow-up request that arrived in the same read.
    pub fn next_request(&mut self) -> Result<Option<Request>, HttpError> {
        self.try_parse()
    }

    fn try_parse(&mut self) -> Result<Option<Request>, HttpError> {
        let Some(head_len) = find_terminator(&self.buf) else {
            // The head is still streaming in; enforce limits on what is
            // already buffered so a hostile peer cannot grow it forever.
            if !self.buf.contains(&b'\n') && self.buf.len() > MAX_REQUEST_LINE_BYTES {
                return Err(HttpError::UriTooLong(self.buf.len()));
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadersTooLarge(self.buf.len()));
            }
            return Ok(None);
        };
        if head_len > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge(head_len));
        }

        let head = std::str::from_utf8(&self.buf[..head_len])
            .map_err(|_| HttpError::BadRequest("head is not valid UTF-8".into()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        if request_line.len() > MAX_REQUEST_LINE_BYTES {
            return Err(HttpError::UriTooLong(request_line.len()));
        }
        let (method, target, version) = parse_request_line(request_line)?;
        let headers = lines
            .map(parse_header_line)
            .collect::<Result<Vec<_>, _>>()?;

        if headers.iter().any(|(n, _)| n == "transfer-encoding") {
            return Err(HttpError::BadRequest(
                "Transfer-Encoding is not supported; frame the body with Content-Length".into(),
            ));
        }
        let body_len = content_length(&headers)?;
        if body_len > self.max_body_bytes as u64 {
            return Err(HttpError::PayloadTooLarge(body_len));
        }
        let body_len = body_len as usize;

        // 4 bytes of `\r\n\r\n` terminator sit between head and body.
        let total = head_len + 4 + body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_len + 4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method,
            target,
            version,
            headers,
            body,
        }))
    }
}

/// Index of the `\r\n\r\n` head terminator (length of the head before
/// it), if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_request_line(line: &str) -> Result<(Method, String, Version), HttpError> {
    let mut parts = line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequest(format!(
            "malformed request line '{line}'"
        )));
    };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        // Any other all-uppercase token is a real method we refuse;
        // anything else is line noise, not HTTP.
        m if !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()) => {
            return Err(HttpError::MethodNotAllowed(m.to_string()))
        }
        m => return Err(HttpError::BadRequest(format!("invalid method '{m}'"))),
    };
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "target '{target}' is not origin-form"
        )));
    }
    let version = match version {
        "HTTP/1.1" => Version::Http11,
        "HTTP/1.0" => Version::Http10,
        other => {
            return Err(HttpError::BadRequest(format!(
                "unsupported protocol version '{other}'"
            )))
        }
    };
    Ok((method, target.to_string(), version))
}

fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::BadRequest(format!(
            "header line '{line}' has no colon"
        )));
    };
    // RFC 9112: no whitespace between field name and colon.
    if name.is_empty()
        || !name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
    {
        return Err(HttpError::BadRequest(format!(
            "invalid header name '{name}'"
        )));
    }
    Ok((name.to_ascii_lowercase(), value.trim().to_string()))
}

fn content_length(headers: &[(String, String)]) -> Result<u64, HttpError> {
    let mut values = headers.iter().filter(|(n, _)| n == "content-length");
    let Some((_, first)) = values.next() else {
        return Ok(0);
    };
    // Duplicate Content-Length headers are a request-smuggling vector;
    // accept them only when they all agree.
    if values.any(|(_, v)| v != first) {
        return Err(HttpError::BadRequest(
            "conflicting Content-Length headers".into(),
        ));
    }
    first
        .parse::<u64>()
        .map_err(|_| HttpError::BadRequest(format!("invalid Content-Length '{first}'")))
}

/// A response under construction; always framed with `Content-Length`,
/// and carrying the negotiated persistence in its `Connection` header —
/// `close` unless [`with_keep_alive`](Self::with_keep_alive) marks the
/// connection as persisting, so every error path defaults to the safe
/// teardown.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code to send.
    pub status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    keep_alive: bool,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: false,
        }
    }

    /// A response carrying a JSON body.
    pub fn json(status: u16, body: String) -> Response {
        Response::new(status)
            .with_header("Content-Type", "application/json")
            .with_body(body.into_bytes())
    }

    /// A response carrying a plain-text body.
    pub fn text(status: u16, body: String) -> Response {
        Response::new(status)
            .with_header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into_bytes())
    }

    /// A JSON error envelope: `{"error":"..."}`.
    pub fn error_json(status: u16, message: &str) -> Response {
        let mut body = String::with_capacity(message.len() + 12);
        body.push_str("{\"error\":");
        c100_obs::json::write_escaped(&mut body, message);
        body.push_str("}\n");
        Response::json(status, body)
    }

    /// Adds a header (builder-style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Replaces the body (builder-style).
    pub fn with_body(mut self, body: Vec<u8>) -> Response {
        self.body = body;
        self
    }

    /// Sets the emitted `Connection` header: `keep-alive` when the
    /// request negotiated persistence, `close` (the default) otherwise.
    pub fn with_keep_alive(mut self, keep_alive: bool) -> Response {
        self.keep_alive = keep_alive;
        self
    }

    /// Whether this response leaves the connection open.
    pub fn keep_alive(&self) -> bool {
        self.keep_alive
    }

    /// The body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serializes status line, headers, and body into a byte buffer —
    /// the event loop's unit of pending write.
    pub fn to_bytes(&self) -> Vec<u8> {
        let connection = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
            self.status,
            reason(self.status),
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes status line, headers, and body to the writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&self.to_bytes())?;
        w.flush()
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Content Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        RequestParser::new(DEFAULT_MAX_BODY_BYTES).push(bytes)
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let req = parse_all(b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn needs_more_until_declared_body_arrives() {
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        assert!(parser
            .push(b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nab")
            .unwrap()
            .is_none());
        let req = parser.push(b"cd").unwrap().unwrap();
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn one_byte_at_a_time_parses_identically() {
        let raw = b"POST /a?x=1 HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let mut done = None;
        for &b in raw.iter() {
            if let Some(req) = parser.push(&[b]).unwrap() {
                done = Some(req);
            }
        }
        let req = done.expect("request completes on final byte");
        assert_eq!(req.path(), "/a");
        assert_eq!(req.target, "/a?x=1");
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn unknown_method_is_405() {
        let err = parse_all(b"DELETE /models HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 405);
    }

    #[test]
    fn garbage_request_line_is_400() {
        for raw in [
            &b"not http at all\r\n\r\n"[..],
            b"GET noslash HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            let err = parse_all(raw).unwrap_err();
            assert_eq!(err.status(), 400, "input {raw:?}");
        }
    }

    #[test]
    fn oversized_request_line_is_414() {
        let line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE_BYTES)
        );
        assert_eq!(parse_all(line.as_bytes()).unwrap_err().status(), 414);
        // Also before any newline has arrived.
        let endless = vec![b'a'; MAX_REQUEST_LINE_BYTES + 1];
        assert_eq!(parse_all(&endless).unwrap_err().status(), 414);
    }

    #[test]
    fn oversized_header_block_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        while raw.len() <= MAX_HEAD_BYTES {
            raw.extend_from_slice(b"X-Pad: yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy\r\n");
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse_all(&raw).unwrap_err().status(), 431);
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let err =
            parse_all(b"POST /predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let mut parser = RequestParser::new(16);
        let err = parser
            .push(b"POST /predict HTTP/1.1\r\nContent-Length: 17\r\n\r\n")
            .unwrap_err();
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn conflicting_content_lengths_are_400() {
        let err =
            parse_all(b"POST /p HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab")
                .unwrap_err();
        assert_eq!(err.status(), 400);
        // Agreeing duplicates are tolerated.
        let req =
            parse_all(b"POST /p HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab")
                .unwrap()
                .unwrap();
        assert_eq!(req.body, b"ab");
    }

    #[test]
    fn response_writes_content_length_framing() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        // Persistence defaults to close; error paths built without a
        // request context must tear the connection down.
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn response_emits_negotiated_persistence() {
        let text = String::from_utf8(
            Response::json(200, "{}".into())
                .with_keep_alive(true)
                .to_bytes(),
        )
        .unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close\r\n"));
    }

    #[test]
    fn keep_alive_follows_version_defaults_and_connection_tokens() {
        let cases: [(&[u8], bool); 6] = [
            (b"GET / HTTP/1.1\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true),
            // Token list: any `close` member wins over 1.1's default.
            (b"GET / HTTP/1.1\r\nConnection: foo, CLOSE\r\n\r\n", false),
        ];
        for (raw, expect) in cases {
            let req = parse_all(raw).unwrap().unwrap();
            assert_eq!(req.keep_alive(), expect, "input {raw:?}");
        }
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        let both = b"POST /predict HTTP/1.1\r\nContent-Length: 2\r\n\r\nab\
                     GET /healthz HTTP/1.1\r\n\r\n";
        let first = parser.push(both).unwrap().unwrap();
        assert_eq!(first.method, Method::Post);
        assert_eq!(first.body, b"ab");
        assert!(parser.buffered() > 0, "second request stays buffered");
        let second = parser.next_request().unwrap().unwrap();
        assert_eq!(second.method, Method::Get);
        assert_eq!(second.target, "/healthz");
        assert_eq!(parser.buffered(), 0);
        assert!(parser.next_request().unwrap().is_none());
    }

    #[test]
    fn error_json_escapes_the_message() {
        let resp = Response::error_json(400, "a \"quoted\" thing");
        let body = std::str::from_utf8(resp.body()).unwrap();
        assert_eq!(body, "{\"error\":\"a \\\"quoted\\\" thing\"}\n");
    }
}
