//! Property tests for the HTTP parser: no byte sequence, however
//! mangled or however split across reads, panics the parser — it either
//! completes a request, waits for more bytes, or fails with a typed
//! [`HttpError`]. Split position must never change the outcome. The
//! pipelining properties extend the same guarantee to keep-alive
//! streams: multiple framed requests per connection, torn at arbitrary
//! read boundaries, with trailing or malformed follow-ups.

use c100_serve::http::DEFAULT_MAX_BODY_BYTES;
use c100_serve::{HttpError, Request, RequestParser};
use proptest::prelude::*;

/// Drives a parser over `bytes` in the given chunk sizes (cycled).
fn feed(bytes: &[u8], chunks: &[usize]) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    let mut offset = 0;
    let mut c = 0;
    while offset < bytes.len() {
        let step = chunks.get(c % chunks.len()).copied().unwrap_or(1).max(1);
        c += 1;
        let end = (offset + step).min(bytes.len());
        match parser.push(&bytes[offset..end]) {
            Ok(Some(request)) => return Ok(Some(request)),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
        offset = end;
    }
    Ok(None)
}

/// A plausible request that the mutation tests start from.
fn template(body_len: usize) -> Vec<u8> {
    let body: String = (0..body_len)
        .map(|i| ((i % 10) as u8 + b'0') as char)
        .collect();
    format!(
        "POST /predict HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

/// Drives a parser over a whole byte stream in the given chunk sizes,
/// collecting every request it yields — `push` for fresh bytes plus
/// `next_request` to drain pipelined requests already buffered. On
/// error, returns the requests completed before it alongside the error.
fn feed_stream(bytes: &[u8], chunks: &[usize]) -> (Vec<Request>, Option<HttpError>) {
    let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    let mut requests = Vec::new();
    let mut offset = 0;
    let mut c = 0;
    while offset < bytes.len() {
        let step = chunks.get(c % chunks.len()).copied().unwrap_or(1).max(1);
        c += 1;
        let end = (offset + step).min(bytes.len());
        match parser.push(&bytes[offset..end]) {
            Ok(Some(request)) => requests.push(request),
            Ok(None) => {}
            Err(e) => return (requests, Some(e)),
        }
        offset = end;
        loop {
            match parser.next_request() {
                Ok(Some(request)) => requests.push(request),
                Ok(None) => break,
                Err(e) => return (requests, Some(e)),
            }
        }
    }
    (requests, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u32..256, 0..512)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        // Whole-buffer and byte-at-a-time feeds must both merely
        // return — any panic fails the test harness itself.
        let whole = feed(&bytes, &[bytes.len().max(1)]);
        let trickled = feed(&bytes, &[1]);
        // Outcomes agree (parsing is deterministic over content, not
        // over arrival pattern).
        prop_assert_eq!(format!("{whole:?}"), format!("{trickled:?}"));
    }

    #[test]
    fn mutated_requests_never_panic(
        (body_len, flips) in (0usize..64, proptest::collection::vec((0usize..256, 0u32..256), 1..8))
    ) {
        let mut bytes = template(body_len);
        for &(pos, val) in &flips {
            let idx = pos % bytes.len();
            bytes[idx] = val as u8;
        }
        let _ = feed(&bytes, &[bytes.len()]);
        let _ = feed(&bytes, &[7]);
    }

    #[test]
    fn split_position_never_changes_the_parse(
        (body_len, chunks) in (0usize..64, proptest::collection::vec(1usize..40, 1..6))
    ) {
        let bytes = template(body_len);
        let reference = feed(&bytes, &[bytes.len()]).unwrap().expect("template parses");
        let split = feed(&bytes, &chunks).unwrap().expect("split parse completes");
        prop_assert_eq!(&reference, &split);
        prop_assert_eq!(split.body.len(), body_len);
    }

    #[test]
    fn truncations_of_a_valid_request_need_more_not_panic(
        (body_len, cut_seed) in (1usize..64, 0usize..4096)
    ) {
        let bytes = template(body_len);
        let cut = cut_seed % bytes.len();
        // A strict prefix either waits for more bytes or, if the head
        // is complete but the body is short, also waits. Never an error,
        // never a request.
        let outcome = feed(&bytes[..cut], &[3]);
        prop_assert!(matches!(outcome, Ok(None)), "prefix of {cut} bytes gave {outcome:?}");
    }

    #[test]
    fn pipelined_requests_parse_whole_regardless_of_tearing(
        (first_len, second_len, chunks) in (
            0usize..48,
            0usize..48,
            proptest::collection::vec(1usize..50, 1..6),
        )
    ) {
        // Two framed requests back to back; reads torn at arbitrary
        // boundaries (including mid-body of the first / mid-head of the
        // second) must still yield exactly two requests with the right
        // bodies, in order.
        let mut stream = template(first_len);
        stream.extend_from_slice(&template(second_len));
        let (requests, error) = feed_stream(&stream, &chunks);
        prop_assert!(error.is_none(), "unexpected error: {error:?}");
        prop_assert_eq!(requests.len(), 2);
        prop_assert_eq!(requests[0].body.len(), first_len);
        prop_assert_eq!(requests[1].body.len(), second_len);
        // Tearing must not change what gets parsed.
        let (reference, _) = feed_stream(&stream, &[stream.len()]);
        prop_assert_eq!(&requests, &reference);
    }

    #[test]
    fn trailing_bytes_of_the_next_request_stay_buffered(
        (first_len, cut_seed) in (0usize..48, 1usize..4096)
    ) {
        // A complete request plus a strict prefix of the next one: the
        // first parses, the tail waits buffered — not an error, not a
        // phantom second request.
        let second = template(32);
        let cut = 1 + cut_seed % (second.len() - 1);
        let mut stream = template(first_len);
        stream.extend_from_slice(&second[..cut]);
        let (requests, error) = feed_stream(&stream, &[5]);
        prop_assert!(error.is_none(), "unexpected error: {error:?}");
        prop_assert_eq!(requests.len(), 1);
        prop_assert_eq!(requests[0].body.len(), first_len);
    }

    #[test]
    fn malformed_second_request_errors_only_after_the_first_completes(
        (first_len, garbage) in (
            0usize..48,
            proptest::collection::vec(0u32..256, 1..64),
        )
    ) {
        // Garbage terminated with a head delimiter so the parser must
        // judge it rather than wait for more bytes.
        let mut stream = template(first_len);
        let mut tail: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        tail.extend_from_slice(b"\r\n\r\n");
        stream.extend_from_slice(&tail);
        let (requests, _error) = feed_stream(&stream, &[3]);
        // Whatever the tail is judged as (some byte salads are valid
        // requests!), the first request always comes through intact.
        prop_assert!(!requests.is_empty(), "first request lost");
        prop_assert_eq!(requests[0].body.len(), first_len);
    }
}
