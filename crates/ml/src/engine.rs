//! Compiled flat-ensemble inference and the unified [`Predictor`] API.
//!
//! Training builds ensembles as vectors of [`Tree`]s whose nodes point at
//! each other through `left`/`right` indices. That layout is convenient
//! to grow but slow to serve: every split visits a 48-byte
//! [`Node`](crate::tree::Node),
//! touching cache lines full of fields (`cover`, `impurity`, MDI
//! bookkeeping) that inference never reads.
//!
//! [`CompiledEnsemble`] re-lays a fitted ensemble into contiguous
//! structure-of-arrays node pools shared by every tree:
//!
//! ```text
//!   feature:   Vec<u32>   split feature index          (4 B / node)
//!   child:     Vec<i32>   offset to left child, 0=leaf (4 B / node)
//!   threshold: Vec<f64>   split threshold              (8 B / node)
//!   value:     Vec<f64>   leaf value (cold: read once) (8 B / node)
//!   roots:     Vec<u32>   arena slot of each tree root
//! ```
//!
//! Trees are flattened breadth-first and sibling children always occupy
//! adjacent slots, so a traversal step is branchless arithmetic rather
//! than a pointer chase:
//!
//! ```text
//!   go_right = !(row[feature[i]] <= threshold[i])   // NaN ⇒ right
//!   i        = i + child[i] + go_right
//! ```
//!
//! `!(x <= t)` — not `x > t` — is deliberate: IEEE comparisons with NaN
//! are false, so both forms differ exactly on NaN rows and only the
//! former routes them right like the interpreted
//! [`Tree::predict_row`](crate::tree::Tree::predict_row) does.
//!
//! Batches traverse tree-outer / row-inner over small row blocks, so a
//! tree's hot upper levels stay in L1 across the whole block instead of
//! being evicted between rows. Per-row accumulation still sums leaves in
//! tree order starting from `0.0` and applies the family finalizer
//! (divide by tree count for forests, add `base_score` for GBDT) last —
//! the same float fold as the interpreted path, which is what keeps
//! compiled output **bit-identical**, not merely close (proptested in
//! `tests/proptests.rs`).
//!
//! Optionally, thresholds are quantized to per-feature rank codes so the
//! hot loop compares `u16`s instead of `f64`s (see `ThresholdCodes`).
//! Quantization is also bit-exact: a row value is encoded as the number
//! of distinct model thresholds strictly below it, and for sorted
//! distinct cuts `x <= cuts[i] ⟺ code(x) <= i`, while NaN encodes past
//! every cut and keeps routing right.

use std::collections::VecDeque;

use crate::forest::RandomForest;
use crate::gbdt::Gbdt;
use crate::tree::Tree;
use crate::Regressor;

/// Which inference backend a prediction surface should use.
///
/// Both engines produce bit-identical predictions; the knob exists so
/// callers can fall back to the interpreted walker when diagnosing the
/// compiled one, and so benchmarks can measure the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Walk the fitted trees' linked `Node` structs directly.
    Interpreted,
    /// Flatten the ensemble into [`CompiledEnsemble`] arrays first.
    #[default]
    Compiled,
}

impl Engine {
    /// Stable string form, used in CLI flags, `/models` responses, and
    /// trace metadata.
    pub fn label(&self) -> String {
        match self {
            Engine::Interpreted => "interpreted".to_string(),
            Engine::Compiled => "compiled".to_string(),
        }
    }

    /// Parses [`Engine::label`] output (for `--engine` flags and the
    /// `/reload` engine override).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "interpreted" => Some(Engine::Interpreted),
            "compiled" => Some(Engine::Compiled),
            _ => None,
        }
    }
}

/// The unified prediction surface: one row in, or a validated row-major
/// batch in, forecasts out.
///
/// Every serving path (`BatchPredictor`, c100-serve, `repro predict`)
/// routes through this trait, so interpreted models ([`RandomForest`],
/// [`Gbdt`]) and [`CompiledEnsemble`] are interchangeable backends.
/// `predict_row` itself comes from the [`Regressor`] supertrait;
/// implementations must keep `predict_batch` bit-identical to calling
/// `predict_row` per row.
pub trait Predictor: Regressor + Send + Sync {
    /// Row width this predictor expects.
    fn n_features(&self) -> usize;

    /// Predicts every `width`-wide row of a row-major buffer into `out`.
    /// Callers guarantee `data.len() == out.len() * width`.
    fn predict_batch(&self, data: &[f64], width: usize, out: &mut [f64]) {
        for (slot, row) in out.iter_mut().zip(data.chunks_exact(width)) {
            *slot = self.predict_row(row);
        }
    }
}

impl Predictor for RandomForest {
    fn n_features(&self) -> usize {
        self.n_features
    }
}

impl Predictor for Gbdt {
    fn n_features(&self) -> usize {
        self.n_features
    }
}

/// How per-tree leaf sums become a final prediction. Applied after the
/// in-order leaf fold, mirroring the interpreted expressions
/// `sum / n as f64` (forest) and `base_score + sum` (GBDT) exactly.
#[derive(Debug, Clone, Copy)]
enum Finalize {
    /// Random forest: divide the leaf sum by the tree count.
    Mean(usize),
    /// GBDT: add the base score to the leaf sum.
    Offset(f64),
}

impl Finalize {
    #[inline]
    fn apply(self, acc: f64) -> f64 {
        match self {
            Finalize::Mean(n) => acc / n as f64,
            Finalize::Offset(base) => base + acc,
        }
    }
}

/// Rows per traversal block. Small enough that a block of row slices
/// and codes stays L1-resident, large enough to amortize re-walking
/// each tree's upper levels.
const ROW_BLOCK: usize = 32;

/// Minimum batch size before threshold quantization can pay for its
/// per-row encoding pass.
const QUANT_MIN_ROWS: usize = 16;

/// Per-feature threshold rank tables for the integer-compare hot path.
///
/// For each feature, `cuts` holds the sorted distinct thresholds the
/// ensemble ever tests it against. A row value `x` is encoded as
/// `|{t ∈ cuts : t < x}|` — the rank of `x` among the cuts — and a node
/// testing `x <= cuts[i]` becomes `code(x) <= i`. Both sides of every
/// comparison are then small integers (`u16`; histogram-trained models
/// see at most `max_bins − 1 ≤ 255` distinct thresholds per feature).
/// NaN encodes as `cuts.len()`, strictly above every node code, so NaN
/// rows keep routing right exactly like the f64 path.
#[derive(Debug, Clone)]
struct ThresholdCodes {
    /// Sorted distinct thresholds per feature; empty for features the
    /// ensemble never splits on.
    cuts: Vec<Vec<f64>>,
    /// Rank of `threshold[i]` within `cuts[feature[i]]`, per arena
    /// node; 0 for leaves (never read).
    node_code: Vec<u16>,
    /// Estimated binary-search comparisons to encode one row.
    encode_cost: usize,
}

/// A fitted RF/GBDT ensemble flattened into contiguous SoA node arrays
/// for fast batch inference. See the [module docs](self) for the layout
/// and the bit-identity argument.
#[derive(Debug, Clone)]
pub struct CompiledEnsemble {
    n_features: usize,
    finalize: Finalize,
    /// Arena slot of each tree's root, in ensemble order.
    roots: Vec<u32>,
    /// Split feature per node (0 for leaves, never read).
    feature: Vec<u32>,
    /// Offset from a node to its left child; the right child is the
    /// next slot. `0` marks a leaf (a child can never be its own
    /// parent, so offset 0 is free to repurpose).
    child: Vec<i32>,
    /// Split threshold per node (0.0 for leaves, never read).
    threshold: Vec<f64>,
    /// Leaf value per node (0.0 for internal nodes, never read).
    value: Vec<f64>,
    /// Upper bound on node visits for one row over all trees
    /// (sum of tree depths); drives the quantization heuristic.
    visit_cost: usize,
    quant: Option<ThresholdCodes>,
}

impl CompiledEnsemble {
    /// Compiles a fitted random forest. Predictions stay bit-identical
    /// to [`RandomForest::predict_row`](Regressor::predict_row).
    pub fn from_forest(forest: &RandomForest) -> CompiledEnsemble {
        CompiledEnsemble::compile(
            forest.trees.iter().map(|t| &t.tree),
            forest.n_features,
            Finalize::Mean(forest.trees.len()),
        )
    }

    /// Compiles a fitted GBDT. Predictions stay bit-identical to
    /// [`Gbdt::predict_row`](Regressor::predict_row).
    pub fn from_gbdt(gbdt: &Gbdt) -> CompiledEnsemble {
        CompiledEnsemble::compile(
            gbdt.trees.iter(),
            gbdt.n_features,
            Finalize::Offset(gbdt.base_score),
        )
    }

    fn compile<'a, I>(trees: I, n_features: usize, finalize: Finalize) -> CompiledEnsemble
    where
        I: Iterator<Item = &'a Tree>,
    {
        let mut out = CompiledEnsemble {
            n_features,
            finalize,
            roots: Vec::new(),
            feature: Vec::new(),
            child: Vec::new(),
            threshold: Vec::new(),
            value: Vec::new(),
            visit_cost: 0,
            quant: None,
        };
        for tree in trees {
            let root = out.flatten_tree(tree);
            out.roots.push(root);
        }
        out.quant = out.build_threshold_codes();
        out
    }

    /// Appends one tree to the arena in breadth-first order, allocating
    /// each internal node's children as adjacent slots, and returns the
    /// root's slot.
    fn flatten_tree(&mut self, tree: &Tree) -> u32 {
        let root = self.alloc_node();
        // (original node index, arena slot, depth)
        let mut queue: VecDeque<(u32, usize, usize)> = VecDeque::new();
        queue.push_back((0, root, 1));
        let mut depth = 0usize;
        while let Some((orig, slot, d)) = queue.pop_front() {
            depth = depth.max(d);
            let node = &tree.nodes[orig as usize];
            if node.is_leaf() {
                self.value[slot] = node.value;
            } else {
                let left = self.alloc_node();
                let right = self.alloc_node();
                debug_assert_eq!(right, left + 1);
                self.feature[slot] = node.feature;
                self.threshold[slot] = node.threshold;
                self.child[slot] = (left - slot) as i32;
                queue.push_back((node.left, left, d + 1));
                queue.push_back((node.right, right, d + 1));
            }
        }
        self.visit_cost += depth;
        root as u32
    }

    fn alloc_node(&mut self) -> usize {
        let slot = self.feature.len();
        self.feature.push(0);
        self.child.push(0);
        self.threshold.push(0.0);
        self.value.push(0.0);
        slot
    }

    /// Builds the per-feature threshold rank tables, or `None` when a
    /// feature has more distinct thresholds than `u16` can rank (only
    /// plausible for huge exact-split ensembles).
    fn build_threshold_codes(&self) -> Option<ThresholdCodes> {
        let mut cuts: Vec<Vec<f64>> = vec![Vec::new(); self.n_features];
        for i in 0..self.child.len() {
            if self.child[i] != 0 {
                cuts[self.feature[i] as usize].push(self.threshold[i]);
            }
        }
        let mut encode_cost = 0usize;
        for feature_cuts in &mut cuts {
            feature_cuts.sort_by(f64::total_cmp);
            feature_cuts.dedup();
            if feature_cuts.len() > u16::MAX as usize {
                return None;
            }
            if !feature_cuts.is_empty() {
                encode_cost += (feature_cuts.len() + 1).ilog2() as usize + 1;
            }
        }
        let node_code = (0..self.child.len())
            .map(|i| {
                if self.child[i] == 0 {
                    0
                } else {
                    let feature_cuts = &cuts[self.feature[i] as usize];
                    feature_cuts.partition_point(|&t| t < self.threshold[i]) as u16
                }
            })
            .collect();
        Some(ThresholdCodes {
            cuts,
            node_code,
            encode_cost,
        })
    }

    /// Total arena nodes across all trees.
    pub fn n_nodes(&self) -> usize {
        self.child.len()
    }

    /// Number of flattened trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Whether threshold rank tables were built (they always are unless
    /// some feature has more than `u16::MAX` distinct thresholds).
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Whether [`Predictor::predict_batch`] will pick the quantized
    /// path for large batches: traversal work must clearly dominate the
    /// per-row encoding pass, otherwise encoding every feature costs
    /// more than it saves on shallow ensembles over wide rows.
    pub fn quantization_pays(&self) -> bool {
        match &self.quant {
            Some(q) => self.visit_cost > 2 * q.encode_cost,
            None => false,
        }
    }

    /// One branchless root-to-leaf descent on raw f64 thresholds.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn leaf_value(&self, root: u32, row: &[f64]) -> f64 {
        let mut idx = root as usize;
        loop {
            let off = self.child[idx];
            if off == 0 {
                return self.value[idx];
            }
            // `!(x <= t)`, not `x > t`: both are false only for NaN,
            // which must route right like the interpreted walker.
            let go_right = !(row[self.feature[idx] as usize] <= self.threshold[idx]) as usize;
            idx = (idx as isize + off as isize) as usize + go_right;
        }
    }

    /// Batch prediction over the raw f64 arrays, blocked tree-outer /
    /// row-inner. Bit-identical to per-row [`Regressor::predict_row`].
    pub fn predict_batch_raw(&self, data: &[f64], width: usize, out: &mut [f64]) {
        for (rows, outs) in data
            .chunks(width * ROW_BLOCK)
            .zip(out.chunks_mut(ROW_BLOCK))
        {
            outs.fill(0.0);
            for &root in &self.roots {
                for (j, slot) in outs.iter_mut().enumerate() {
                    *slot += self.leaf_value(root, &rows[j * width..(j + 1) * width]);
                }
            }
            for slot in outs.iter_mut() {
                *slot = self.finalize.apply(*slot);
            }
        }
    }

    /// Batch prediction through the quantized integer-compare path.
    /// Returns `false` (leaving `out` untouched) when no rank tables
    /// exist. Bit-identical to [`CompiledEnsemble::predict_batch_raw`].
    pub fn predict_batch_quantized(&self, data: &[f64], width: usize, out: &mut [f64]) -> bool {
        let Some(q) = &self.quant else {
            return false;
        };
        let mut codes = vec![0u16; ROW_BLOCK * width];
        for (rows, outs) in data
            .chunks(width * ROW_BLOCK)
            .zip(out.chunks_mut(ROW_BLOCK))
        {
            for (row, code_row) in rows.chunks_exact(width).zip(codes.chunks_exact_mut(width)) {
                for (f, (&v, code)) in row.iter().zip(code_row.iter_mut()).enumerate() {
                    let cuts = &q.cuts[f];
                    *code = if v.is_nan() {
                        // Past every cut: fails `code <= node_code` at
                        // each split, so NaN keeps routing right.
                        cuts.len() as u16
                    } else {
                        cuts.partition_point(|&t| t < v) as u16
                    };
                }
            }
            outs.fill(0.0);
            for &root in &self.roots {
                for (j, slot) in outs.iter_mut().enumerate() {
                    let code_row = &codes[j * width..(j + 1) * width];
                    let mut idx = root as usize;
                    *slot += loop {
                        let off = self.child[idx];
                        if off == 0 {
                            break self.value[idx];
                        }
                        let go_right =
                            (code_row[self.feature[idx] as usize] > q.node_code[idx]) as usize;
                        idx = (idx as isize + off as isize) as usize + go_right;
                    };
                }
            }
            for slot in outs.iter_mut() {
                *slot = self.finalize.apply(*slot);
            }
        }
        true
    }
}

impl Regressor for CompiledEnsemble {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &root in &self.roots {
            acc += self.leaf_value(root, row);
        }
        self.finalize.apply(acc)
    }
}

impl Predictor for CompiledEnsemble {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_batch(&self, data: &[f64], width: usize, out: &mut [f64]) {
        if out.len() >= QUANT_MIN_ROWS
            && self.quantization_pays()
            && self.predict_batch_quantized(data, width, out)
        {
            return;
        }
        self.predict_batch_raw(data, width, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Matrix;
    use crate::forest::RandomForestConfig;
    use crate::gbdt::GbdtConfig;
    use crate::tree::{MaxFeatures, SplitMethod};

    fn training_data() -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..48)
            .map(|i| {
                let a = i as f64 * 0.37 - 8.0;
                let b = ((i * 7) % 13) as f64 - 6.0;
                let c = ((i * 3) % 5) as f64;
                vec![a, b, c]
            })
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r[0] * 2.0 - r[1] + r[2] * r[2])
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn engine_labels_round_trip() {
        for engine in [Engine::Interpreted, Engine::Compiled] {
            assert_eq!(Engine::parse(&engine.label()), Some(engine));
        }
        assert_eq!(Engine::parse("jit"), None);
        assert_eq!(Engine::default(), Engine::Compiled);
    }

    #[test]
    fn compiled_forest_is_bit_identical_on_all_paths() {
        let (x, y) = training_data();
        let forest = RandomForestConfig {
            n_estimators: 9,
            max_depth: Some(6),
            max_features: MaxFeatures::Sqrt,
            ..Default::default()
        }
        .fit(&x, &y, 11)
        .unwrap();
        let compiled = CompiledEnsemble::from_forest(&forest);
        assert_eq!(compiled.n_trees(), 9);
        assert_parity(&forest, &compiled, &x);
    }

    #[test]
    fn compiled_gbdt_is_bit_identical_on_all_paths() {
        let (x, y) = training_data();
        let gbdt = GbdtConfig {
            n_estimators: 12,
            max_depth: 4,
            split_method: SplitMethod::Histogram { max_bins: 16 },
            ..Default::default()
        }
        .fit(&x, &y, 7)
        .unwrap();
        let compiled = CompiledEnsemble::from_gbdt(&gbdt);
        assert_parity(&gbdt, &compiled, &x);
    }

    fn assert_parity<M: Regressor>(model: &M, compiled: &CompiledEnsemble, x: &Matrix) {
        let width = x.n_features();
        // Probe both training rows and shifted rows (novel thresholds).
        let mut data: Vec<f64> = Vec::new();
        for r in 0..x.n_rows() {
            data.extend_from_slice(x.row(r));
        }
        let shifted: Vec<f64> = data.iter().map(|v| v * 1.31 + 0.17).collect();
        data.extend_from_slice(&shifted);
        let n_rows = data.len() / width;

        let expect: Vec<f64> = data
            .chunks_exact(width)
            .map(|row| model.predict_row(row))
            .collect();
        for (row, want) in data.chunks_exact(width).zip(&expect) {
            assert_eq!(compiled.predict_row(row).to_bits(), want.to_bits());
        }
        let mut raw = vec![0.0; n_rows];
        compiled.predict_batch_raw(&data, width, &mut raw);
        let mut quant = vec![0.0; n_rows];
        assert!(compiled.predict_batch_quantized(&data, width, &mut quant));
        let mut auto = vec![0.0; n_rows];
        compiled.predict_batch(&data, width, &mut auto);
        for i in 0..n_rows {
            assert_eq!(raw[i].to_bits(), expect[i].to_bits());
            assert_eq!(quant[i].to_bits(), expect[i].to_bits());
            assert_eq!(auto[i].to_bits(), expect[i].to_bits());
        }
    }

    #[test]
    fn nan_rows_route_right_on_every_path() {
        let (x, y) = training_data();
        let forest = RandomForestConfig {
            n_estimators: 5,
            max_depth: Some(5),
            ..Default::default()
        }
        .fit(&x, &y, 3)
        .unwrap();
        let compiled = CompiledEnsemble::from_forest(&forest);
        let data = vec![f64::NAN, 1.0, f64::NAN, 0.5, f64::NAN, f64::NAN];
        let expect: Vec<f64> = data
            .chunks_exact(3)
            .map(|r| forest.predict_row(r))
            .collect();
        let mut raw = vec![0.0; 2];
        compiled.predict_batch_raw(&data, 3, &mut raw);
        let mut quant = vec![0.0; 2];
        assert!(compiled.predict_batch_quantized(&data, 3, &mut quant));
        for i in 0..2 {
            assert_eq!(
                compiled.predict_row(&data[i * 3..(i + 1) * 3]).to_bits(),
                expect[i].to_bits()
            );
            assert_eq!(raw[i].to_bits(), expect[i].to_bits());
            assert_eq!(quant[i].to_bits(), expect[i].to_bits());
        }
    }
}
