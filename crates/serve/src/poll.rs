//! Minimal, dependency-free binding to `poll(2)`.
//!
//! The event loop needs exactly one primitive: "block until any of
//! these descriptors is readable/writable, or a timeout passes". The
//! `poll` symbol is already linked into every binary through std, so a
//! single `extern "C"` declaration — no `libc` crate — is enough. The
//! wrapper retries `EINTR` and surfaces every other failure as
//! `io::Error`, keeping all `unsafe` confined to this module.

use std::io;
use std::os::raw::{c_int, c_ulong};
use std::os::unix::io::RawFd;

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled; never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always polled; never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid descriptor (always polled; never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set, ABI-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel reported any of `mask` (or an error/hangup,
    /// which `poll` reports regardless of the requested set).
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry has pending events or `timeout_ms`
/// elapses (`0` returns immediately, negative blocks indefinitely).
/// Returns how many entries have non-zero `revents`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn timeout_expires_with_no_events() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].ready(POLLIN));
    }

    #[test]
    fn readable_end_reports_pollin() {
        let (a, mut b) = UnixStream::pair().unwrap();
        b.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLIN));
    }

    #[test]
    fn hangup_is_reported_even_when_only_pollin_was_asked() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        poll_fds(&mut fds, 1000).unwrap();
        assert!(fds[0].ready(POLLIN), "EOF shows as POLLIN or POLLHUP");
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].ready(POLLOUT));
    }
}
