//! Minimal CSV persistence for frames.
//!
//! Experiment outputs (figure series, tables) are written as plain CSV so
//! they can be inspected or re-plotted outside Rust. The format is strict:
//! a `date` column first, ISO dates, empty cells for missing values. Column
//! names in our dataset never contain commas or quotes, so no quoting layer
//! is needed; writing a name containing one is rejected.

use std::io::{BufRead, Write};

use crate::date::Date;
use crate::frame::Frame;
use crate::series::Series;
use crate::{Result, TsError};

/// Serializes the frame as CSV into `writer`.
pub fn write_frame<W: Write>(frame: &Frame, writer: &mut W) -> std::io::Result<()> {
    let bad_name = frame
        .column_names()
        .iter()
        .find(|n| n.contains(',') || n.contains('"') || n.contains('\n'))
        .map(|n| n.to_string());
    if let Some(name) = bad_name {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("column name needs quoting, unsupported: {name}"),
        ));
    }
    write!(writer, "date")?;
    for name in frame.column_names() {
        write!(writer, ",{name}")?;
    }
    writeln!(writer)?;
    for (row, date) in frame.dates().enumerate() {
        write!(writer, "{date}")?;
        for col in frame.columns() {
            let v = col.values()[row];
            if v.is_nan() {
                write!(writer, ",")?;
            } else {
                write!(writer, ",{v}")?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes the frame to a file path.
pub fn write_frame_to_path(frame: &Frame, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    write_frame(frame, &mut writer)
}

/// Parses a frame from CSV produced by [`write_frame`]. The index must be
/// strictly daily and gap-free.
pub fn read_frame<R: BufRead>(reader: R) -> Result<Frame> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| TsError::Parse("empty input".into()))?
        .map_err(|e| TsError::Parse(e.to_string()))?;
    let mut cols = header.split(',');
    if cols.next() != Some("date") {
        return Err(TsError::Parse("first column must be 'date'".into()));
    }
    let names: Vec<String> = cols.map(|s| s.to_string()).collect();

    let mut dates: Vec<Date> = Vec::new();
    let mut data: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for line in lines {
        let line = line.map_err(|e| TsError::Parse(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let date_str = fields
            .next()
            .ok_or_else(|| TsError::Parse(format!("missing date in row: {line}")))?;
        dates.push(Date::parse(date_str)?);
        for (i, column) in data.iter_mut().enumerate() {
            let field = fields
                .next()
                .ok_or_else(|| TsError::Parse(format!("row too short: {line}")))?;
            if field.is_empty() {
                column.push(f64::NAN);
            } else {
                column.push(
                    field
                        .parse()
                        .map_err(|_| TsError::Parse(format!("bad number '{field}' (col {i})")))?,
                );
            }
        }
        if fields.next().is_some() {
            return Err(TsError::Parse(format!("row too long: {line}")));
        }
    }
    if dates.is_empty() {
        return Err(TsError::Parse("no data rows".into()));
    }
    for (i, pair) in dates.windows(2).enumerate() {
        if pair[1].days_between(pair[0]) != 1 {
            return Err(TsError::Parse(format!(
                "index not strictly daily between rows {i} and {}",
                i + 1
            )));
        }
    }
    let mut frame = Frame::with_daily_index(dates[0], dates.len());
    for (name, values) in names.into_iter().zip(data) {
        frame.push_column(Series::new(name, values))?;
    }
    Ok(frame)
}

/// Reads a frame from a file path.
pub fn read_frame_from_path(path: &std::path::Path) -> Result<Frame> {
    let file = std::fs::File::open(path).map_err(|e| TsError::Parse(e.to_string()))?;
    read_frame(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), 3);
        f.push_column(Series::new("price", vec![1.5, f64::NAN, 3.25]))
            .unwrap();
        f.push_column(Series::new("volume", vec![10.0, 20.0, 30.0]))
            .unwrap();
        f
    }

    #[test]
    fn round_trip_preserves_frame() {
        let frame = sample_frame();
        let mut buf = Vec::new();
        write_frame(&frame, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("date,price,volume\n"));
        assert!(text.contains("2020-01-02,,20\n"));

        let parsed = read_frame(std::io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed.start(), frame.start());
        assert_eq!(
            parsed.column("volume").unwrap().values(),
            &[10.0, 20.0, 30.0]
        );
        assert!(parsed.column("price").unwrap().values()[1].is_nan());
    }

    #[test]
    fn rejects_gappy_index() {
        let text = "date,x\n2020-01-01,1\n2020-01-03,2\n";
        let err = read_frame(std::io::BufReader::new(text.as_bytes()));
        assert!(err.is_err());
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(read_frame(std::io::BufReader::new("x,y\n".as_bytes())).is_err());
        assert!(read_frame(std::io::BufReader::new("date,x\n".as_bytes())).is_err());
        assert!(read_frame(std::io::BufReader::new(
            "date,x\n2020-01-01,1,9\n".as_bytes()
        ))
        .is_err());
        assert!(read_frame(std::io::BufReader::new("date,x\n2020-01-01\n".as_bytes())).is_err());
        assert!(read_frame(std::io::BufReader::new(
            "date,x\n2020-01-01,abc\n".as_bytes()
        ))
        .is_err());
    }

    #[test]
    fn rejects_unquotable_column_names() {
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), 1);
        f.push_column(Series::new("bad,name", vec![1.0])).unwrap();
        let mut buf = Vec::new();
        assert!(write_frame(&f, &mut buf).is_err());
    }
}
