//! Property tests for the artifact codec: round-trips are bit-identical
//! for models of arbitrary shape, and no corruption of the encoded text
//! ever panics — it fails with a typed [`StoreError`].

use std::collections::BTreeMap;

use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::tree::MaxFeatures;
use c100_ml::Regressor;
use c100_store::{ModelArtifact, ModelPayload, StoreError, SCHEMA_VERSION};
use proptest::prelude::*;

/// Strategy: dataset shape + fit seed for a randomly-shaped model.
fn shape() -> impl Strategy<Value = (usize, usize, u64, usize)> {
    // (rows, features, seed, n_estimators)
    (8usize..40, 1usize..6, 0u64..1_000_000, 1usize..8)
}

fn dataset(rows: usize, width: usize, seed: u64) -> (Matrix, Vec<f64>) {
    // Cheap deterministic pseudo-data; variety comes from the seed.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
    };
    let rows_vec: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..width).map(|_| next()).collect())
        .collect();
    let y: Vec<f64> = rows_vec
        .iter()
        .map(|r| r.iter().sum::<f64>() + next())
        .collect();
    (Matrix::from_rows(&rows_vec).unwrap(), y)
}

fn wrap(model: ModelPayload, width: usize, seed: u64) -> ModelArtifact {
    ModelArtifact {
        scenario: "2019_7".into(),
        period: "2019".into(),
        window: 7,
        features: (0..width).map(|i| format!("f{i}")).collect(),
        profile: format!("seed-{seed}"),
        seed,
        train_rows: 0,
        train_start: "2019-01-01".into(),
        train_end: "2019-12-31".into(),
        hyperparameters: BTreeMap::new(),
        model,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rf_save_load_predict_is_bit_identical((rows, width, seed, n_estimators) in shape()) {
        let (x, y) = dataset(rows, width, seed);
        let model = RandomForestConfig {
            n_estimators,
            max_depth: Some(1 + (seed % 5) as usize),
            max_features: if seed % 2 == 0 { MaxFeatures::All } else { MaxFeatures::Sqrt },
            ..Default::default()
        }
        .fit(&x, &y, seed)
        .unwrap();
        let artifact = wrap(ModelPayload::Rf(model), width, seed);
        let decoded = ModelArtifact::decode(&artifact.encode().text).unwrap();
        prop_assert_eq!(&decoded, &artifact);
        for r in 0..x.n_rows() {
            prop_assert_eq!(
                decoded.model.predict_row(x.row(r)).to_bits(),
                artifact.model.predict_row(x.row(r)).to_bits()
            );
        }
    }

    #[test]
    fn gbdt_save_load_predict_is_bit_identical((rows, width, seed, n_estimators) in shape()) {
        let (x, y) = dataset(rows, width, seed);
        let model = GbdtConfig {
            n_estimators,
            max_depth: 1 + (seed % 4) as usize,
            learning_rate: 0.05 + (seed % 10) as f64 * 0.03,
            ..Default::default()
        }
        .fit(&x, &y, seed)
        .unwrap();
        let artifact = wrap(ModelPayload::Gbdt(model), width, seed);
        let decoded = ModelArtifact::decode(&artifact.encode().text).unwrap();
        prop_assert_eq!(&decoded, &artifact);
        for r in 0..x.n_rows() {
            prop_assert_eq!(
                decoded.model.predict_row(x.row(r)).to_bits(),
                artifact.model.predict_row(x.row(r)).to_bits()
            );
        }
    }

    #[test]
    fn flipped_byte_is_a_typed_error_never_a_panic(
        (rows, width, seed, n_estimators) in shape(),
        position_pick in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let (x, y) = dataset(rows, width, seed);
        let model = RandomForestConfig { n_estimators, max_depth: Some(3), ..Default::default() }
            .fit(&x, &y, seed)
            .unwrap();
        let artifact = wrap(ModelPayload::Rf(model), width, seed);
        let text = artifact.encode().text;
        let mut bytes = text.into_bytes();
        let position = position_pick % bytes.len();
        bytes[position] ^= 1 << bit;

        // Any corruption either still decodes to the identical artifact
        // (flip landed outside the checked region, e.g. made no textual
        // difference — impossible for XOR, so really: outside payload +
        // header semantics) or fails with a typed error. It never panics.
        match String::from_utf8(bytes) {
            Err(_) => {} // invalid UTF-8 cannot even reach the decoder
            Ok(corrupted) => match ModelArtifact::decode(&corrupted) {
                Ok(decoded) => prop_assert_eq!(decoded, artifact),
                Err(
                    StoreError::Malformed(_)
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::SchemaVersion { .. },
                ) => {}
                Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
            },
        }
    }

    #[test]
    fn wrong_schema_version_is_rejected((rows, width, seed, _n) in shape(), bump in 2u64..100) {
        let (x, y) = dataset(rows, width, seed);
        let model = GbdtConfig { n_estimators: 2, ..Default::default() }
            .fit(&x, &y, seed)
            .unwrap();
        let artifact = wrap(ModelPayload::Gbdt(model), width, seed);
        let text = artifact.encode().text;
        let stale = text.replacen(
            &format!("\"schema_version\":{SCHEMA_VERSION}"),
            &format!("\"schema_version\":{}", SCHEMA_VERSION + bump),
            1,
        );
        match ModelArtifact::decode(&stale) {
            Err(StoreError::SchemaVersion { found, expected }) => {
                prop_assert_eq!(found, SCHEMA_VERSION + bump);
                prop_assert_eq!(expected, SCHEMA_VERSION);
            }
            other => prop_assert!(false, "expected SchemaVersion, got {other:?}"),
        }
    }
}
