//! BTC daily OHLCV and market capitalization from the latent paths.
//!
//! Only the observed window is returned; the technical-indicator warm-up is
//! handled upstream by slicing indicators from an extended series inside
//! the dataset assembly (the suite tolerates `NaN` warm-ups anyway).

use rand::rngs::StdRng;
use rand::SeedableRng;

use c100_timeseries::Date;

use crate::latent::{gaussian, LatentPaths};
use crate::SynthConfig;

/// Bitcoin's circulating supply on a given date, in BTC.
///
/// Piecewise-linear issuance with the May 2020 halving: ~1800 BTC/day
/// before, ~900 BTC/day after (block subsidies of 12.5 and 6.25 BTC at
/// ~144 blocks/day). Anchored at ≈16.08M BTC on 2017-01-01, matching the
/// real chain closely enough for supply-derived metrics.
pub fn btc_supply_on(date: Date) -> f64 {
    let anchor = Date::from_ymd(2017, 1, 1).expect("valid constant");
    let halving = Date::from_ymd(2020, 5, 11).expect("valid constant");
    let base = 16_080_000.0;
    let days = date.days_between(anchor) as f64;
    let days_to_halving = halving.days_between(anchor) as f64;
    if days <= days_to_halving {
        base + 1800.0 * days
    } else {
        base + 1800.0 * days_to_halving + 900.0 * (days - days_to_halving)
    }
}

/// Observed BTC market series (length = observed days).
#[derive(Debug, Clone)]
pub struct BtcMarket {
    /// First observed day.
    pub start: Date,
    /// Daily open.
    pub open: Vec<f64>,
    /// Daily high.
    pub high: Vec<f64>,
    /// Daily low.
    pub low: Vec<f64>,
    /// Daily close.
    pub close: Vec<f64>,
    /// Daily traded dollar volume.
    pub volume: Vec<f64>,
    /// Circulating supply in BTC.
    pub supply: Vec<f64>,
    /// Market capitalization (`close × supply`).
    pub market_cap: Vec<f64>,
    /// Extended close series covering the warm-up too, so long moving
    /// averages are defined from the first observed day.
    pub close_extended: Vec<f64>,
    /// Extended dollar volume (same coverage as `close_extended`).
    pub volume_extended: Vec<f64>,
    /// Extended market cap (supply extrapolated back through the warm-up).
    pub market_cap_extended: Vec<f64>,
    /// Extended daily high.
    pub high_extended: Vec<f64>,
    /// Extended daily low.
    pub low_extended: Vec<f64>,
}

/// One observed BTC day, as a streaming source would emit it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BtcTick {
    /// The day this tick covers.
    pub date: Date,
    /// Daily high.
    pub high: f64,
    /// Daily low.
    pub low: f64,
    /// Daily close.
    pub close: f64,
    /// Daily traded dollar volume.
    pub volume: f64,
}

impl BtcMarket {
    /// Number of observed days.
    pub fn n_days(&self) -> usize {
        self.close.len()
    }

    /// Date of observed day `t`.
    pub fn date_at(&self, t: usize) -> Date {
        assert!(t < self.n_days(), "day {t} out of bounds");
        self.start.add_days(t as i32)
    }

    /// Observed day `t` flattened into a [`BtcTick`] — the replay unit
    /// a streaming ingester consumes one at a time.
    pub fn tick(&self, t: usize) -> BtcTick {
        assert!(t < self.n_days(), "day {t} out of bounds");
        BtcTick {
            date: self.date_at(t),
            high: self.high[t],
            low: self.low[t],
            close: self.close[t],
            volume: self.volume[t],
        }
    }
}

/// Derives the BTC market series from the simulated latent paths.
pub fn simulate_btc(config: &SynthConfig, latents: &LatentPaths) -> BtcMarket {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let n_total = latents.n_total();
    let warmup = latents.warmup;

    let mut close_extended = Vec::with_capacity(n_total);
    let mut volume_extended = Vec::with_capacity(n_total);
    let mut market_cap_extended = Vec::with_capacity(n_total);
    let mut high_extended = Vec::with_capacity(n_total);
    let mut low_extended = Vec::with_capacity(n_total);
    let mut open = Vec::new();
    let mut supply_series = Vec::new();

    for t in 0..n_total {
        let price = latents.log_price[t].exp();
        let date = config.start.add_days(t as i32 - warmup as i32);
        let supply = btc_supply_on(date);
        let cap = price * supply;

        // Turnover rises with momentum and with the day's absolute move.
        let sigma = if latents.regime[t] == 1 {
            crate::latent::SIGMA_TURB
        } else {
            crate::latent::SIGMA_CALM
        };
        let ret = latents.returns[t];
        let turnover = 0.03
            * (0.25 * latents.momentum[t]
                + 1.2 * (ret.abs() / sigma - 0.8)
                + 0.35 * gaussian(&mut rng))
            .exp();
        let volume = cap * turnover;

        close_extended.push(price);
        volume_extended.push(volume);
        market_cap_extended.push(cap);

        let prev_price = if t > 0 {
            latents.log_price[t - 1].exp()
        } else {
            price
        };
        let o = prev_price; // open at yesterday's close (24/7 market)
        let intraday = sigma * (0.4 + 0.3 * gaussian(&mut rng).abs());
        high_extended.push(price.max(o) * (1.0 + intraday));
        low_extended.push(price.min(o) * (1.0 - intraday));
        if t >= warmup {
            open.push(o);
            supply_series.push(supply);
        }
    }

    let close = close_extended[warmup..].to_vec();
    let volume = volume_extended[warmup..].to_vec();
    let market_cap = market_cap_extended[warmup..].to_vec();
    let high = high_extended[warmup..].to_vec();
    let low = low_extended[warmup..].to_vec();

    BtcMarket {
        start: config.start,
        open,
        high,
        low,
        close,
        volume,
        supply: supply_series,
        market_cap,
        close_extended,
        volume_extended,
        market_cap_extended,
        high_extended,
        low_extended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::simulate;

    #[test]
    fn supply_curve_anchors_and_halves() {
        let d2017 = Date::from_ymd(2017, 1, 1).unwrap();
        assert_eq!(btc_supply_on(d2017), 16_080_000.0);
        let before = btc_supply_on(Date::from_ymd(2020, 5, 10).unwrap());
        let at = btc_supply_on(Date::from_ymd(2020, 5, 11).unwrap());
        let after = btc_supply_on(Date::from_ymd(2020, 5, 12).unwrap());
        assert!((at - before - 1800.0).abs() < 1e-6);
        assert!((after - at - 900.0).abs() < 1e-6);
        // Mid-2023 supply near the real ~19.4M.
        let s2023 = btc_supply_on(Date::from_ymd(2023, 6, 30).unwrap());
        assert!((19.0e6..20.0e6).contains(&s2023), "supply {s2023}");
    }

    #[test]
    fn ohlc_is_consistent() {
        let cfg = SynthConfig::small(1);
        let latents = simulate(&cfg);
        let btc = simulate_btc(&cfg, &latents);
        assert_eq!(btc.close.len(), cfg.n_days());
        for t in 0..btc.close.len() {
            assert!(btc.high[t] >= btc.close[t], "day {t}");
            assert!(btc.high[t] >= btc.open[t], "day {t}");
            assert!(btc.low[t] <= btc.close[t], "day {t}");
            assert!(btc.low[t] <= btc.open[t], "day {t}");
            assert!(btc.low[t] > 0.0);
            assert!(btc.volume[t] > 0.0);
        }
    }

    #[test]
    fn market_cap_is_price_times_supply() {
        let cfg = SynthConfig::small(2);
        let latents = simulate(&cfg);
        let btc = simulate_btc(&cfg, &latents);
        for t in (0..btc.close.len()).step_by(97) {
            assert!((btc.market_cap[t] - btc.close[t] * btc.supply[t]).abs() < 1e-3);
        }
    }

    #[test]
    fn extended_series_cover_warmup() {
        let cfg = SynthConfig::small(3);
        let latents = simulate(&cfg);
        let btc = simulate_btc(&cfg, &latents);
        assert_eq!(btc.close_extended.len(), cfg.warmup_days + cfg.n_days());
        assert_eq!(&btc.close_extended[cfg.warmup_days..], &btc.close[..]);
    }

    #[test]
    fn open_equals_previous_close() {
        let cfg = SynthConfig::small(4);
        let latents = simulate(&cfg);
        let btc = simulate_btc(&cfg, &latents);
        for t in 1..50 {
            assert!((btc.open[t] - btc.close[t - 1]).abs() < 1e-9);
        }
    }
}
