//! Gradient-boosted decision trees with XGBoost's second-order objective.
//!
//! For squared-error regression the gradient of sample `i` at iteration `t`
//! is `g_i = ŷ_i − y_i` and the hessian is `h_i = 1`. Each tree is grown by
//! exact greedy search maximizing XGBoost's structure gain
//!
//! ```text
//! gain = ½ [ G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ) ] − γ
//! ```
//!
//! and its leaves output `−η·G/(H+λ)`. Row subsampling (without
//! replacement) and per-tree column subsampling match `subsample` and
//! `colsample_bytree`. Feature importance is total split gain per feature
//! (XGBoost's `importance_type="gain"` up to normalization), which is what
//! the paper's XGB-MDI ranking consumes.
//!
//! Like the CART builder, split search runs either exactly (sort raw
//! values per node per feature) or over a [`BinnedMatrix`] built once per
//! fit ([`SplitMethod::Histogram`], the default — LightGBM's strategy).
//! Histogram nodes accumulate per-bin gradient/count cells; because the
//! candidate column set is fixed per tree, a child's histogram is derived
//! from its parent's by sibling subtraction wherever the child is large
//! enough to own one.

use c100_obs::TraceCtx;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::{check_fit_input, BinnedMatrix, ColumnView, Matrix};
use crate::tree::{
    accumulate_feature, subtract_hist, HistCell, Node, SplitMethod, Tree, LEAF,
    PARALLEL_SPLIT_CELLS,
};
use crate::{Estimator, MlError, Regressor, Result};

/// Hyper-parameters for gradient boosting; names mirror XGBoost.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct GbdtConfig {
    /// Number of boosting rounds (trees).
    pub n_estimators: usize,
    /// Shrinkage η applied to every leaf weight.
    pub learning_rate: f64,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum hessian mass per child (`min_child_weight`). For squared
    /// error this equals a minimum sample count.
    pub min_child_weight: f64,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum gain γ to keep a split.
    pub gamma: f64,
    /// Fraction of rows sampled (without replacement) per tree.
    pub subsample: f64,
    /// Fraction of columns sampled per tree.
    pub colsample_bytree: f64,
    /// Split-search strategy shared by every round (see [`SplitMethod`]).
    pub split_method: SplitMethod,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_estimators: 100,
            learning_rate: 0.3,
            max_depth: 6,
            min_child_weight: 1.0,
            lambda: 1.0,
            gamma: 0.0,
            subsample: 1.0,
            colsample_bytree: 1.0,
            split_method: SplitMethod::default(),
        }
    }
}

impl GbdtConfig {
    fn validate(&self) -> Result<()> {
        if self.n_estimators == 0 {
            return Err(MlError::BadConfig("n_estimators must be >= 1".into()));
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err(MlError::BadConfig("learning_rate must be > 0".into()));
        }
        if self.max_depth == 0 {
            return Err(MlError::BadConfig("max_depth must be >= 1".into()));
        }
        if self.lambda < 0.0 || self.gamma < 0.0 || self.min_child_weight < 0.0 {
            return Err(MlError::BadConfig(
                "lambda/gamma/min_child_weight must be >= 0".into(),
            ));
        }
        for (name, v) in [
            ("subsample", self.subsample),
            ("colsample_bytree", self.colsample_bytree),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(MlError::BadConfig(format!("{name} {v} outside (0, 1]")));
            }
        }
        if let SplitMethod::Histogram { max_bins } = self.split_method {
            if !(2..=65_536).contains(&max_bins) {
                return Err(MlError::BadConfig(format!(
                    "histogram max_bins must be in [2, 65536], got {max_bins}"
                )));
            }
        }
        Ok(())
    }

    /// Fits the boosted ensemble.
    pub fn fit(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<Gbdt> {
        self.fit_traced(x, y, seed, TraceCtx::disabled())
    }

    /// [`GbdtConfig::fit`] with span tracing: a `train_binning` span wraps
    /// the one-time quantile binning (histogram mode) and each boosting
    /// round records a `gbdt_round` span. Produces a model identical to
    /// the untraced fit.
    pub fn fit_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<Gbdt> {
        self.validate()?;
        check_fit_input(x, y)?;
        match self.split_method {
            SplitMethod::Exact => self.fit_rounds(x, y, None, seed, None, trace),
            SplitMethod::Histogram { max_bins } => {
                let binning = trace.span("train_binning");
                let binned = BinnedMatrix::from_matrix(x, max_bins)?;
                drop(binning);
                self.fit_rounds(x, y, Some(&binned), seed, None, trace)
            }
        }
    }

    /// [`GbdtConfig::fit_traced`] against a caller-built [`BinnedMatrix`];
    /// repeated-fit callers (grid search, FRA, importance) bin once and
    /// share. Falls back to a fresh fit when the binning doesn't match
    /// the config or the config is exact.
    pub fn fit_binned_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        binned: &BinnedMatrix,
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<Gbdt> {
        let usable = matches!(
            self.split_method,
            SplitMethod::Histogram { max_bins }
                if binned.max_bins() == max_bins
                    && binned.n_rows() == x.n_rows()
                    && binned.n_features() == x.n_features()
        );
        if !usable {
            return self.fit_traced(x, y, seed, trace);
        }
        self.validate()?;
        check_fit_input(x, y)?;
        self.fit_rounds(x, y, Some(binned), seed, None, trace)
    }

    /// Continues boosting from an existing model: the returned ensemble
    /// keeps `base`'s `base_score` and trees and appends
    /// `self.n_estimators` fresh rounds fitted against the residuals of
    /// `base`'s predictions on `(x, y)`. Online refits warm-start from
    /// the previous artifact this way instead of re-learning the whole
    /// ensemble from scratch.
    ///
    /// `feature_importances` of the result are normalized over the *new*
    /// rounds only — the raw gains behind `base`'s (already normalized)
    /// importances are not recoverable from the fitted model.
    pub fn fit_warm(&self, base: &Gbdt, x: &Matrix, y: &[f64], seed: u64) -> Result<Gbdt> {
        self.fit_warm_traced(base, x, y, seed, TraceCtx::disabled())
    }

    /// [`GbdtConfig::fit_warm`] with span tracing (same spans as
    /// [`GbdtConfig::fit_traced`]).
    pub fn fit_warm_traced(
        &self,
        base: &Gbdt,
        x: &Matrix,
        y: &[f64],
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<Gbdt> {
        self.validate()?;
        check_fit_input(x, y)?;
        if base.n_features != x.n_features() {
            return Err(MlError::BadInput(format!(
                "warm start expects {} features, got {}",
                base.n_features,
                x.n_features()
            )));
        }
        match self.split_method {
            SplitMethod::Exact => self.fit_rounds(x, y, None, seed, Some(base), trace),
            SplitMethod::Histogram { max_bins } => {
                let binning = trace.span("train_binning");
                let binned = BinnedMatrix::from_matrix(x, max_bins)?;
                drop(binning);
                self.fit_rounds(x, y, Some(&binned), seed, Some(base), trace)
            }
        }
    }

    /// The boosting loop; `binned` carries the shared code matrix on the
    /// histogram path, `None` means exact split search. With `base` the
    /// new rounds continue that model: its score and trees seed the
    /// running predictions and the result embeds them.
    fn fit_rounds(
        &self,
        x: &Matrix,
        y: &[f64],
        binned: Option<&BinnedMatrix>,
        seed: u64,
        base: Option<&Gbdt>,
        trace: TraceCtx<'_>,
    ) -> Result<Gbdt> {
        let n = x.n_rows();
        let n_features = x.n_features();
        let base_score = match base {
            Some(b) => b.base_score,
            None => y.iter().sum::<f64>() / n as f64,
        };

        let mut rng = StdRng::seed_from_u64(seed);
        let mut predictions = match base {
            Some(b) => (0..n).map(|r| b.predict_row(x.row(r))).collect(),
            None => vec![base_score; n],
        };
        let mut trees = match base {
            Some(b) => {
                let mut trees = Vec::with_capacity(b.trees.len() + self.n_estimators);
                trees.extend(b.trees.iter().cloned());
                trees
            }
            None => Vec::with_capacity(self.n_estimators),
        };
        let mut gain_importance = vec![0.0; n_features];

        let n_rows_per_tree = ((n as f64 * self.subsample).round() as usize).clamp(1, n);
        let n_cols_per_tree =
            ((n_features as f64 * self.colsample_bytree).round() as usize).clamp(1, n_features);
        let mut all_rows: Vec<usize> = (0..n).collect();
        let mut all_cols: Vec<usize> = (0..n_features).collect();
        let mut partition_buf = Vec::new();
        let mut pool: Vec<Vec<HistCell>> = Vec::new();
        let mut code_scratch: Vec<(u32, f64)> = Vec::new();

        for _ in 0..self.n_estimators {
            let round_span = trace.span("gbdt_round");
            // Squared-error gradients at the current prediction.
            let grad: Vec<f64> = predictions.iter().zip(y).map(|(p, t)| p - t).collect();
            // hess = 1 for every sample; kept implicit (cover = count).

            all_rows.shuffle(&mut rng);
            let rows = &all_rows[..n_rows_per_tree];
            all_cols.shuffle(&mut rng);
            let mut cols: Vec<usize> = all_cols[..n_cols_per_tree].to_vec();
            cols.sort_unstable(); // deterministic split tie-breaking order

            let mut indices = rows.to_vec();
            let nodes = match binned {
                Some(b) => {
                    // Per-tree offsets: the histogram spans only this
                    // tree's candidate columns.
                    let mut offsets = Vec::with_capacity(cols.len() + 1);
                    offsets.push(0usize);
                    for (j, &c) in cols.iter().enumerate() {
                        offsets.push(offsets[j] + b.n_bins(c));
                    }
                    let mut builder = GbdtHistBuilder {
                        binned: b,
                        grad: &grad,
                        config: self,
                        gain_importance: &mut gain_importance,
                        nodes: Vec::new(),
                        cols: &cols,
                        offsets,
                        pool,
                        small_cutoff: (b.max_bins() / 8).max(16),
                        scratch: code_scratch,
                        partition_buf,
                    };
                    builder.grow(&mut indices, 0, None);
                    pool = builder.pool;
                    code_scratch = builder.scratch;
                    partition_buf = builder.partition_buf;
                    builder.nodes
                }
                None => {
                    let mut builder = GbdtTreeBuilder {
                        x,
                        grad: &grad,
                        config: self,
                        gain_importance: &mut gain_importance,
                        nodes: Vec::new(),
                        cols: &cols,
                        scratch: Vec::new(),
                        partition_buf,
                    };
                    builder.grow(&mut indices, 0);
                    partition_buf = builder.partition_buf;
                    builder.nodes
                }
            };
            let tree = Tree { nodes, n_features };
            for (p, row) in predictions.iter_mut().zip(0..n) {
                *p += tree.predict_row(x.row(row));
            }
            trees.push(tree);
            drop(round_span);
        }

        let total: f64 = gain_importance.iter().sum();
        if total > 0.0 {
            for v in &mut gain_importance {
                *v /= total;
            }
        }
        Ok(Gbdt {
            base_score,
            trees,
            feature_importances: gain_importance,
            n_features,
        })
    }
}

impl Estimator for GbdtConfig {
    type Model = Gbdt;

    fn fit_model(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<Gbdt> {
        self.fit(x, y, seed)
    }

    fn fit_model_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<Gbdt> {
        self.fit_traced(x, y, seed, trace)
    }

    fn histogram_bins(&self) -> Option<usize> {
        self.split_method.max_bins()
    }

    fn fit_model_binned_traced(
        &self,
        x: &Matrix,
        y: &[f64],
        binned: Option<&BinnedMatrix>,
        seed: u64,
        trace: TraceCtx<'_>,
    ) -> Result<Gbdt> {
        match binned {
            Some(b) => self.fit_binned_traced(x, y, b, seed, trace),
            None => self.fit_traced(x, y, seed, trace),
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct Gbdt {
    /// Initial prediction (mean target).
    pub base_score: f64,
    /// Boosted trees; leaf values already include the learning rate.
    pub trees: Vec<Tree>,
    /// Normalized total-gain importance per feature.
    pub feature_importances: Vec<f64>,
    /// Width of rows this model was trained on.
    pub n_features: usize,
}

impl Gbdt {
    /// Number of boosting rounds (trees).
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total node count across all trees (a size proxy for persistence).
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.n_nodes()).sum()
    }
}

impl Regressor for Gbdt {
    fn predict_row(&self, row: &[f64]) -> f64 {
        self.base_score + self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }
}

struct GbdtTreeBuilder<'a> {
    x: &'a Matrix,
    grad: &'a [f64],
    config: &'a GbdtConfig,
    gain_importance: &'a mut [f64],
    nodes: Vec<Node>,
    cols: &'a [usize],
    scratch: Vec<(f64, f64)>,
    partition_buf: Vec<usize>,
}

struct GbdtSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
    /// Highest bin code routed left (histogram path; 0 on the exact path,
    /// which partitions by raw threshold instead).
    left_bin: usize,
}

impl<'a> GbdtTreeBuilder<'a> {
    fn grow(&mut self, indices: &mut [usize], depth: usize) -> u32 {
        let lambda = self.config.lambda;
        let g_sum: f64 = indices.iter().map(|&i| self.grad[i]).sum();
        let h_sum = indices.len() as f64; // unit hessians

        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: LEAF,
            right: LEAF,
            value: -self.config.learning_rate * g_sum / (h_sum + lambda),
            cover: h_sum,
            impurity: 0.5 * g_sum * g_sum / (h_sum + lambda),
        });

        if depth >= self.config.max_depth || indices.len() < 2 {
            return node_id;
        }
        let Some(split) = self.best_split(indices, g_sum, h_sum) else {
            return node_id;
        };
        self.gain_importance[split.feature] += split.gain;

        let mut rejected = std::mem::take(&mut self.partition_buf);
        let mid = stable_partition(indices, &mut rejected, |&i| {
            self.x.get(i, split.feature) <= split.threshold
        });
        self.partition_buf = rejected;
        let (left_slice, right_slice) = indices.split_at_mut(mid);
        let left_id = self.grow(left_slice, depth + 1);
        let right_id = self.grow(right_slice, depth + 1);
        let node = &mut self.nodes[node_id as usize];
        node.feature = split.feature as u32;
        node.threshold = split.threshold;
        node.left = left_id;
        node.right = right_id;
        node_id
    }

    /// Exact greedy split search; large nodes scan features in parallel
    /// (boosting is serial across trees, so this is the main parallelism
    /// in GBDT fitting). Tie-breaking matches the serial path exactly.
    fn best_split(&mut self, indices: &[usize], g_sum: f64, h_sum: f64) -> Option<GbdtSplit> {
        let n = indices.len();
        if self.cols.len() * n >= 32_768 {
            use rayon::prelude::*;
            self.cols
                .par_iter()
                .map(|&feature| {
                    let mut scratch = Vec::with_capacity(n);
                    self.scan_feature(indices, feature, g_sum, h_sum, &mut scratch)
                })
                .reduce(|| None, pick_better_gbdt)
        } else {
            let mut best: Option<GbdtSplit> = None;
            let mut scratch = std::mem::take(&mut self.scratch);
            for &feature in self.cols {
                let candidate = self.scan_feature(indices, feature, g_sum, h_sum, &mut scratch);
                best = pick_better_gbdt(best, candidate);
            }
            self.scratch = scratch;
            best
        }
    }

    fn scan_feature(
        &self,
        indices: &[usize],
        feature: usize,
        g_sum: f64,
        h_sum: f64,
        scratch: &mut Vec<(f64, f64)>,
    ) -> Option<GbdtSplit> {
        let lambda = self.config.lambda;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let min_child = self.config.min_child_weight;
        let n = indices.len();
        scratch.clear();
        scratch.extend(
            indices
                .iter()
                .map(|&i| (self.x.get(i, feature), self.grad[i])),
        );
        scratch.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN rejected at fit entry"));

        let mut best: Option<GbdtSplit> = None;
        let mut gl = 0.0;
        for i in 0..n - 1 {
            let (xv, gv) = scratch[i];
            gl += gv;
            let hl = (i + 1) as f64;
            let hr = h_sum - hl;
            if hl < min_child || hr < min_child {
                continue;
            }
            let next_x = scratch[i + 1].0;
            if next_x <= xv {
                continue;
            }
            let gr = g_sum - gl;
            let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                - self.config.gamma;
            if gain > best.as_ref().map_or(1e-12, |b| b.gain) {
                let mut threshold = 0.5 * (xv + next_x);
                if threshold >= next_x {
                    threshold = xv;
                }
                best = Some(GbdtSplit {
                    feature,
                    threshold,
                    gain,
                    left_bin: 0,
                });
            }
        }
        best
    }
}

/// Gradient-histogram tree builder over a [`BinnedMatrix`].
///
/// The candidate column set (`cols`) is fixed for the whole tree, so —
/// unlike the forest's per-node-sampled case — a child's histogram is
/// always derivable from its parent's by sibling subtraction. Cells
/// reuse [`HistCell`]: `n` is the unit-hessian mass, `sum` the gradient
/// sum (`sq` rides along unused). Nodes below `small_cutoff` rows skip
/// histograms and sort `(code, grad)` pairs instead.
struct GbdtHistBuilder<'a> {
    binned: &'a BinnedMatrix,
    grad: &'a [f64],
    config: &'a GbdtConfig,
    gain_importance: &'a mut [f64],
    nodes: Vec<Node>,
    /// Sorted per-tree candidate columns (global feature indices).
    cols: &'a [usize],
    /// Per-candidate start offsets into a flat node histogram:
    /// `cols[j]`'s bins live at `offsets[j]..offsets[j + 1]`.
    offsets: Vec<usize>,
    /// Recycled node-histogram buffers, shared across rounds.
    pool: Vec<Vec<HistCell>>,
    /// Below this row count a node uses the sorted-codes scan. Shares
    /// the forest's tuning: `max_bins / 8` (min 16) measured fastest
    /// (see [`crate::tree::HistBuilder::small_cutoff`]).
    small_cutoff: usize,
    /// Reusable `(code, grad)` buffer for the sorted-codes scan.
    scratch: Vec<(u32, f64)>,
    /// Reusable overflow buffer for the stable partition.
    partition_buf: Vec<usize>,
}

impl<'a> GbdtHistBuilder<'a> {
    /// Grows the subtree over `indices`; `hist` is this node's histogram
    /// when the parent could derive it by subtraction.
    fn grow(&mut self, indices: &mut [usize], depth: usize, hist: Option<Vec<HistCell>>) -> u32 {
        let lambda = self.config.lambda;
        let g_sum: f64 = indices.iter().map(|&i| self.grad[i]).sum();
        let h_sum = indices.len() as f64; // unit hessians

        let node_id = self.nodes.len() as u32;
        self.nodes.push(Node {
            feature: 0,
            threshold: 0.0,
            left: LEAF,
            right: LEAF,
            value: -self.config.learning_rate * g_sum / (h_sum + lambda),
            cover: h_sum,
            impurity: 0.5 * g_sum * g_sum / (h_sum + lambda),
        });

        if depth >= self.config.max_depth || indices.len() < 2 {
            if let Some(h) = hist {
                self.pool.push(h);
            }
            return node_id;
        }

        let node_hist = if indices.len() >= self.small_cutoff {
            Some(match hist {
                Some(h) => h,
                None => {
                    let mut h = self.take_buffer();
                    self.build_full_hist(indices, &mut h);
                    h
                }
            })
        } else {
            if let Some(h) = hist {
                self.pool.push(h);
            }
            None
        };

        let split = self.best_split(indices, g_sum, h_sum, node_hist.as_deref());
        let Some(split) = split else {
            if let Some(h) = node_hist {
                self.pool.push(h);
            }
            return node_id;
        };
        self.gain_importance[split.feature] += split.gain;

        let mid = {
            let col = self.binned.column(split.feature);
            let mut rejected = std::mem::take(&mut self.partition_buf);
            let mid = stable_partition(indices, &mut rejected, |&i| col.get(i) <= split.left_bin);
            self.partition_buf = rejected;
            mid
        };
        let (left_slice, right_slice) = indices.split_at_mut(mid);

        // Sibling subtraction: scan only the smaller child; the larger
        // inherits parent − smaller, in place on the parent buffer.
        // Children at the depth cap become leaves, so skip the work.
        let mut left_hist = None;
        let mut right_hist = None;
        if let Some(mut parent) = node_hist {
            let left_is_small = left_slice.len() <= right_slice.len();
            let (small_slice, large_n) = if left_is_small {
                (&*left_slice, right_slice.len())
            } else {
                (&*right_slice, left_slice.len())
            };
            if depth + 1 < self.config.max_depth && large_n >= self.small_cutoff {
                let mut small = self.take_buffer();
                self.build_full_hist(small_slice, &mut small);
                subtract_hist(&mut parent, &small);
                let small = if small_slice.len() >= self.small_cutoff {
                    Some(small)
                } else {
                    self.pool.push(small);
                    None
                };
                if left_is_small {
                    left_hist = small;
                    right_hist = Some(parent);
                } else {
                    left_hist = Some(parent);
                    right_hist = small;
                }
            } else {
                self.pool.push(parent);
            }
        }

        let left_id = self.grow(left_slice, depth + 1, left_hist);
        let right_id = self.grow(right_slice, depth + 1, right_hist);
        let node = &mut self.nodes[node_id as usize];
        node.feature = split.feature as u32;
        node.threshold = split.threshold;
        node.left = left_id;
        node.right = right_id;
        node_id
    }

    /// Best candidate over `cols`, from the node histogram when one
    /// exists, else the sorted-codes scan.
    fn best_split(
        &mut self,
        indices: &[usize],
        g_sum: f64,
        h_sum: f64,
        hist: Option<&[HistCell]>,
    ) -> Option<GbdtSplit> {
        match hist {
            Some(cells) => {
                let mut best = None;
                for (j, &feature) in self.cols.iter().enumerate() {
                    let feature_cells = &cells[self.offsets[j]..self.offsets[j + 1]];
                    best = pick_better_gbdt(
                        best,
                        self.scan_hist(feature, feature_cells, g_sum, h_sum),
                    );
                }
                best
            }
            None => {
                let mut scratch = std::mem::take(&mut self.scratch);
                let mut best = None;
                for &feature in self.cols {
                    best = pick_better_gbdt(
                        best,
                        self.scan_sorted(feature, indices, g_sum, h_sum, &mut scratch),
                    );
                }
                self.scratch = scratch;
                best
            }
        }
    }

    /// Scans one candidate's histogram; boundaries only between bins
    /// non-empty in this node (see the CART scan for why).
    fn scan_hist(
        &self,
        feature: usize,
        cells: &[HistCell],
        g_sum: f64,
        h_sum: f64,
    ) -> Option<GbdtSplit> {
        let lambda = self.config.lambda;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let min_child = self.config.min_child_weight;
        let mut best: Option<GbdtSplit> = None;
        let mut gl = 0.0;
        let mut hl = 0.0;
        let mut prev: Option<usize> = None;
        for (b, cell) in cells.iter().enumerate() {
            if cell.n == 0 {
                continue;
            }
            if let Some(pb) = prev {
                let hr = h_sum - hl;
                if hl >= min_child && hr >= min_child {
                    let gr = g_sum - gl;
                    let gain = 0.5
                        * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                        - self.config.gamma;
                    if gain > best.as_ref().map_or(1e-12, |s| s.gain) {
                        best = Some(GbdtSplit {
                            feature,
                            threshold: self.binned.threshold_between(feature, pb, b),
                            gain,
                            left_bin: pb,
                        });
                    }
                }
            }
            gl += cell.sum;
            hl += cell.n as f64;
            prev = Some(b);
        }
        best
    }

    /// Small-node scan over sorted `(code, grad)` pairs.
    fn scan_sorted(
        &self,
        feature: usize,
        indices: &[usize],
        g_sum: f64,
        h_sum: f64,
        scratch: &mut Vec<(u32, f64)>,
    ) -> Option<GbdtSplit> {
        let lambda = self.config.lambda;
        let parent_score = g_sum * g_sum / (h_sum + lambda);
        let min_child = self.config.min_child_weight;
        let n = indices.len();
        scratch.clear();
        match self.binned.column(feature) {
            ColumnView::U8(s) => {
                scratch.extend(indices.iter().map(|&i| (s[i] as u32, self.grad[i])));
            }
            ColumnView::U16(s) => {
                scratch.extend(indices.iter().map(|&i| (s[i] as u32, self.grad[i])));
            }
        }
        scratch.sort_unstable_by_key(|p| p.0);

        let mut best: Option<GbdtSplit> = None;
        let mut gl = 0.0;
        for i in 0..n - 1 {
            let (code, gv) = scratch[i];
            gl += gv;
            let hl = (i + 1) as f64;
            let hr = h_sum - hl;
            if hl < min_child || hr < min_child {
                continue;
            }
            let next_code = scratch[i + 1].0;
            if next_code <= code {
                continue;
            }
            let gr = g_sum - gl;
            let gain = 0.5 * (gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score)
                - self.config.gamma;
            if gain > best.as_ref().map_or(1e-12, |s| s.gain) {
                best = Some(GbdtSplit {
                    feature,
                    threshold: self.binned.threshold_between(
                        feature,
                        code as usize,
                        next_code as usize,
                    ),
                    gain,
                    left_bin: code as usize,
                });
            }
        }
        best
    }

    /// A zeroed histogram buffer sized for this tree's candidate set;
    /// pooled buffers may come from a tree with different columns, so
    /// resize as well as reset.
    fn take_buffer(&mut self) -> Vec<HistCell> {
        let total = *self.offsets.last().unwrap();
        match self.pool.pop() {
            Some(mut h) => {
                h.clear();
                h.resize(total, HistCell::default());
                h
            }
            None => vec![HistCell::default(); total],
        }
    }

    /// Accumulates every candidate column's histogram for `indices`,
    /// rayon-fanned across columns for large nodes.
    fn build_full_hist(&self, indices: &[usize], cells: &mut [HistCell]) {
        if self.cols.len() * indices.len() >= PARALLEL_SPLIT_CELLS {
            use rayon::prelude::*;
            let mut slices = Vec::with_capacity(self.cols.len());
            let mut rest = cells;
            for (j, &feature) in self.cols.iter().enumerate() {
                let width = self.offsets[j + 1] - self.offsets[j];
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(width);
                slices.push((feature, head));
                rest = tail;
            }
            slices.into_par_iter().for_each(|(feature, feature_cells)| {
                accumulate_feature(
                    self.binned.column(feature),
                    indices,
                    self.grad,
                    feature_cells,
                );
            });
        } else {
            for (j, &feature) in self.cols.iter().enumerate() {
                accumulate_feature(
                    self.binned.column(feature),
                    indices,
                    self.grad,
                    &mut cells[self.offsets[j]..self.offsets[j + 1]],
                );
            }
        }
    }
}

/// Higher gain wins; exact ties break toward the lower feature index so
/// parallel and serial scans agree.
fn pick_better_gbdt(a: Option<GbdtSplit>, b: Option<GbdtSplit>) -> Option<GbdtSplit> {
    match (a, b) {
        (None, x) => x,
        (x, None) => x,
        (Some(x), Some(y)) => {
            if y.gain > x.gain || (y.gain == x.gain && y.feature < x.feature) {
                Some(y)
            } else {
                Some(x)
            }
        }
    }
}

/// Stable partition: elements satisfying `pred` move to the front of the
/// slice (order within each side preserved, so tree growth stays
/// deterministic) and the boundary index is returned. Kept elements are
/// compacted in place in one pass; only the rejected side goes through
/// `rejected`, a caller-owned scratch buffer reused across calls so the
/// per-node partition stops allocating once the buffer has grown.
fn stable_partition<T: Copy>(
    slice: &mut [T],
    rejected: &mut Vec<T>,
    pred: impl Fn(&T) -> bool,
) -> usize {
    rejected.clear();
    let mut write = 0;
    for read in 0..slice.len() {
        let item = slice[read];
        if pred(&item) {
            slice[write] = item;
            write += 1;
        } else {
            rejected.push(item);
        }
    }
    slice[write..].copy_from_slice(rejected);
    write
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;
    use rand::Rng;

    /// Deterministic uniform sample in `[lo, hi)`.
    fn uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * rng.gen::<f64>()
    }

    fn sine_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = uniform(&mut rng, 0.0, 6.0);
            let b = uniform(&mut rng, 0.0, 1.0); // noise feature
            rows.push(vec![a, b]);
            y.push(a.sin() * 3.0 + a);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn stable_partition_preserves_order_and_reuses_buffer() {
        let mut buf = Vec::new();
        let mut v = vec![5, 1, 4, 2, 3];
        let mid = stable_partition(&mut v, &mut buf, |&x| x % 2 == 0);
        assert_eq!(mid, 2);
        assert_eq!(v, vec![4, 2, 5, 1, 3]);
        // Same buffer serves the next call without reallocation.
        let cap = buf.capacity();
        let mut w = vec![9, 8, 7];
        let mid = stable_partition(&mut w, &mut buf, |&x| x < 8);
        assert_eq!(mid, 1);
        assert_eq!(w, vec![7, 9, 8]);
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = sine_data(400, 1);
        let (xt, yt) = sine_data(150, 2);
        let model = GbdtConfig {
            n_estimators: 80,
            learning_rate: 0.2,
            max_depth: 4,
            ..Default::default()
        }
        .fit(&x, &y, 3)
        .unwrap();
        let pred = model.predict(&xt);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let baseline = mse(&yt, &vec![mean; yt.len()]);
        let model_mse = mse(&yt, &pred);
        assert!(
            model_mse < baseline * 0.05,
            "gbdt {model_mse} vs {baseline}"
        );
    }

    #[test]
    fn first_tree_reduces_training_error() {
        let (x, y) = sine_data(200, 5);
        let one = GbdtConfig {
            n_estimators: 1,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let many = GbdtConfig {
            n_estimators: 30,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let e1 = mse(&y, &one.predict(&x));
        let e30 = mse(&y, &many.predict(&x));
        let base = mse(&y, &vec![one.base_score; y.len()]);
        assert!(e1 < base);
        assert!(e30 < e1);
    }

    #[test]
    fn warm_start_extends_and_improves() {
        let (x, y) = sine_data(300, 7);
        let cold = GbdtConfig {
            n_estimators: 10,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let warm = GbdtConfig {
            n_estimators: 15,
            ..Default::default()
        }
        .fit_warm(&cold, &x, &y, 1)
        .unwrap();
        assert_eq!(warm.n_trees(), 25);
        assert_eq!(warm.base_score, cold.base_score);
        // The base trees are embedded untouched.
        assert_eq!(&warm.trees[..10], &cold.trees[..]);
        let before = mse(&y, &cold.predict(&x));
        let after = mse(&y, &warm.predict(&x));
        assert!(after < before, "warm {after} vs cold {before}");
    }

    #[test]
    fn warm_start_matches_resumed_residual_fit() {
        // Warm-starting must behave exactly like continuing the boosting
        // loop: round k+1 fits the residuals the embedded base leaves
        // behind, so base output + new-round contributions reproduces the
        // warm model's output (up to summation order).
        let (x, y) = sine_data(200, 11);
        let base = GbdtConfig {
            n_estimators: 5,
            ..Default::default()
        }
        .fit(&x, &y, 3)
        .unwrap();
        let warm = GbdtConfig {
            n_estimators: 4,
            ..Default::default()
        }
        .fit_warm(&base, &x, &y, 4)
        .unwrap();
        for r in 0..x.n_rows() {
            let row = x.row(r);
            let manual = base.predict_row(row)
                + warm.trees[5..]
                    .iter()
                    .map(|t| t.predict_row(row))
                    .sum::<f64>();
            let got = warm.predict_row(row);
            assert!((manual - got).abs() <= 1e-12 * manual.abs().max(1.0));
        }
    }

    #[test]
    fn warm_start_rejects_feature_mismatch() {
        let (x, y) = sine_data(100, 17);
        let base = GbdtConfig {
            n_estimators: 2,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let narrow =
            Matrix::from_rows(&(0..50).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
        let yn: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(GbdtConfig::default()
            .fit_warm(&base, &narrow, &yn, 0)
            .is_err());
    }

    #[test]
    fn base_score_is_target_mean() {
        let (x, y) = sine_data(100, 9);
        let model = GbdtConfig::default().fit(&x, &y, 0).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((model.base_score - mean).abs() < 1e-12);
    }

    #[test]
    fn gain_importance_prefers_signal() {
        let (x, y) = sine_data(300, 13);
        let model = GbdtConfig {
            n_estimators: 30,
            max_depth: 3,
            ..Default::default()
        }
        .fit(&x, &y, 1)
        .unwrap();
        assert!(model.feature_importances[0] > 0.95);
        assert!((model.feature_importances.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_prunes_weak_splits() {
        let (x, y) = sine_data(200, 17);
        let loose = GbdtConfig {
            n_estimators: 5,
            gamma: 0.0,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let strict = GbdtConfig {
            n_estimators: 5,
            gamma: 1e6,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let leaves = |m: &Gbdt| m.trees.iter().map(|t| t.n_leaves()).sum::<usize>();
        assert!(leaves(&strict) < leaves(&loose));
        // With an impossible gamma no tree splits at all.
        assert_eq!(leaves(&strict), 5);
    }

    #[test]
    fn subsampling_is_deterministic_under_seed() {
        let (x, y) = sine_data(150, 21);
        let cfg = GbdtConfig {
            n_estimators: 10,
            subsample: 0.7,
            colsample_bytree: 0.5,
            ..Default::default()
        };
        let a = cfg.fit(&x, &y, 4).unwrap();
        let b = cfg.fit(&x, &y, 4).unwrap();
        assert_eq!(a.predict_row(&[2.0, 0.5]), b.predict_row(&[2.0, 0.5]));
    }

    #[test]
    fn validates_config_ranges() {
        let (x, y) = sine_data(30, 0);
        for cfg in [
            GbdtConfig {
                n_estimators: 0,
                ..Default::default()
            },
            GbdtConfig {
                learning_rate: 0.0,
                ..Default::default()
            },
            GbdtConfig {
                max_depth: 0,
                ..Default::default()
            },
            GbdtConfig {
                lambda: -1.0,
                ..Default::default()
            },
            GbdtConfig {
                subsample: 0.0,
                ..Default::default()
            },
            GbdtConfig {
                colsample_bytree: 1.5,
                ..Default::default()
            },
        ] {
            assert!(cfg.fit(&x, &y, 0).is_err(), "{cfg:?} should be rejected");
        }
    }

    #[test]
    fn histogram_matches_exact_on_first_round() {
        // Integer targets over a power-of-two row count: the base score
        // (mean) and round-1 gradients are exact dyadic rationals, so
        // gradient sums are associativity-free and the two builders must
        // emit identical trees and gains.
        let mut rng = StdRng::seed_from_u64(7);
        let rows: Vec<Vec<f64>> = (0..256)
            .map(|_| (0..3).map(|_| (rng.gen::<u32>() % 50) as f64).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| r[0] * 3.0 - r[1] + if i % 2 == 0 { 10.0 } else { -10.0 })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let base = GbdtConfig {
            n_estimators: 1,
            max_depth: 5,
            ..Default::default()
        };
        let exact = GbdtConfig {
            split_method: SplitMethod::Exact,
            ..base.clone()
        };
        let hist = GbdtConfig {
            split_method: SplitMethod::Histogram { max_bins: 256 },
            ..base
        };
        let a = exact.fit(&x, &y, 0).unwrap();
        let b = hist.fit(&x, &y, 0).unwrap();
        assert_eq!(a.trees[0].nodes, b.trees[0].nodes);
        assert_eq!(a.feature_importances, b.feature_importances);
    }

    #[test]
    fn histogram_stays_statistically_close_over_many_rounds() {
        // Later rounds carry non-integer gradients whose summation order
        // differs between the two scans, and 64 bins compress 400
        // distinct values; with noisy targets (the realistic regime —
        // held-out error dominated by irreducible noise, not split
        // resolution) the two paths must land within a few percent.
        let mut rng = StdRng::seed_from_u64(1);
        let noisy = |rng: &mut StdRng, n: usize| {
            let mut rows = Vec::with_capacity(n);
            let mut y = Vec::with_capacity(n);
            for _ in 0..n {
                let a = uniform(rng, 0.0, 6.0);
                let b = uniform(rng, 0.0, 1.0);
                rows.push(vec![a, b]);
                y.push(a.sin() * 3.0 + a + uniform(rng, -1.0, 1.0));
            }
            (Matrix::from_rows(&rows).unwrap(), y)
        };
        let (x, y) = noisy(&mut rng, 400);
        let (xt, yt) = noisy(&mut rng, 150);
        let base = GbdtConfig {
            n_estimators: 60,
            learning_rate: 0.2,
            max_depth: 4,
            ..Default::default()
        };
        let exact = GbdtConfig {
            split_method: SplitMethod::Exact,
            ..base.clone()
        };
        let hist = GbdtConfig {
            split_method: SplitMethod::Histogram { max_bins: 64 },
            ..base
        };
        let me = mse(&yt, &exact.fit(&x, &y, 3).unwrap().predict(&xt));
        let mh = mse(&yt, &hist.fit(&x, &y, 3).unwrap().predict(&xt));
        assert!(
            (mh - me).abs() <= 0.10 * me.max(mh) + 1e-9,
            "hist {mh} vs exact {me}"
        );
    }

    #[test]
    fn traced_fit_is_identical_and_records_round_spans() {
        let (x, y) = sine_data(120, 41);
        let cfg = GbdtConfig {
            n_estimators: 6,
            max_depth: 3,
            ..Default::default()
        };
        let plain = cfg.fit(&x, &y, 2).unwrap();
        let tracer = c100_obs::Tracer::new();
        let root = tracer.span("test", "fit");
        let traced = cfg.fit_traced(&x, &y, 2, root.ctx()).unwrap();
        drop(root);
        assert_eq!(plain, traced);
        let spans = tracer.snapshot();
        assert_eq!(spans.iter().filter(|s| s.name == "gbdt_round").count(), 6);
        assert_eq!(
            spans.iter().filter(|s| s.name == "train_binning").count(),
            1
        );
    }

    #[test]
    fn shared_binning_fit_matches_self_binned_fit() {
        let (x, y) = sine_data(150, 51);
        let cfg = GbdtConfig {
            n_estimators: 8,
            max_depth: 4,
            split_method: SplitMethod::Histogram { max_bins: 128 },
            ..Default::default()
        };
        let binned = BinnedMatrix::from_matrix(&x, 128).unwrap();
        let a = cfg.fit(&x, &y, 9).unwrap();
        let b = cfg
            .fit_binned_traced(&x, &y, &binned, 9, TraceCtx::disabled())
            .unwrap();
        assert_eq!(a, b);
        // A mismatched budget falls back to a fresh (still identical) fit.
        let wrong = BinnedMatrix::from_matrix(&x, 32).unwrap();
        let c = cfg
            .fit_binned_traced(&x, &y, &wrong, 9, TraceCtx::disabled())
            .unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let (x, y) = sine_data(100, 33);
        let small = GbdtConfig {
            n_estimators: 1,
            lambda: 0.0,
            learning_rate: 1.0,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let large = GbdtConfig {
            n_estimators: 1,
            lambda: 100.0,
            learning_rate: 1.0,
            ..Default::default()
        }
        .fit(&x, &y, 0)
        .unwrap();
        let max_abs = |m: &Gbdt| {
            m.trees[0]
                .nodes
                .iter()
                .filter(|n| n.is_leaf())
                .map(|n| n.value.abs())
                .fold(0.0f64, f64::max)
        };
        assert!(max_abs(&large) < max_abs(&small));
    }
}
