//! Whole-harness replays against a toy keep-alive server: closed-loop
//! and open-loop runs complete the full plan, classify outcomes
//! exactly, and publish latency into the shared metrics registry.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use c100_load::{run, LoadConfig, LoadPlan, Mode, RequestTemplate, Slo};
use c100_obs::MetricsRegistry;

/// A tiny keep-alive HTTP server: 200 for most paths, 503 for `/shed`,
/// `Connection: close` honoured when the client sends it. One thread
/// per connection — it's a test fixture, not a contender.
fn toy_server() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            std::thread::spawn(move || serve_connection(stream));
        }
    });
    addr
}

fn serve_connection(mut stream: TcpStream) {
    stream.set_nodelay(true).ok();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Accumulate until a full head is buffered.
        let head_end = loop {
            if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let path = head.split(' ').nth(1).unwrap_or("/").to_string();
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .unwrap_or(0);
        while buf.len() < head_end + 4 + content_length {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        }
        buf.drain(..head_end + 4 + content_length);
        let (status, body) = if path == "/shed" {
            ("503 Service Unavailable", "{\"error\":\"shed\"}")
        } else {
            ("200 OK", "{\"ok\":true}")
        };
        let response = format!(
            "HTTP/1.1 {status}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        if stream.write_all(response.as_bytes()).is_err() {
            return;
        }
    }
}

#[test]
fn closed_loop_replays_the_whole_plan_with_exact_outcome_counts() {
    let addr = toy_server();
    let templates = vec![
        RequestTemplate::get("/healthz"),
        RequestTemplate::post("/predict", "{\"rows\":[[1,2,3]]}"),
        RequestTemplate::get("/shed"),
    ];
    let plan = LoadPlan::replay(&templates, 300, 42);
    let expected_sheds = (0..plan.len())
        .filter(|&i| plan.template_of(i) == 2)
        .count() as u64;
    let registry = Arc::new(MetricsRegistry::new());
    let config = LoadConfig {
        addr,
        mode: Mode::Closed { connections: 4 },
        seed: 42,
        timeout: Duration::from_secs(5),
    };
    let report = run(&plan, &config, &registry);

    assert_eq!(report.requests, 300);
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.shed, expected_sheds);
    assert_eq!(report.ok, 300 - expected_sheds);
    assert_eq!(
        report.statuses.get(&503).copied().unwrap_or(0),
        expected_sheds
    );
    assert!(report.throughput_rps > 0.0);

    // Latencies landed in the shared registry under the load namespace.
    let snap = registry.snapshot();
    assert_eq!(snap.histograms["load.request_micros"].count, 300);
    assert_eq!(snap.counters["load.requests_total"], 300);
    assert_eq!(snap.counters["load.shed_total"], expected_sheds);
    assert_eq!(snap.counters["load.failed_total"], 0);

    // A generous SLO passes; sheds alone can't fail the error-rate gate.
    let slo = Slo {
        p99_micros: Some(60_000_000.0),
        max_error_rate: Some(0.0),
    };
    assert!(slo.passed(&report), "{:?}", slo.violations(&report));
}

#[test]
fn open_loop_fires_on_schedule_and_measures_from_the_slot() {
    let addr = toy_server();
    let plan = LoadPlan::replay(&[RequestTemplate::get("/healthz")], 120, 7);
    let registry = Arc::new(MetricsRegistry::new());
    let config = LoadConfig {
        addr,
        mode: Mode::Open {
            rate_per_sec: 400.0,
            connections: 4,
        },
        seed: 7,
        timeout: Duration::from_secs(5),
    };
    let report = run(&plan, &config, &registry);
    assert_eq!(report.requests, 120);
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.mode, "open");
    // 120 requests at 400/s occupy ~0.3s of schedule; the run can't
    // finish meaningfully faster than its own schedule.
    assert!(
        report.elapsed_secs >= 0.25,
        "run outpaced its schedule: {:.3}s",
        report.elapsed_secs
    );
}

#[test]
fn a_dead_server_yields_failed_requests_not_a_hang() {
    // Bind-then-drop guarantees nothing listens on the port.
    let addr = TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap();
    let plan = LoadPlan::replay(&[RequestTemplate::get("/healthz")], 3, 1);
    let registry = Arc::new(MetricsRegistry::new());
    let config = LoadConfig {
        addr,
        mode: Mode::Closed { connections: 2 },
        seed: 1,
        timeout: Duration::from_millis(500),
    };
    let report = run(&plan, &config, &registry);
    assert_eq!(report.requests, 3);
    assert_eq!(report.failed, 3);
    assert_eq!(report.ok, 0);
    let slo = Slo {
        p99_micros: None,
        max_error_rate: Some(0.01),
    };
    assert!(!slo.passed(&report));
}
