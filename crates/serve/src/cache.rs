//! Shared model cache over an [`ArtifactStore`].
//!
//! The cache keys decoded [`BatchPredictor`]s by artifact id. Ids are
//! content addresses, so a cached predictor can never be stale — a
//! changed model is a *new* id — and the cache needs no invalidation,
//! only growth. [`reload`](ModelCache::reload) re-reads the store
//! manifest so ids exported by another process become resolvable;
//! requests already holding an `Arc<BatchPredictor>` are untouched by a
//! reload, which is what makes `POST /reload` a zero-downtime hot swap.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

use c100_store::{ArtifactStore, BatchPredictor, ManifestEntry, StoreError};

/// Thread-safe map from artifact id to a ready-to-serve predictor.
pub struct ModelCache {
    /// The store is consulted for manifest lookups and artifact loads;
    /// a `Mutex` suffices because hits never touch it.
    store: Mutex<ArtifactStore>,
    predictors: RwLock<HashMap<String, Arc<BatchPredictor>>>,
}

impl ModelCache {
    /// Opens the artifact store under `root` and an empty cache.
    pub fn open(root: &Path) -> Result<ModelCache, StoreError> {
        Ok(ModelCache {
            store: Mutex::new(ArtifactStore::open(root)?),
            predictors: RwLock::new(HashMap::new()),
        })
    }

    /// All manifest entries currently visible, in save order.
    pub fn entries(&self) -> Vec<ManifestEntry> {
        self.store.lock().expect("store poisoned").list().to_vec()
    }

    /// Manifest entry for an exact artifact id.
    pub fn entry(&self, id: &str) -> Option<ManifestEntry> {
        self.store
            .lock()
            .expect("store poisoned")
            .list()
            .iter()
            .find(|e| e.id == id)
            .cloned()
    }

    /// Latest entry for a scenario, optionally narrowed to a model
    /// family (`rf` / `gbdt`).
    pub fn resolve_latest(&self, scenario: &str, family: Option<&str>) -> Option<ManifestEntry> {
        let store = self.store.lock().expect("store poisoned");
        match family {
            Some(f) => store.latest_family(scenario, f).cloned(),
            None => store.latest(scenario).cloned(),
        }
    }

    /// The predictor for an artifact id, loading and caching it on
    /// first use. Concurrent first uses may both load; the artifact is
    /// immutable, so either copy is equally correct and one wins the
    /// insert.
    pub fn predictor(&self, id: &str) -> Result<Arc<BatchPredictor>, StoreError> {
        if let Some(p) = self
            .predictors
            .read()
            .expect("predictor cache poisoned")
            .get(id)
        {
            return Ok(p.clone());
        }
        let artifact = self.store.lock().expect("store poisoned").load(id)?;
        let predictor = Arc::new(BatchPredictor::new(artifact));
        let mut cache = self.predictors.write().expect("predictor cache poisoned");
        Ok(cache.entry(id.to_string()).or_insert(predictor).clone())
    }

    /// Re-reads the manifest from disk; returns ids that just became
    /// visible. Existing cached predictors are untouched.
    pub fn reload(&self) -> Result<Vec<String>, StoreError> {
        self.store.lock().expect("store poisoned").reload()
    }

    /// Number of predictors currently decoded and cached.
    pub fn cached(&self) -> usize {
        self.predictors
            .read()
            .expect("predictor cache poisoned")
            .len()
    }
}
