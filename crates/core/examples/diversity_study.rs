//! Data-source-diversity study: quantify how much each single-category
//! model loses against the diverse feature vector (the paper's Table 6
//! experiment for one scenario).
//!
//! ```text
//! cargo run --release -p c100-core --example diversity_study
//! ```

use c100_core::diversity::diversity_experiment;
use c100_core::pipeline::{run_scenario, ScenarioSpec};
use c100_core::profile::Profile;
use c100_core::report::{pct, TextTable};
use c100_core::scenario::Period;

fn main() {
    let data = c100_synth::generate(&c100_synth::SynthConfig::small(11));
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 30,
    };
    println!("running pipeline for scenario {}...", spec.id());
    let result = run_scenario(&data, &spec, &Profile::fast()).expect("pipeline");

    println!(
        "diverse final vector: {} features; evaluating against single categories...\n",
        result.final_features.len()
    );
    let diversity = diversity_experiment(
        &result.scenario,
        &result.final_features,
        &result.tuned_rf,
        99,
    )
    .expect("diversity experiment");

    let mut table = TextTable::new(&["Category", "#features", "single MSE", "improvement"]);
    for c in &diversity.per_category {
        table.row(&[
            c.category.clone(),
            c.n_features.to_string(),
            format!("{:.3e}", c.single_mse),
            pct(c.improvement_pct),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\ndiverse model MSE: {:.3e} | mean improvement over categories: {}",
        diversity.diverse_mse,
        pct(diversity.mean_improvement())
    );
    println!(
        "(the paper's Table 6: categories without price-level information — \
         sentiment, macro — benefit the most from diversity)"
    );
}
