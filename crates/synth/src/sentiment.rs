//! The Sentiment and Interest Metrics inventory (~40 metrics).
//!
//! Social and search metrics observe the fast **momentum** factor with
//! heavy noise — they help predict immediate market reactions and little
//! else, which is exactly the short-horizon profile the paper reports for
//! this category. Monthly Google-Trends series additionally track the
//! price level loosely (interest follows price), giving them the modest
//! 90-day relevance the paper notes for `gt_*_monthly`.
//!
//! Start dates mirror reality: the fear-and-greed index begins 2018-02,
//! the LunarCrush-style social metrics 2018-06; both therefore only enter
//! the paper's 2019 scenario set.

use c100_timeseries::Date;

use crate::spec::{Defect, MetricSpec, Sampling};
use crate::{DataCategory, SynthConfig};

const CAT: DataCategory = DataCategory::Sentiment;

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::from_ymd(y, m, day).expect("valid constant date")
}

/// Builds the sentiment/interest spec list.
pub fn specs(config: &SynthConfig) -> Vec<MetricSpec> {
    let start = config.start;
    let fear_greed_start = d(2018, 2, 1).max(start);
    let lunar_start = d(2018, 6, 1).max(start);
    let mut specs: Vec<MetricSpec> = Vec::with_capacity(42);

    // --- Google Trends (monthly search volume) — available from 2017 -----
    for term in [
        "Bitcoin",
        "Ethereum",
        "Crypto",
        "Cryptocurrency",
        "Blockchain",
        "BuyBitcoin",
    ] {
        specs.push(
            MetricSpec::log_linear(
                format!("gt_{term}_monthly"),
                CAT,
                start,
                11.0,
                (0.15, 0.05, 0.10, 0.40, 0.15),
                0,
                0.35,
            )
            .with_sampling(Sampling::MonthlyStep),
        );
    }

    // --- Social volume and engagement — available from 2017 ---------------
    for (name, momentum, noise) in [
        ("tweet_volume", 0.60, 0.26),
        ("reddit_posts", 0.55, 0.30),
        ("reddit_comments", 0.55, 0.30),
        ("reddit_subscribers", 0.10, 0.10),
        ("news_volume", 0.50, 0.28),
        ("social_engagement", 0.55, 0.26),
    ] {
        // Subscribers are cumulative-ish: adoption heavy; the rest are
        // momentum-chasing bursts.
        let adoption = if name == "reddit_subscribers" {
            0.8
        } else {
            0.25
        };
        specs.push(MetricSpec::log_linear(
            name,
            CAT,
            start,
            10.0,
            (adoption, 0.05, 0.15, momentum, 0.05),
            0,
            noise,
        ));
    }
    for (name, bias) in [
        ("social_sentiment_positive", 0.4),
        ("social_sentiment_negative", -0.4),
        ("social_sentiment_neutral", 0.0),
    ] {
        let sign = if name.contains("negative") { -1.0 } else { 1.0 };
        specs.push(MetricSpec::bounded(
            name,
            CAT,
            start,
            (0.0, 1.0),
            (0.10 * sign, 0.20 * sign, 0.80 * sign),
            bias,
            0.50,
        ));
    }

    // --- Fear & Greed index — from February 2018 --------------------------
    specs.push(MetricSpec::bounded(
        "fear_greed_index",
        CAT,
        fear_greed_start,
        (0.0, 100.0),
        (0.35, 0.45, 1.10),
        0.0,
        0.45,
    ));
    specs.push(MetricSpec::bounded(
        "fear_greed_ma7",
        CAT,
        fear_greed_start,
        (0.0, 100.0),
        (0.40, 0.55, 0.80),
        0.0,
        0.20,
    ));

    // --- LunarCrush-style social intelligence — from June 2018 ------------
    for (name, loads, noise) in [
        ("lc_galaxy_score", (0.20, 0.35, 0.70), 0.40),
        ("lc_alt_rank", (-0.15, -0.30, -0.60), 0.45),
        ("lc_social_volume", (0.05, 0.20, 0.60), 0.45),
        ("lc_social_contributors", (0.05, 0.18, 0.55), 0.45),
        ("lc_social_dominance", (0.10, 0.15, 0.45), 0.40),
        ("lc_average_sentiment", (0.12, 0.25, 0.75), 0.50),
        ("lc_bullish_posts", (0.10, 0.25, 0.75), 0.50),
        ("lc_bearish_posts", (-0.10, -0.25, -0.75), 0.50),
        ("lc_spam_volume", (0.0, 0.05, 0.30), 0.60),
        ("lc_news_articles", (0.05, 0.12, 0.45), 0.50),
        ("lc_influencer_count", (0.08, 0.12, 0.40), 0.45),
        ("lc_url_shares", (0.05, 0.15, 0.55), 0.50),
        ("lc_youtube_videos", (0.05, 0.10, 0.40), 0.55),
        ("lc_medium_posts", (0.04, 0.10, 0.35), 0.55),
        ("lc_github_commits", (0.10, 0.05, 0.05), 0.35),
        ("lc_search_dominance", (0.10, 0.18, 0.50), 0.45),
        ("lc_social_score", (0.15, 0.25, 0.65), 0.40),
        ("lc_market_dominance_social", (0.12, 0.15, 0.35), 0.40),
        ("lc_tweet_sentiment_net", (0.10, 0.28, 0.80), 0.50),
        ("lc_volatility_chatter", (-0.05, 0.10, 0.55), 0.55),
    ] {
        specs.push(MetricSpec::bounded(
            name,
            CAT,
            lunar_start,
            (0.0, 100.0),
            loads,
            0.0,
            noise,
        ));
    }
    // Two deliberately broken feeds for the cleaning phase.
    specs.push(
        MetricSpec::bounded(
            "lc_reach_estimate",
            CAT,
            lunar_start,
            (0.0, 100.0),
            (0.05, 0.10, 0.40),
            0.0,
            0.5,
        )
        .with_defect(Defect::FlatAfter(d(2020, 2, 1))),
    );
    specs.push(
        MetricSpec::bounded(
            "lc_forum_activity",
            CAT,
            lunar_start,
            (0.0, 100.0),
            (0.05, 0.10, 0.40),
            0.0,
            0.5,
        )
        .with_defect(Defect::MissingRange(d(2021, 1, 1), d(2021, 6, 1))),
    );

    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::simulate;
    use crate::spec::materialize;

    #[test]
    fn inventory_and_start_dates() {
        let cfg = SynthConfig::default();
        let list = specs(&cfg);
        assert!(list.len() >= 35, "{} specs", list.len());
        let names: std::collections::HashSet<&str> = list.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), list.len());
        assert!(names.contains("gt_Ethereum_monthly"));
        assert!(names.contains("gt_Cryptocurrency_monthly"));
        assert!(names.contains("fear_greed_index"));

        let fg = list.iter().find(|s| s.name == "fear_greed_index").unwrap();
        assert_eq!(fg.start, d(2018, 2, 1));
        let gt = list
            .iter()
            .find(|s| s.name == "gt_Bitcoin_monthly")
            .unwrap();
        assert_eq!(gt.start, cfg.start);
        let lc = list.iter().find(|s| s.name == "lc_galaxy_score").unwrap();
        assert_eq!(lc.start, d(2018, 6, 1));
    }

    #[test]
    fn bounded_sentiment_is_in_range() {
        let cfg = SynthConfig::small(31);
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        let frame = materialize(&specs(&cfg), &cfg, &latents, &btc);
        for name in ["fear_greed_index", "lc_galaxy_score"] {
            for v in frame.column(name).unwrap().values() {
                assert!(v.is_nan() || (0.0..=100.0).contains(v), "{name}: {v}");
            }
        }
    }

    #[test]
    fn google_trends_is_monthly_stepped() {
        let cfg = SynthConfig::small(32); // starts 2019-01-01
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        let frame = materialize(&specs(&cfg), &cfg, &latents, &btc);
        let col = frame.column("gt_Bitcoin_monthly").unwrap().values();
        for t in 1..31 {
            assert_eq!(col[t], col[0]);
        }
        assert_ne!(col[31], col[0]);
    }

    #[test]
    fn fear_greed_rises_with_momentum() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        let frame = materialize(&specs(&cfg), &cfg, &latents, &btc);
        let col = frame.column("fear_greed_ma7").unwrap();
        let first = col.first_present().unwrap();
        let fg = &col.values()[first..];
        let momentum = &latents.observed(&latents.momentum)[first..];
        let corr = c100_timeseries::stats::pearson(fg, momentum);
        assert!(corr > 0.3, "fear/greed vs momentum corr {corr}");
    }
}
