//! Stress test for the bounded request queue's shed accounting.
//!
//! Load shedding is only trustworthy if the bookkeeping is exact:
//! under contention every item must be either served (popped by a
//! consumer) or shed (handed back by `try_push`), never both and never
//! neither. The server-level saturation test checks the 503 counters;
//! this one pins the invariant at the queue itself, where it has to
//! hold item-by-item, by tagging every push with a unique id and
//! partitioning the id space afterwards.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use c100_serve::queue::{BoundedQueue, TryPushError};

const PRODUCERS: usize = 8;
const ITEMS_PER_PRODUCER: usize = 500;
const CONSUMERS: usize = 4;
const CAPACITY: usize = 8;

#[test]
fn every_item_is_served_or_shed_exactly_once() {
    let queue = Arc::new(BoundedQueue::new(CAPACITY));

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let queue = queue.clone();
            thread::spawn(move || {
                let mut served = Vec::new();
                while let Some(id) = queue.pop() {
                    served.push(id);
                }
                served
            })
        })
        .collect();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = queue.clone();
            thread::spawn(move || {
                let mut shed = Vec::new();
                for i in 0..ITEMS_PER_PRODUCER {
                    let id = p * ITEMS_PER_PRODUCER + i;
                    match queue.try_push(id) {
                        Ok(depth) => {
                            // try_push reports the depth after insertion;
                            // it can never exceed the shed threshold.
                            assert!(depth <= CAPACITY, "queue overfilled: {depth}");
                        }
                        Err(TryPushError::Full(rejected)) => {
                            // The exact item comes back, not a token.
                            assert_eq!(rejected, id);
                            shed.push(rejected);
                        }
                        Err(TryPushError::Closed(_)) => {
                            panic!("queue closed while producers were live")
                        }
                    }
                }
                shed
            })
        })
        .collect();

    let mut shed = Vec::new();
    for producer in producers {
        shed.extend(producer.join().unwrap());
    }
    // Consumers drain what is left, observe the close, and exit.
    queue.close();
    let mut served = Vec::new();
    for consumer in consumers {
        served.extend(consumer.join().unwrap());
    }

    let total = PRODUCERS * ITEMS_PER_PRODUCER;
    assert_eq!(
        served.len() + shed.len(),
        total,
        "{} served + {} shed must account for all {total} items",
        served.len(),
        shed.len()
    );

    let served_set: HashSet<usize> = served.iter().copied().collect();
    let shed_set: HashSet<usize> = shed.iter().copied().collect();
    assert_eq!(served_set.len(), served.len(), "an item was served twice");
    assert_eq!(shed_set.len(), shed.len(), "an item was shed twice");
    assert!(
        served_set.is_disjoint(&shed_set),
        "an item was both served and shed: {:?}",
        served_set.intersection(&shed_set).collect::<Vec<_>>()
    );
    let mut all: Vec<usize> = served_set.union(&shed_set).copied().collect();
    all.sort_unstable();
    assert_eq!(all, (0..total).collect::<Vec<_>>(), "an item vanished");
}

#[test]
fn close_hands_back_the_exact_item_and_wakes_blocked_consumers() {
    let queue: Arc<BoundedQueue<String>> = Arc::new(BoundedQueue::new(4));
    let blocked: Vec<_> = (0..3)
        .map(|_| {
            let queue = queue.clone();
            thread::spawn(move || queue.pop())
        })
        .collect();
    queue.close();
    for consumer in blocked {
        assert_eq!(consumer.join().unwrap(), None);
    }
    match queue.try_push("late".to_string()) {
        Err(TryPushError::Closed(item)) => assert_eq!(item, "late"),
        other => panic!("push after close must return Closed, got {other:?}"),
    }
}

#[test]
fn shrinking_capacity_sheds_until_the_backlog_drains() {
    let queue = BoundedQueue::new(4);
    for id in 0..4 {
        queue.try_push(id).expect("within capacity");
    }
    // The tuner narrows the queue under a backlog: nothing queued is
    // dropped, but new pushes shed until consumers drain below the new
    // bound.
    queue.set_capacity(2);
    assert_eq!(queue.len(), 4, "shrinking must not drop queued items");
    assert!(matches!(queue.try_push(99), Err(TryPushError::Full(99))));
    assert_eq!(queue.pop(), Some(0));
    assert_eq!(queue.pop(), Some(1));
    assert!(
        matches!(queue.try_push(99), Err(TryPushError::Full(99))),
        "still at the new capacity"
    );
    assert_eq!(queue.pop(), Some(2));
    assert_eq!(queue.try_push(99).expect("below capacity again"), 2);
}
