//! Regression metrics. MSE is the paper's objective everywhere (grid
//! search, PFI, performance improvement), so it leads the module.

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Coefficient of determination R². 1.0 is perfect; 0.0 matches predicting
/// the mean; negative is worse than the mean. Returns `NaN` for a constant
/// target.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    if y_true.is_empty() {
        return f64::NAN;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        f64::NAN
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean absolute percentage error over non-zero targets, as a fraction.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> f64 {
    assert_eq!(y_true.len(), y_pred.len(), "length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if *t != 0.0 {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// The paper's "performance improvement": percentage decrease of MSE when
/// moving from the single-category model (`mse_single`) to the diverse
/// model (`mse_diverse`). A value of 100 means the diverse model's error is
/// half the single-category error… no: it means `mse_single` exceeds
/// `mse_diverse` by 100% of `mse_diverse` (i.e. 2× larger), matching the
/// >1000% figures the paper reports.
pub fn mse_percentage_decrease(mse_single: f64, mse_diverse: f64) -> f64 {
    if mse_diverse <= 0.0 {
        return f64::NAN;
    }
    (mse_single - mse_diverse) / mse_diverse * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_and_rmse() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((mse(&t, &p) - 4.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&t, &p) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mse(&t, &t), 0.0);
    }

    #[test]
    fn mae_is_l1() {
        assert!((mae(&[1.0, 2.0], &[2.0, 0.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn r2_reference_points() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r2(&t, &mean_pred).abs() < 1e-12);
        let awful = [10.0, -10.0, 10.0, -10.0];
        assert!(r2(&t, &awful) < 0.0);
        assert!(r2(&[5.0, 5.0], &[5.0, 5.0]).is_nan());
    }

    #[test]
    fn mape_skips_zero_targets() {
        let v = mape(&[0.0, 2.0], &[1.0, 1.0]);
        assert!((v - 0.5).abs() < 1e-12);
        assert!(mape(&[0.0], &[1.0]).is_nan());
    }

    #[test]
    fn percentage_decrease_matches_definition() {
        // Single-category error 4×: improvement = 300%.
        assert!((mse_percentage_decrease(4.0, 1.0) - 300.0).abs() < 1e-12);
        assert_eq!(mse_percentage_decrease(1.0, 1.0), 0.0);
        assert!(mse_percentage_decrease(1.0, 0.0).is_nan());
        // Diversity can in principle hurt: negative improvement.
        assert!(mse_percentage_decrease(1.0, 2.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mse_panics_on_shape_mismatch() {
        mse(&[1.0], &[1.0, 2.0]);
    }
}
