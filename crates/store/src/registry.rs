//! Directory-backed artifact registry.
//!
//! Layout of a store rooted at `DIR`:
//!
//! ```text
//! DIR/
//!   manifest.json          index: version, next_seq, artifact entries
//!   <id>.json              content-addressed artifact files
//! ```
//!
//! Artifact files are named by their payload checksum, so the same model
//! saved twice lands on the same file and the store never holds two
//! copies of identical content. Every write — artifact or manifest —
//! goes through a temp file followed by an atomic rename, so a crash
//! mid-save can leave a stray `*.tmp` but never a torn file the next
//! open would trip over.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use c100_obs::json::{self, write_escaped};
use c100_obs::{Event, NullObserver, RunObserver};

use crate::artifact::ModelArtifact;
use crate::{Result, StoreError};

/// Manifest format revision; independent of the artifact
/// [`SCHEMA_VERSION`](crate::SCHEMA_VERSION).
const MANIFEST_VERSION: u64 = 1;

const MANIFEST_FILE: &str = "manifest.json";

/// One indexed artifact in `manifest.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Content address (payload checksum, 16 hex digits).
    pub id: String,
    /// Scenario the model was trained for (`2019_7`).
    pub scenario: String,
    /// Model family (`rf` / `gbdt`).
    pub model: String,
    /// Encoded size in bytes.
    pub bytes: u64,
    /// Monotonic save order; `latest` resolves ties through it.
    pub seq: u64,
}

/// A directory-backed store of model artifacts with a JSON manifest.
pub struct ArtifactStore {
    root: PathBuf,
    entries: Vec<ManifestEntry>,
    next_seq: u64,
    observer: Arc<dyn RunObserver>,
    retain_per_family: Option<usize>,
}

impl ArtifactStore {
    /// Opens (creating if necessary) a store rooted at `root` and loads
    /// its manifest. A malformed manifest is an error, not a silent
    /// reset — the artifacts it indexed may still be recoverable.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let manifest_path = root.join(MANIFEST_FILE);
        let (entries, next_seq) = if manifest_path.exists() {
            parse_manifest(&fs::read_to_string(&manifest_path)?)?
        } else {
            (Vec::new(), 0)
        };
        Ok(ArtifactStore {
            root,
            entries,
            next_seq,
            observer: Arc::new(NullObserver),
            retain_per_family: None,
        })
    }

    /// Replaces the observer (default: [`NullObserver`]); store events
    /// then land in the run's telemetry alongside pipeline stages.
    pub fn with_observer(mut self, observer: Arc<dyn RunObserver>) -> ArtifactStore {
        self.observer = observer;
        self
    }

    /// Keeps only the latest `n` artifacts per (scenario, family) pair:
    /// every [`save`](Self::save) prunes older entries from the manifest
    /// and deletes their files, so repeated refits (an online rollover
    /// loop saving every few minutes) cannot grow the store without
    /// bound. `latest`/`latest_family` always resolve to a survivor.
    ///
    /// # Panics
    /// Panics if `n` is 0 — that would delete every artifact as saved.
    pub fn with_retention(mut self, n: usize) -> ArtifactStore {
        assert!(n >= 1, "retention must keep at least 1 artifact");
        self.retain_per_family = Some(n);
        self
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Encodes and persists an artifact, updates the manifest, and
    /// emits [`Event::ArtifactSaved`]. Returns the manifest entry
    /// (whose `id` is the handle for [`load`](Self::load)).
    pub fn save(&mut self, artifact: &ModelArtifact) -> Result<ManifestEntry> {
        let encoded = artifact.encode();
        let path = self.artifact_path(&encoded.id);
        // Content-addressed: an existing file already holds these exact
        // bytes, so rewriting it would be pure churn.
        if !path.exists() {
            write_atomic(&path, &encoded.text)?;
        }

        let entry = ManifestEntry {
            id: encoded.id.clone(),
            scenario: artifact.scenario.clone(),
            model: artifact.model.family().to_string(),
            bytes: encoded.bytes,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.entries.retain(|e| e.id != entry.id);
        self.entries.push(entry.clone());
        let pruned = self.apply_retention();
        self.persist_manifest()?;
        // Files go only after the manifest no longer references them; a
        // crash in between leaves an orphan file, never a dangling index
        // entry. Saved ids are unique in the manifest, so a pruned
        // entry's file cannot be shared with a survivor.
        for stale in pruned {
            let _ = fs::remove_file(self.artifact_path(&stale.id));
        }

        self.observer.on_event(&Event::ArtifactSaved {
            scenario: artifact.scenario.clone(),
            model: artifact.model.family().to_string(),
            artifact_id: encoded.id,
            bytes: encoded.bytes,
        });
        Ok(entry)
    }

    /// Loads and fully verifies an artifact by id, emitting
    /// [`Event::ArtifactLoaded`] with the load+verify latency.
    pub fn load(&self, id: &str) -> Result<ModelArtifact> {
        let started = Instant::now();
        let path = self.artifact_path(id);
        let text = fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::NotFound(format!("artifact {id} in {}", self.root.display()))
            } else {
                StoreError::Io(e)
            }
        })?;
        let artifact = ModelArtifact::decode(&text)?;
        // decode verified header-vs-payload; this verifies file-vs-name,
        // catching an artifact renamed onto another id.
        let actual = format!("{:016x}", crate::artifact::fnv1a64(payload_of(&text)));
        if actual != id {
            return Err(StoreError::ChecksumMismatch {
                expected: id.to_string(),
                actual,
            });
        }

        self.observer.on_event(&Event::ArtifactLoaded {
            scenario: artifact.scenario.clone(),
            model: artifact.model.family().to_string(),
            artifact_id: id.to_string(),
            micros: started.elapsed().as_micros() as u64,
        });
        Ok(artifact)
    }

    /// Re-reads `manifest.json` so a long-lived process observes
    /// artifacts exported *after* it opened the store (the manifest is
    /// otherwise only read at [`open`](Self::open)). Returns the ids
    /// that became visible with this reload, in manifest (save) order.
    ///
    /// A manifest that disappeared is treated as empty (nothing new); a
    /// present-but-malformed manifest is an error and leaves the
    /// in-memory view untouched, so a half-written external export can
    /// never wipe a serving process's index.
    pub fn reload(&mut self) -> Result<Vec<String>> {
        let manifest_path = self.root.join(MANIFEST_FILE);
        let (entries, next_seq) = if manifest_path.exists() {
            parse_manifest(&fs::read_to_string(&manifest_path)?)?
        } else {
            (Vec::new(), 0)
        };
        let new_ids: Vec<String> = entries
            .iter()
            .filter(|e| !self.entries.iter().any(|have| have.id == e.id))
            .map(|e| e.id.clone())
            .collect();
        self.entries = entries;
        // Keep the larger counter: this process may have saved entries
        // the on-disk manifest writer had not yet seen.
        self.next_seq = self.next_seq.max(next_seq);
        Ok(new_ids)
    }

    /// All indexed artifacts in save order.
    pub fn list(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Most recently saved artifact for a scenario, any family.
    pub fn latest(&self, scenario: &str) -> Option<&ManifestEntry> {
        self.entries
            .iter()
            .filter(|e| e.scenario == scenario)
            .max_by_key(|e| e.seq)
    }

    /// Most recently saved artifact for a scenario and model family.
    pub fn latest_family(&self, scenario: &str, family: &str) -> Option<&ManifestEntry> {
        self.entries
            .iter()
            .filter(|e| e.scenario == scenario && e.model == family)
            .max_by_key(|e| e.seq)
    }

    /// Drops entries beyond the retention budget per (scenario, family),
    /// newest (highest seq) first, returning what was pruned.
    fn apply_retention(&mut self) -> Vec<ManifestEntry> {
        let Some(keep) = self.retain_per_family else {
            return Vec::new();
        };
        let mut pruned = Vec::new();
        let mut kept = Vec::with_capacity(self.entries.len());
        // Walk newest-to-oldest, counting per family key.
        let mut by_seq: Vec<ManifestEntry> = std::mem::take(&mut self.entries);
        by_seq.sort_by_key(|e| std::cmp::Reverse(e.seq));
        let mut counts: std::collections::HashMap<(String, String), usize> =
            std::collections::HashMap::new();
        for e in by_seq {
            let slot = counts
                .entry((e.scenario.clone(), e.model.clone()))
                .or_insert(0);
            if *slot < keep {
                *slot += 1;
                kept.push(e);
            } else {
                pruned.push(e);
            }
        }
        // Restore save order for the manifest.
        kept.sort_by_key(|e| e.seq);
        self.entries = kept;
        pruned
    }

    fn artifact_path(&self, id: &str) -> PathBuf {
        self.root.join(format!("{id}.json"))
    }

    fn persist_manifest(&self) -> Result<()> {
        let mut out = String::with_capacity(256 + 128 * self.entries.len());
        out.push_str(&format!(
            "{{\"version\":{MANIFEST_VERSION},\"next_seq\":{},\"artifacts\":[",
            self.next_seq
        ));
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            write_escaped(&mut out, &e.id);
            out.push_str(",\"scenario\":");
            write_escaped(&mut out, &e.scenario);
            out.push_str(",\"model\":");
            write_escaped(&mut out, &e.model);
            out.push_str(&format!(",\"bytes\":{},\"seq\":{}}}", e.bytes, e.seq));
        }
        out.push_str("]}\n");
        write_atomic(&self.root.join(MANIFEST_FILE), &out)?;
        Ok(())
    }
}

/// The payload line of an artifact file (empty slice if malformed; the
/// caller has already decoded successfully by the time this runs).
fn payload_of(text: &str) -> &[u8] {
    match text.split_once('\n') {
        Some((_, rest)) => rest.strip_suffix('\n').unwrap_or(rest).as_bytes(),
        None => &[],
    }
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

fn parse_manifest(text: &str) -> Result<(Vec<ManifestEntry>, u64)> {
    let malformed = |e: json::JsonError| StoreError::Malformed(format!("manifest: {e}"));
    let value = json::parse(text).map_err(malformed)?;
    let version = value.req_uint("version").map_err(malformed)?;
    if version != MANIFEST_VERSION {
        return Err(StoreError::Malformed(format!(
            "unsupported manifest version {version} (expected {MANIFEST_VERSION})"
        )));
    }
    let next_seq = value.req_uint("next_seq").map_err(malformed)?;
    let artifacts = match value.get("artifacts") {
        Some(json::Value::Array(items)) => items,
        _ => {
            return Err(StoreError::Malformed(
                "manifest: \"artifacts\" is not an array".into(),
            ))
        }
    };
    let entries = artifacts
        .iter()
        .map(|item| {
            Ok(ManifestEntry {
                id: item.req_str("id").map_err(malformed)?.to_string(),
                scenario: item.req_str("scenario").map_err(malformed)?.to_string(),
                model: item.req_str("model").map_err(malformed)?.to_string(),
                bytes: item.req_uint("bytes").map_err(malformed)?,
                seq: item.req_uint("seq").map_err(malformed)?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    for e in &entries {
        if e.seq >= next_seq {
            return Err(StoreError::Malformed(format!(
                "manifest: entry {} has seq {} >= next_seq {next_seq}",
                e.id, e.seq
            )));
        }
    }
    Ok((entries, next_seq))
}
