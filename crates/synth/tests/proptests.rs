//! Property-based tests for the market simulator: determinism, structural
//! invariants and cross-seed robustness of the latent model.

use c100_synth::latent::{phi_for_half_life, simulate};
use c100_synth::universe::simulate_universe;
use c100_synth::{btc, SynthConfig};
use c100_timeseries::Date;
use proptest::prelude::*;

fn tiny_config(seed: u64) -> SynthConfig {
    SynthConfig {
        seed,
        start: Date::from_ymd(2019, 1, 1).unwrap(),
        end: Date::from_ymd(2019, 12, 31).unwrap(),
        n_assets: 110,
        warmup_days: 120,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn phi_is_in_unit_interval(half_life in 0.5f64..1000.0) {
        let phi = phi_for_half_life(half_life);
        prop_assert!(phi > 0.0 && phi < 1.0);
        // Half-life property: phi^h = 1/2.
        prop_assert!((phi.powf(half_life) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn latents_are_finite_for_any_seed(seed in 0u64..10_000) {
        let paths = simulate(&tiny_config(seed));
        for path in [&paths.trend, &paths.cycle, &paths.momentum, &paths.adoption, &paths.log_price] {
            prop_assert!(path.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn btc_prices_positive_for_any_seed(seed in 0u64..10_000) {
        let cfg = tiny_config(seed);
        let latents = simulate(&cfg);
        let market = btc::simulate_btc(&cfg, &latents);
        prop_assert!(market.close.iter().all(|v| *v > 0.0));
        prop_assert!(market.volume.iter().all(|v| *v > 0.0));
        for t in 0..market.close.len() {
            prop_assert!(market.high[t] >= market.low[t]);
        }
    }

    #[test]
    fn universe_top100_never_exceeds_total(seed in 0u64..5_000) {
        let cfg = tiny_config(seed);
        let latents = simulate(&cfg);
        let market = btc::simulate_btc(&cfg, &latents);
        let universe = simulate_universe(&cfg, &latents, &market);
        for t in (0..universe.n_days()).step_by(30) {
            prop_assert!(universe.top100_cap[t] <= universe.total_cap[t] * (1.0 + 1e-9));
            prop_assert!(universe.top100_cap[t] > 0.0);
        }
        for share in universe.top100_share() {
            prop_assert!(share > 0.0 && share <= 1.0);
        }
    }

    #[test]
    fn simulation_is_a_pure_function_of_seed(seed in 0u64..1_000) {
        let cfg = tiny_config(seed);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn supply_is_monotone(days in 0i32..5000) {
        let d0 = Date::from_ymd(2017, 1, 1).unwrap().add_days(days);
        let d1 = d0.add_days(1);
        prop_assert!(btc::btc_supply_on(d1) > btc::btc_supply_on(d0));
    }
}
