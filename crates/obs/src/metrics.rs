//! Monotonic counters, gauges, and duration histograms aggregated
//! across a run.
//!
//! [`MetricsRegistry`] can be used directly (`inc` / `set_gauge` /
//! `observe_micros`) or registered as a [`RunObserver`] sink, in which
//! case it derives a standard set of metrics from the event stream:
//! per-stage duration histograms, scenario/run totals, FRA iteration and
//! grid-candidate counters. Snapshots are plain data and render to JSON
//! (machine diffing, `repro compare`) or to a Prometheus-style text
//! exposition ([`MetricsSnapshot::to_text`], the `GET /metrics` format
//! of `c100-serve`) without serde.
//!
//! Since PR 8 the registry is a *facade* over the sharded lock-free
//! cells in [`crate::telemetry`]: the by-name methods resolve a
//! preregistered handle through a shared `RwLock` read (uncontended
//! after the first use of each name) and the actual recording is a few
//! relaxed atomic ops on a per-thread shard — no global mutex on any
//! hot path. Callers on genuinely hot paths should preregister with
//! [`MetricsRegistry::counter`] / [`MetricsRegistry::gauge`] /
//! [`MetricsRegistry::histogram`] and record through the handle, which
//! skips even the name lookup. Histograms use the log-linear
//! [`crate::hist`] layout (4 sub-buckets per power of two, 1µs to
//! ~134s), so quantiles carry a guaranteed ≤25% relative error instead
//! of the old decade-wide (10×) uncertainty.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Duration;

use crate::event::Event;
use crate::json::{write_escaped, write_float};
use crate::telemetry::{
    AtomicGauge, CounterHandle, GaugeHandle, HistogramHandle, ShardedCounter, ShardedHistogram,
};
use crate::RunObserver;

/// Thread-safe counters, gauges, and duration histograms.
///
/// Recording by name never takes an exclusive lock after a metric's
/// first use; preregistered handles never take any lock at all.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, CounterHandle>>,
    gauges: RwLock<BTreeMap<String, GaugeHandle>>,
    histograms: RwLock<BTreeMap<String, HistogramHandle>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the handle for the named counter, creating it if absent.
    /// Hot paths should call this once and record through the handle.
    pub fn counter(&self, name: &str) -> CounterHandle {
        if let Some(c) = self.counters.read().expect("metrics poisoned").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("metrics poisoned")
            .entry(name.to_string())
            .or_insert_with(|| CounterHandle(Arc::new(ShardedCounter::new())))
            .clone()
    }

    /// Returns the handle for the named gauge, creating it if absent.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        if let Some(g) = self.gauges.read().expect("metrics poisoned").get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("metrics poisoned")
            .entry(name.to_string())
            .or_insert_with(|| GaugeHandle(Arc::new(AtomicGauge::new())))
            .clone()
    }

    /// Returns the handle for the named histogram, creating it if
    /// absent. Hot paths should call this once and record through the
    /// handle.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        if let Some(h) = self.histograms.read().expect("metrics poisoned").get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("metrics poisoned")
            .entry(name.to_string())
            .or_insert_with(|| HistogramHandle(Arc::new(ShardedHistogram::new())))
            .clone()
    }

    /// Adds 1 to the named monotonic counter.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named monotonic counter. Fast path: a shared
    /// read of the name map plus a relaxed `fetch_add`; the exclusive
    /// write lock is taken only the first time a name is seen.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(c) = self.counters.read().expect("metrics poisoned").get(name) {
            c.add(delta);
            return;
        }
        self.counter(name).add(delta);
    }

    /// Sets the named gauge to an instantaneous value (last write wins).
    /// Unlike counters, gauges can move in both directions — queue
    /// depths, cache sizes, worker counts.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(g) = self.gauges.read().expect("metrics poisoned").get(name) {
            g.set(value);
            return;
        }
        self.gauge(name).set(value);
    }

    /// Records one duration observation in the named histogram. Same
    /// fast path as [`MetricsRegistry::add`].
    pub fn observe_micros(&self, name: &str, micros: u64) {
        if let Some(h) = self.histograms.read().expect("metrics poisoned").get(name) {
            h.observe_micros(micros);
            return;
        }
        self.histogram(name).observe_micros(micros);
    }

    /// Records one [`Duration`] observation in the named histogram.
    pub fn observe(&self, name: &str, duration: Duration) {
        self.observe_micros(name, duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A copy of every counter, gauge, and histogram, aggregated across
    /// shards. Writers that happened-before this call are fully
    /// counted; concurrent in-flight writers may or may not appear
    /// (standard scrape semantics).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics poisoned")
                .iter()
                .map(|(name, c)| (name.clone(), c.value()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics poisoned")
                .iter()
                .map(|(name, g)| (name.clone(), g.value()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics poisoned")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// The registry as an event sink: derives the standard pipeline metrics.
impl RunObserver for MetricsRegistry {
    fn on_event(&self, event: &Event) {
        self.inc("events_total");
        self.inc(&format!("events.{}", event.kind()));
        match event {
            Event::StageFinished { stage, micros, .. } => {
                self.observe_micros(&format!("stage.{}_micros", stage.label()), *micros);
            }
            Event::GridCandidateScored { .. } => self.inc("grid_candidates_total"),
            Event::FraIteration { n_removed, .. } => {
                self.inc("fra_iterations_total");
                self.add("fra_features_removed_total", *n_removed as u64);
            }
            Event::ScenarioFinished { micros, .. } => {
                self.inc("scenarios_finished_total");
                self.observe_micros("scenario_micros", *micros);
            }
            Event::RunFinished { micros, .. } => {
                self.observe_micros("run_micros", *micros);
            }
            Event::ArtifactSaved { bytes, .. } => {
                self.inc("artifacts_saved_total");
                self.add("artifact_bytes_total", *bytes);
            }
            Event::ArtifactLoaded { micros, .. } => {
                self.inc("artifacts_loaded_total");
                self.observe_micros("artifact_load_micros", *micros);
            }
            Event::ModelRolledOver { warm, micros, .. } => {
                self.inc("model_rollovers_total");
                if *warm {
                    self.inc("model_rollovers_warm_total");
                }
                self.observe_micros("model_rollover_micros", *micros);
            }
            Event::BatchPredicted { rows, micros, .. } => {
                self.inc("batches_predicted_total");
                self.add("inference_rows_total", *rows as u64);
                self.observe_micros("batch_predict_micros", *micros);
            }
            _ => {}
        }
    }
}

/// One histogram bucket: observations with duration ≤ `le_micros`
/// (`None` = the +∞ catch-all), exclusive of lower buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive upper bound in microseconds; `None` for the overflow
    /// bucket.
    pub le_micros: Option<u64>,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, in microseconds.
    pub sum_micros: u64,
    /// Smallest observation (0 when empty).
    pub min_micros: u64,
    /// Largest observation.
    pub max_micros: u64,
    /// Per-bucket counts, smallest bound first.
    pub buckets: Vec<Bucket>,
}

impl HistogramSnapshot {
    /// Mean observation in microseconds (0 when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in microseconds by
    /// linear interpolation inside the bucket that holds the target
    /// rank (the prometheus `histogram_quantile` scheme), clamped to
    /// the observed `[min, max]` range. Returns 0 for an empty
    /// histogram.
    ///
    /// **Error bound.** Both the estimate and the exact sample quantile
    /// lie in the same bucket, so the error is at most that bucket's
    /// width. For snapshots produced by this registry (the log-linear
    /// [`crate::hist`] layout) the width is ≤ 1/4 of the bucket's lower
    /// bound, giving `|estimate − exact| ≤ max(0.25 × exact, 1µs)` —
    /// see [`crate::hist::quantile_error_bound`]. For snapshots parsed
    /// from older files (decade buckets), the same reasoning bounds the
    /// error by a decade width; the min/max clamp keeps single-valued
    /// histograms exact in both layouts.
    pub fn quantile_micros(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let below = cumulative;
            cumulative += bucket.count;
            if (cumulative as f64) < rank || bucket.count == 0 {
                continue;
            }
            let lower = if i == 0 {
                0.0
            } else {
                self.buckets[i - 1].le_micros.unwrap_or(0) as f64
            };
            let upper = match bucket.le_micros {
                Some(le) => le as f64,
                None => self.max_micros as f64,
            };
            let fraction = ((rank - below as f64) / bucket.count as f64).clamp(0.0, 1.0);
            let estimate = lower + (upper - lower) * fraction;
            return estimate.clamp(self.min_micros as f64, self.max_micros as f64);
        }
        self.max_micros as f64
    }
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last set value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as pretty-printed JSON (stable key order).
    /// Empty buckets are elided from the bucket list (the log-linear
    /// layout has 105 buckets and most stay at zero) — except each
    /// non-empty bucket's immediate predecessor and the `+Inf` tail,
    /// which pin the interpolation lower bounds so quantiles computed
    /// from the sparse list equal those from the dense one.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(": ");
            write_float(&mut out, *value);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_escaped(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum_micros\": {}, \"min_micros\": {}, \"max_micros\": {}, \"mean_micros\": ",
                h.count, h.sum_micros, h.min_micros, h.max_micros
            ));
            write_float(&mut out, h.mean_micros());
            out.push_str(", \"buckets\": [");
            let mut first = true;
            for (j, bucket) in h.buckets.iter().enumerate() {
                if !keep_bucket(&h.buckets, j) {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                match bucket.le_micros {
                    Some(le) => out.push_str(&format!(
                        "{{\"le_micros\": {le}, \"count\": {}}}",
                        bucket.count
                    )),
                    None => out.push_str(&format!(
                        "{{\"le_micros\": null, \"count\": {}}}",
                        bucket.count
                    )),
                }
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a snapshot previously written by
    /// [`MetricsSnapshot::to_json`] — by this version (sparse log-linear
    /// buckets) or any earlier one (dense decade buckets). Unknown
    /// fields (e.g. the derived `mean_micros`, or fields added by
    /// future versions) are ignored.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, crate::json::JsonError> {
        use crate::json::{JsonError, Value};
        let value = crate::json::parse(text)?;
        let mut counters = BTreeMap::new();
        if let Some(section @ Value::Object(map)) = value.get("counters") {
            for name in map.keys() {
                counters.insert(name.clone(), section.req_uint(name)?);
            }
        }
        // Absent in files written before gauges existed; an empty map
        // keeps those round-tripping.
        let mut gauges = BTreeMap::new();
        if let Some(section @ Value::Object(map)) = value.get("gauges") {
            for name in map.keys() {
                gauges.insert(name.clone(), section.req_float(name)?);
            }
        }
        let mut histograms = BTreeMap::new();
        if let Some(Value::Object(map)) = value.get("histograms") {
            for (name, h) in map {
                let buckets = match h.get("buckets") {
                    Some(Value::Array(items)) => items
                        .iter()
                        .map(|b| {
                            let le_micros = match b.get("le_micros") {
                                Some(Value::Null) | None => None,
                                _ => Some(b.req_uint("le_micros")?),
                            };
                            Ok(Bucket {
                                le_micros,
                                count: b.req_uint("count")?,
                            })
                        })
                        .collect::<Result<Vec<_>, JsonError>>()?,
                    _ => return Err(JsonError::new(format!("histogram {name:?} lacks buckets"))),
                };
                histograms.insert(
                    name.clone(),
                    HistogramSnapshot {
                        count: h.req_uint("count")?,
                        sum_micros: h.req_uint("sum_micros")?,
                        min_micros: h.req_uint("min_micros")?,
                        max_micros: h.req_uint("max_micros")?,
                        buckets,
                    },
                );
            }
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` comments, `_total`-style counters as
    /// written, histograms as cumulative `_bucket{le="..."}` series plus
    /// `_sum` / `_count`. Metric names are sanitized (`.` → `_`, any
    /// other non-`[a-zA-Z0-9_:]` byte → `_`) so registry keys like
    /// `stage.tune_micros` become legal Prometheus names. Empty finite
    /// buckets are skipped (cumulative rendering loses nothing), and the
    /// `+Inf` bucket is always emitted equal to `_count`, as the
    /// exposition format requires.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(
            64 * (self.counters.len() + self.gauges.len()) + 512 * self.histograms.len(),
        );
        for (name, value) in &self.counters {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} "));
            write_float(&mut out, *value);
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let name = sanitize_metric_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            // Prometheus buckets are cumulative, ours are per-bucket.
            // Empty buckets are skipped (sound because the output is
            // cumulative), except each non-empty bucket's predecessor,
            // kept so `histogram_quantile` sees tight lower bounds.
            let mut cumulative = 0u64;
            for (j, bucket) in h.buckets.iter().enumerate() {
                let Some(le) = bucket.le_micros else { continue };
                cumulative += bucket.count;
                if !keep_bucket(&h.buckets, j) {
                    continue;
                }
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            // `+Inf` must equal `_count` exactly — even for snapshots
            // parsed from files whose bucket list does not sum to count.
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!(
                "{name}_sum {}\n{name}_count {}\n",
                h.sum_micros, h.count
            ));
        }
        out
    }
}

/// Whether bucket `index` must appear in a sparse rendering: non-empty
/// buckets, the immediate predecessor of any non-empty bucket (it pins
/// the interpolation lower bound), and the overflow tail.
fn keep_bucket(buckets: &[Bucket], index: usize) -> bool {
    buckets[index].count > 0
        || buckets[index].le_micros.is_none()
        || buckets.get(index + 1).is_some_and(|next| next.count > 0)
}

/// Maps a registry key to a legal Prometheus metric name.
fn sanitize_metric_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Stage;
    use crate::hist::{bucket_bounds_micros, quantile_error_bound, N_BUCKETS};
    use crate::json;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.inc("a");
        m.add("b", 40);
        let snap = m.snapshot();
        assert_eq!(snap.counters["a"], 2);
        assert_eq!(snap.counters["b"], 40);
    }

    #[test]
    fn histograms_track_count_sum_min_max_and_buckets() {
        let m = MetricsRegistry::new();
        m.observe_micros("d", 1);
        m.observe_micros("d", 500);
        m.observe_micros("d", 2_000_000_000); // past the finite range
        let h = &m.snapshot().histograms["d"];
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_micros, 2_000_000_501);
        assert_eq!(h.min_micros, 1);
        assert_eq!(h.max_micros, 2_000_000_000);
        assert_eq!(h.buckets.len(), N_BUCKETS);
        assert_eq!(h.buckets[1].count, 1); // 1µs is exact
        assert_eq!(h.buckets.last().unwrap().count, 1);
        assert_eq!(h.buckets.last().unwrap().le_micros, None);
        let total: u64 = h.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, h.count);
        assert!((h.mean_micros() - 2_000_000_501.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn preregistered_handles_and_by_name_calls_share_one_metric() {
        let m = MetricsRegistry::new();
        let c = m.counter("hits");
        let h = m.histogram("lat");
        c.inc();
        m.inc("hits");
        h.observe_micros(10);
        m.observe_micros("lat", 20);
        let snap = m.snapshot();
        assert_eq!(snap.counters["hits"], 2);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].sum_micros, 30);
    }

    #[test]
    fn snapshot_counts_all_writes_from_joined_threads() {
        // The no-lost-updates stress: totals must equal the exact sum of
        // per-thread contributions once the writers have joined.
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let c = m.counter("ops");
        let h = m.histogram("lat");
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let (m, c, h) = (m.clone(), c.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        c.inc();
                        h.observe_micros(t * 100 + i % 13);
                        if i % 50 == 0 {
                            m.inc("ops"); // by-name path hits the same cell
                        }
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counters["ops"], 8 * 2_000 + 8 * 40);
        assert_eq!(snap.histograms["lat"].count, 16_000);
        let bucket_total: u64 = snap.histograms["lat"].buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, 16_000);
    }

    #[test]
    fn observer_impl_aggregates_across_scenarios() {
        let m = MetricsRegistry::new();
        for scenario in ["2019_7", "2019_30"] {
            m.on_event(&Event::ScenarioStarted {
                scenario: scenario.into(),
                n_candidates: 200,
            });
            m.on_event(&Event::StageFinished {
                scenario: scenario.into(),
                stage: Stage::Tune,
                micros: 1_000,
            });
            for i in 0..3 {
                m.on_event(&Event::FraIteration {
                    scenario: scenario.into(),
                    iteration: i,
                    n_before: 200 - 5 * i,
                    n_removed: 5,
                    corr_threshold: 0.5,
                    stall_break: false,
                });
            }
            m.on_event(&Event::ScenarioFinished {
                scenario: scenario.into(),
                n_candidates: 200,
                fra_survivors: 100,
                fra_iterations: 3,
                shap_overlap: 70,
                final_features: 110,
                micros: 9_000,
            });
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["scenarios_finished_total"], 2);
        assert_eq!(snap.counters["fra_iterations_total"], 6);
        assert_eq!(snap.counters["fra_features_removed_total"], 30);
        assert_eq!(snap.counters["events.stage_finished"], 2);
        assert_eq!(snap.counters["events_total"], 12);
        assert_eq!(snap.histograms["stage.tune_micros"].count, 2);
        assert_eq!(snap.histograms["scenario_micros"].sum_micros, 18_000);
    }

    #[test]
    fn observer_impl_derives_store_metrics() {
        let m = MetricsRegistry::new();
        m.on_event(&Event::ArtifactSaved {
            scenario: "2019_7".into(),
            model: "rf".into(),
            artifact_id: "abc123".into(),
            bytes: 2_048,
        });
        m.on_event(&Event::ArtifactLoaded {
            scenario: "2019_7".into(),
            model: "rf".into(),
            artifact_id: "abc123".into(),
            micros: 550,
        });
        for _ in 0..3 {
            m.on_event(&Event::BatchPredicted {
                scenario: "2019_7".into(),
                model: "rf".into(),
                rows: 64,
                micros: 1_200,
            });
        }
        let snap = m.snapshot();
        assert_eq!(snap.counters["artifacts_saved_total"], 1);
        assert_eq!(snap.counters["artifact_bytes_total"], 2_048);
        assert_eq!(snap.counters["artifacts_loaded_total"], 1);
        assert_eq!(snap.counters["batches_predicted_total"], 3);
        assert_eq!(snap.counters["inference_rows_total"], 192);
        assert_eq!(snap.histograms["artifact_load_micros"].count, 1);
        assert_eq!(snap.histograms["batch_predict_micros"].sum_micros, 3_600);
    }

    #[test]
    fn snapshot_json_is_parseable_and_complete() {
        let m = MetricsRegistry::new();
        m.inc("events_total");
        m.observe_micros("stage.fra_micros", 1234);
        let text = m.snapshot().to_json();
        let value = json::parse(&text).expect("snapshot JSON parses");
        assert_eq!(
            value
                .get("counters")
                .and_then(|c| c.req_uint("events_total").ok()),
            Some(1)
        );
        let h = value
            .get("histograms")
            .and_then(|h| h.get("stage.fra_micros"))
            .expect("histogram present");
        assert_eq!(h.req_uint("count").unwrap(), 1);
        assert_eq!(h.req_uint("sum_micros").unwrap(), 1234);
    }

    #[test]
    fn empty_snapshot_renders_empty_objects() {
        let text = MetricsRegistry::new().snapshot().to_json();
        let value = json::parse(&text).unwrap();
        assert!(value.get("counters").is_some());
        assert!(value.get("histograms").is_some());
    }

    /// Which bucket holds a single observation of `micros`.
    fn bucket_of(micros: u64) -> usize {
        let m = MetricsRegistry::new();
        m.observe_micros("h", micros);
        let h = &m.snapshot().histograms["h"];
        h.buckets.iter().position(|b| b.count == 1).unwrap()
    }

    #[test]
    fn values_exactly_on_a_bucket_edge_land_in_that_bucket() {
        // Bounds are inclusive: an observation equal to a bound belongs
        // to that bound's bucket, one more spills into the next.
        for (i, bound) in bucket_bounds_micros().into_iter().enumerate() {
            assert_eq!(bucket_of(bound), i, "exactly {bound}");
            assert_eq!(bucket_of(bound + 1), i + 1, "just over {bound}");
        }
    }

    #[test]
    fn zero_lands_in_the_smallest_bucket() {
        assert_eq!(bucket_of(0), 0);
        let m = MetricsRegistry::new();
        m.observe_micros("h", 0);
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.min_micros, 0);
        assert_eq!(h.max_micros, 0);
        assert_eq!(h.sum_micros, 0);
    }

    #[test]
    fn u64_max_lands_in_the_overflow_bucket_without_overflowing_sum() {
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
        let m = MetricsRegistry::new();
        m.observe_micros("h", u64::MAX);
        m.observe_micros("h", u64::MAX); // sum saturates, no panic
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum_micros, u64::MAX);
        assert_eq!(h.max_micros, u64::MAX);
        assert_eq!(h.buckets.last().unwrap().count, 2);
    }

    #[test]
    fn last_finite_bound_is_not_the_overflow_bucket() {
        let last_finite = *bucket_bounds_micros().last().unwrap();
        let m = MetricsRegistry::new();
        m.observe_micros("h", last_finite);
        let h = &m.snapshot().histograms["h"];
        assert_eq!(h.buckets[N_BUCKETS - 2].count, 1);
        assert_eq!(h.buckets[N_BUCKETS - 1].count, 0);
    }

    #[test]
    fn sub_decade_latencies_resolve_to_distinct_quantiles() {
        // The decade layout put 300µs and 900µs in one bucket; the
        // log-linear layout must tell them apart through quantiles.
        let m = MetricsRegistry::new();
        for _ in 0..50 {
            m.observe_micros("h", 300);
        }
        for _ in 0..50 {
            m.observe_micros("h", 900);
        }
        let h = &m.snapshot().histograms["h"];
        let p25 = h.quantile_micros(0.25);
        let p90 = h.quantile_micros(0.9);
        assert!(
            (p25 - 300.0).abs() <= quantile_error_bound(300.0),
            "p25 = {p25}"
        );
        assert!(
            (p90 - 900.0).abs() <= quantile_error_bound(900.0),
            "p90 = {p90}"
        );
        assert!(p90 > p25 * 2.0, "p25 = {p25}, p90 = {p90}");
    }

    #[test]
    fn quantiles_stay_within_the_documented_error_bound() {
        let m = MetricsRegistry::new();
        // 100 observations spread over 500..600µs.
        for i in 0..100u64 {
            m.observe_micros("h", 500 + i);
        }
        let h = &m.snapshot().histograms["h"];
        for (q, exact) in [(0.5, 550.0), (0.9, 590.0), (0.99, 599.0)] {
            let est = h.quantile_micros(q);
            assert!(
                (est - exact).abs() <= quantile_error_bound(exact),
                "q={q}: est {est} vs exact {exact}"
            );
        }
        // Single observation: exact because of the min/max clamp.
        let m = MetricsRegistry::new();
        m.observe_micros("one", 42);
        let h = &m.snapshot().histograms["one"];
        assert_eq!(h.quantile_micros(0.5), 42.0);
        assert_eq!(h.quantile_micros(0.99), 42.0);
        // Empty histogram.
        let empty = HistogramSnapshot {
            count: 0,
            sum_micros: 0,
            min_micros: 0,
            max_micros: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile_micros(0.5), 0.0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let m = MetricsRegistry::new();
        m.inc("events_total");
        m.add("rows", 512);
        m.set_gauge("serve.queue_depth", 3.0);
        m.set_gauge("serve.load", 0.75);
        m.observe_micros("stage.fra_micros", 1234);
        m.observe_micros("stage.fra_micros", 2_000_000_000);
        let snap = m.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        // The writer elides empty finite buckets; everything that
        // matters (counts, sums, quantiles) survives the round trip.
        assert_eq!(parsed.counters, snap.counters);
        assert_eq!(parsed.gauges, snap.gauges);
        let (a, b) = (
            &parsed.histograms["stage.fra_micros"],
            &snap.histograms["stage.fra_micros"],
        );
        assert_eq!(a.count, b.count);
        assert_eq!(a.sum_micros, b.sum_micros);
        assert_eq!(a.min_micros, b.min_micros);
        assert_eq!(a.max_micros, b.max_micros);
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile_micros(q), b.quantile_micros(q));
        }
    }

    #[test]
    fn from_json_parses_pre_pr8_decade_bucket_snapshots() {
        // A histogram exactly as PR ≤7 wrote it: dense decade buckets.
        let text = "{\"counters\":{\"events_total\":3},\
             \"gauges\":{\"serve.queue_depth\":2.0},\
             \"histograms\":{\"stage.fra_micros\":{\"count\":2,\"sum_micros\":1500,\
             \"min_micros\":500,\"max_micros\":1000,\"mean_micros\":750.0,\
             \"buckets\":[{\"le_micros\":1,\"count\":0},{\"le_micros\":10,\"count\":0},\
             {\"le_micros\":100,\"count\":0},{\"le_micros\":1000,\"count\":2},\
             {\"le_micros\":10000,\"count\":0},{\"le_micros\":100000,\"count\":0},\
             {\"le_micros\":1000000,\"count\":0},{\"le_micros\":10000000,\"count\":0},\
             {\"le_micros\":100000000,\"count\":0},{\"le_micros\":1000000000,\"count\":0},\
             {\"le_micros\":null,\"count\":0}]}}}";
        let snap = MetricsSnapshot::from_json(text).unwrap();
        let h = &snap.histograms["stage.fra_micros"];
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets.len(), 11);
        let p50 = h.quantile_micros(0.5);
        assert!((500.0..=1000.0).contains(&p50), "p50 = {p50}");
        // And it still renders to both output formats.
        assert!(snap.to_text().contains("stage_fra_micros_count 2"));
        assert!(MetricsSnapshot::from_json(&snap.to_json()).is_ok());
    }

    #[test]
    fn gauges_take_the_last_written_value() {
        let m = MetricsRegistry::new();
        m.set_gauge("depth", 4.0);
        m.set_gauge("depth", 2.0);
        assert_eq!(m.snapshot().gauges["depth"], 2.0);
    }

    #[test]
    fn text_exposition_renders_all_metric_kinds() {
        let m = MetricsRegistry::new();
        m.add("http_requests_total", 7);
        m.set_gauge("serve.queue_depth", 3.0);
        m.observe_micros("http.predict_micros", 5);
        m.observe_micros("http.predict_micros", 50_000);
        let text = m.snapshot().to_text();
        assert!(text.contains("# TYPE http_requests_total counter\nhttp_requests_total 7\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3.0\n"));
        assert!(text.contains("# TYPE http_predict_micros histogram\n"));
        // Buckets are cumulative: 5µs lands in its exact bucket (le=5),
        // 50_000µs in a log-linear bucket ≥ it, and +Inf == count.
        assert!(text.contains("http_predict_micros_bucket{le=\"5\"} 1\n"));
        assert!(text.contains("http_predict_micros_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("http_predict_micros_sum 50005\n"));
        assert!(text.contains("http_predict_micros_count 2\n"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line {line:?}");
        }
    }

    #[test]
    fn text_exposition_inf_bucket_always_equals_count() {
        // Even for a parsed snapshot whose buckets do not sum to count
        // (hand-edited or truncated file), +Inf must equal _count.
        let snap = MetricsSnapshot::from_json(
            "{\"counters\":{},\"histograms\":{\"h\":{\"count\":5,\"sum_micros\":50,\
             \"min_micros\":10,\"max_micros\":10,\
             \"buckets\":[{\"le_micros\":10,\"count\":3}]}}}",
        )
        .unwrap();
        let text = snap.to_text();
        assert!(text.contains("h_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("h_count 5\n"));
    }

    #[test]
    fn from_json_tolerates_missing_gauges_section() {
        let snap =
            MetricsSnapshot::from_json("{\"counters\":{\"a\":1},\"histograms\":{}}").unwrap();
        assert!(snap.gauges.is_empty());
        assert_eq!(snap.counters["a"], 1);
    }

    #[test]
    fn from_json_ignores_unknown_fields() {
        let text = "{\"counters\":{},\"histograms\":{\"h\":{\"count\":1,\
                     \"sum_micros\":5,\"min_micros\":5,\"max_micros\":5,\
                     \"mean_micros\":5.0,\"new_field\":[1,2],\
                     \"buckets\":[{\"le_micros\":null,\"count\":1,\"extra\":0}]}},\
                     \"future_section\":{\"x\":1}}";
        let snap = MetricsSnapshot::from_json(text).unwrap();
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.histograms["h"].buckets.len(), 1);
    }
}
