//! Tick source: replays the synthetic BTC market one day at a time.
//!
//! The batch pipeline hands the whole [`BtcMarket`] to downstream
//! stages at once; a stream consumer must not see day `t + 1` before it
//! has finished processing day `t`. [`SynthTickSource`] enforces that
//! by construction — it owns the simulated market and deals out
//! [`BtcTick`]s in index order, so the driver loop physically cannot
//! peek ahead.

use c100_synth::btc::{simulate_btc, BtcMarket, BtcTick};
use c100_synth::latent::simulate;
use c100_synth::SynthConfig;

/// Replays a simulated BTC market tick-by-tick.
pub struct SynthTickSource {
    market: BtcMarket,
    next: usize,
}

impl SynthTickSource {
    /// Simulates the market for `config` and positions the cursor at
    /// day 0. Only the latent paths and the BTC derivation run — not
    /// the full multi-asset universe — so construction is cheap enough
    /// for benches and tests.
    pub fn new(config: &SynthConfig) -> SynthTickSource {
        let latents = simulate(config);
        let market = simulate_btc(config, &latents);
        SynthTickSource { market, next: 0 }
    }

    /// Total observed days the source can emit.
    pub fn len(&self) -> usize {
        self.market.n_days()
    }

    /// True when the source holds no days at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Days not yet emitted.
    pub fn remaining(&self) -> usize {
        self.len() - self.next
    }

    /// The underlying market (for batch-parity checks in tests).
    pub fn market(&self) -> &BtcMarket {
        &self.market
    }

    /// Emits the next observed day, or `None` once the series is
    /// exhausted.
    pub fn next_tick(&mut self) -> Option<BtcTick> {
        if self.next >= self.market.n_days() {
            return None;
        }
        let tick = self.market.tick(self.next);
        self.next += 1;
        Some(tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_every_day_in_order_then_none() {
        let config = SynthConfig::small(5);
        let mut source = SynthTickSource::new(&config);
        let n = source.len();
        assert_eq!(n, config.n_days());
        let mut prev_date = None;
        let mut count = 0;
        while let Some(tick) = source.next_tick() {
            if let Some(prev) = prev_date {
                assert_eq!(tick.date, source.market().start.add_days(count as i32));
                assert!(tick.date > prev);
            }
            prev_date = Some(tick.date);
            count += 1;
        }
        assert_eq!(count, n);
        assert_eq!(source.remaining(), 0);
        assert!(source.next_tick().is_none());
    }

    #[test]
    fn ticks_match_the_market_series() {
        let config = SynthConfig::small(6);
        let mut source = SynthTickSource::new(&config);
        for t in 0..10 {
            let tick = source.next_tick().unwrap();
            assert_eq!(tick.close.to_bits(), source.market().close[t].to_bits());
            assert_eq!(tick.high.to_bits(), source.market().high[t].to_bits());
            assert_eq!(tick.low.to_bits(), source.market().low[t].to_bits());
            assert_eq!(tick.volume.to_bits(), source.market().volume[t].to_bits());
        }
    }
}
