//! Data-cleaning pass: the paper's preprocessing discards features that are
//! "flat or missing for very long periods" and removes duplicate values.

use crate::frame::Frame;

/// Thresholds controlling which features the cleaning pass discards.
#[derive(Debug, Clone, Copy)]
pub struct CleanConfig {
    /// Drop a feature whose longest missing run exceeds this many days.
    pub max_missing_run: usize,
    /// Drop a feature whose longest flat (unchanging) run exceeds this many
    /// days.
    pub max_flat_run: usize,
    /// Drop a feature with more than this fraction of missing samples.
    pub max_missing_fraction: f64,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            max_missing_run: 60,
            max_flat_run: 120,
            max_missing_fraction: 0.25,
        }
    }
}

/// Outcome of a cleaning pass.
#[derive(Debug, Clone, Default)]
pub struct CleanReport {
    /// Features dropped for a too-long missing run.
    pub dropped_missing_run: Vec<String>,
    /// Features dropped for a too-long flat run.
    pub dropped_flat: Vec<String>,
    /// Features dropped for too many missing samples overall.
    pub dropped_missing_fraction: Vec<String>,
}

impl CleanReport {
    /// Total number of features removed.
    pub fn total_dropped(&self) -> usize {
        self.dropped_missing_run.len()
            + self.dropped_flat.len()
            + self.dropped_missing_fraction.len()
    }
}

/// Removes features violating the config from the frame, in place.
///
/// Features in `protected` (typically the target column) are never dropped.
pub fn clean_frame(frame: &mut Frame, config: &CleanConfig, protected: &[&str]) -> CleanReport {
    let mut report = CleanReport::default();
    let names: Vec<String> = frame.column_names().iter().map(|s| s.to_string()).collect();
    for name in names {
        if protected.contains(&name.as_str()) {
            continue;
        }
        let col = frame.column(&name).expect("column listed but absent");
        let n = col.len().max(1);
        let missing_fraction = col.count_missing() as f64 / n as f64;
        // Ignore the leading missing run when judging interior gaps: a
        // feature that starts late is handled by the scenario cut, not here.
        let interior_missing_run = match col.first_present() {
            Some(first) => col.slice(first, col.len()).longest_missing_run(),
            None => col.len(),
        };
        if interior_missing_run > config.max_missing_run {
            report.dropped_missing_run.push(name.clone());
            frame.drop_column(&name).expect("drop listed column");
        } else if col.longest_flat_run() > config.max_flat_run {
            report.dropped_flat.push(name.clone());
            frame.drop_column(&name).expect("drop listed column");
        } else if missing_fraction > config.max_missing_fraction {
            report.dropped_missing_fraction.push(name.clone());
            frame.drop_column(&name).expect("drop listed column");
        }
    }
    report
}

/// Replaces exact consecutive duplicates beyond `max_consecutive` repeats
/// with interpolation anchors (NaN), so a later interpolation pass smooths
/// the stale stretch. Mirrors the paper's "removing duplicate values" step
/// without deleting rows (the panel must stay strictly daily).
pub fn blank_stale_repeats(frame: &mut Frame, max_consecutive: usize) {
    for col in frame.columns_mut() {
        let values = col.values_mut();
        let mut run_start = 0usize;
        let mut i = 1;
        let n = values.len();
        while i <= n {
            let continues = i < n
                && !values[i].is_nan()
                && !values[run_start].is_nan()
                && values[i] == values[run_start];
            if !continues {
                let run_len = i - run_start;
                if run_len > max_consecutive && !values[run_start].is_nan() {
                    // Keep the first sample of the stale run, blank the rest.
                    for v in values[(run_start + 1)..i].iter_mut() {
                        *v = f64::NAN;
                    }
                }
                run_start = i;
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;
    use crate::series::Series;

    fn frame_with(values: &[(&str, Vec<f64>)]) -> Frame {
        let len = values[0].1.len();
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), len);
        for (name, vals) in values {
            f.push_column(Series::new(*name, vals.clone())).unwrap();
        }
        f
    }

    #[test]
    fn drops_flat_features() {
        let mut f = frame_with(&[
            ("flat", vec![5.0; 10]),
            ("ok", (0..10).map(|i| i as f64).collect()),
        ]);
        let cfg = CleanConfig {
            max_flat_run: 5,
            ..CleanConfig::default()
        };
        let report = clean_frame(&mut f, &cfg, &[]);
        assert_eq!(report.dropped_flat, vec!["flat"]);
        assert!(f.has_column("ok"));
        assert!(!f.has_column("flat"));
    }

    #[test]
    fn drops_missing_heavy_features() {
        let mut sparse = vec![f64::NAN; 10];
        sparse[0] = 1.0;
        sparse[5] = 2.0;
        let mut f = frame_with(&[
            ("sparse", sparse),
            ("ok", (0..10).map(|i| i as f64).collect()),
        ]);
        let cfg = CleanConfig {
            max_missing_run: 3,
            ..CleanConfig::default()
        };
        let report = clean_frame(&mut f, &cfg, &[]);
        assert_eq!(report.total_dropped(), 1);
        assert!(!f.has_column("sparse"));
    }

    #[test]
    fn leading_missing_run_is_tolerated() {
        // Starts late but is dense afterwards — the scenario cut handles it.
        let mut values = vec![f64::NAN; 50];
        values.extend((0..50).map(|i| i as f64));
        let mut f = frame_with(&[("late", values)]);
        let cfg = CleanConfig {
            max_missing_run: 10,
            max_missing_fraction: 0.6,
            ..CleanConfig::default()
        };
        let report = clean_frame(&mut f, &cfg, &[]);
        assert_eq!(report.total_dropped(), 0);
        assert!(f.has_column("late"));
    }

    #[test]
    fn protected_columns_survive() {
        let mut f = frame_with(&[("target", vec![5.0; 10])]);
        let cfg = CleanConfig {
            max_flat_run: 2,
            ..CleanConfig::default()
        };
        clean_frame(&mut f, &cfg, &["target"]);
        assert!(f.has_column("target"));
    }

    #[test]
    fn blank_stale_repeats_keeps_first_sample() {
        let mut f = frame_with(&[("x", vec![1.0, 2.0, 2.0, 2.0, 2.0, 3.0])]);
        blank_stale_repeats(&mut f, 2);
        let x = f.column("x").unwrap().values();
        assert_eq!(x[0], 1.0);
        assert_eq!(x[1], 2.0);
        assert!(x[2].is_nan() && x[3].is_nan() && x[4].is_nan());
        assert_eq!(x[5], 3.0);
    }

    #[test]
    fn blank_stale_repeats_ignores_short_runs() {
        let mut f = frame_with(&[("x", vec![1.0, 1.0, 2.0, 2.0])]);
        blank_stale_repeats(&mut f, 2);
        assert_eq!(f.column("x").unwrap().values(), &[1.0, 1.0, 2.0, 2.0]);
    }
}
