//! Zero-dependency HTTP/1.1 inference server over the artifact store.
//!
//! `c100-serve` turns a directory managed by
//! [`ArtifactStore`](c100_store::ArtifactStore) into a long-running
//! prediction service built entirely on `std::net` and `std::sync` — no
//! async runtime, no HTTP framework. The pieces:
//!
//! - [`http`] — a strict, incremental HTTP/1.1 request parser and
//!   response writer with keep-alive: the parser yields multiple framed
//!   requests per connection (pipelining included) and persistence is
//!   negotiated per request from the version + `Connection` header.
//!   Bodies are `Content-Length` framed only; anything else (unknown
//!   methods, oversized request lines or headers, `Transfer-Encoding`)
//!   is rejected with the precise 4xx status.
//! - [`poll`] — a dependency-free `poll(2)` binding, the readiness
//!   primitive under the event loop.
//! - [`reactor`] — sharded event loops owning non-blocking connection
//!   tables: they parse requests, shed `503` when the queue is full,
//!   and write worker responses under `POLLOUT` readiness.
//! - [`queue`] — a bounded request queue between reactors and workers;
//!   when full, requests load-shed with `503` + `Retry-After` instead
//!   of piling up latency. Capacity is runtime-adjustable for tuning.
//! - [`tuner`] — optional self-tuning of worker count and queue depth
//!   from the observed queue-wait histogram.
//! - [`cache`] — a [`ModelCache`] mapping artifact
//!   ids to shared [`BatchPredictor`](c100_store::BatchPredictor)s.
//!   Artifacts are content-addressed and immutable, so cached entries
//!   never go stale; `POST /reload` re-reads the manifest to pick up
//!   models exported after startup without dropping in-flight requests.
//! - [`batcher`] — a sharded micro-batcher that coalesces queued
//!   `/predict` rows for the same artifact into one batch-predict
//!   call, flushing on a row budget or a wait deadline. Per-row
//!   predictions are independent of batch composition, so coalescing
//!   is bit-identical to serving each request alone.
//! - [`server`] — the acceptor + reactor + worker-pool assembly,
//!   request routing, metrics, tracing spans (`serve.accept` /
//!   `serve.parse` / `serve.batch` / `serve.predict`), and graceful
//!   shutdown (drain the queue, flush the batcher, flush reactor write
//!   buffers, join every thread).
//! - [`telemetry`] — preregistered lock-free metric handles
//!   ([`ServeMetrics`]) resolved once at startup, so request handling
//!   records counters and latency histograms without any lock or
//!   string formatting on the hot path.
//!
//! The server reuses the `c100-obs` observability substrate: request
//! and shed counters, per-endpoint latency histograms with the
//! queue-wait / handler-time / batcher-flush split, an in-flight
//! gauge, and batch-size histograms all live in a
//! [`MetricsRegistry`](c100_obs::MetricsRegistry) and render through
//! `GET /metrics`; spans feed the same `Tracer`/chrome-trace/compare
//! tooling as pipeline runs. An always-on
//! [`FlightRecorder`](c100_obs::FlightRecorder) keeps the most recent
//! request/batch/reload records in a bounded ring — `GET /debug/flight`
//! dumps it live, and shutdown (or a handler panic) writes it to
//! `flight.json` when [`ServeConfig::flight_path`] is set.

pub mod batcher;
pub mod cache;
pub mod http;
pub mod poll;
pub mod queue;
pub mod reactor;
pub mod server;
pub mod telemetry;
pub mod tuner;

pub use cache::ModelCache;
pub use http::{HttpError, Method, Request, RequestParser, Response, Version};
pub use server::{ServeConfig, Server, ServerHandle};
pub use telemetry::{EndpointMetrics, InflightGuard, ServeMetrics};

use std::fmt;

/// Errors surfaced while standing up or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept, read, write).
    Io(std::io::Error),
    /// The artifact store could not be opened or read.
    Store(c100_store::StoreError),
    /// Invalid server configuration (zero workers, bad address, ...).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "server I/O error: {e}"),
            ServeError::Store(e) => write!(f, "artifact store error: {e}"),
            ServeError::Config(msg) => write!(f, "invalid server configuration: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Store(e) => Some(e),
            ServeError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<c100_store::StoreError> for ServeError {
    fn from(e: c100_store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
