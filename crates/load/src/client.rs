//! The client half of a keep-alive connection: blocking writes, an
//! incremental response reader that consumes exactly one framed
//! response per call and leaves any over-read bytes buffered for the
//! next one. `Content-Length` framing only — matching what `c100-serve`
//! emits — with a hard cap on head size so a misbehaving server can't
//! balloon the buffer.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Longest response head the reader will buffer before giving up.
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// What one request/response exchange produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallOutcome {
    /// HTTP status code.
    pub status: u16,
    /// The response body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
    /// True when the server negotiated `Connection: close` — the
    /// caller must reconnect before the next call.
    pub close: bool,
}

/// One keep-alive connection to the server under load.
#[derive(Debug)]
pub struct LoadConnection {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LoadConnection {
    /// Connects with `timeout` applied to connect, reads and writes.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<LoadConnection> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(LoadConnection {
            stream,
            buf: Vec::new(),
        })
    }

    /// Writes one pre-rendered request and reads exactly one response.
    pub fn call(&mut self, wire: &[u8]) -> std::io::Result<CallOutcome> {
        self.stream.write_all(wire)?;
        self.read_response()
    }

    /// Reads from the socket into the buffer; EOF is an error because
    /// a response is still outstanding.
    fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed mid-response",
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    fn read_response(&mut self) -> std::io::Result<CallOutcome> {
        let head_end = loop {
            if let Some(pos) = find(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    "response head exceeds 64 KiB",
                ));
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("bad status line: {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        let mut close = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("bad Content-Length: {value:?}"),
                    )
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                close = value
                    .split(',')
                    .any(|token| token.trim().eq_ignore_ascii_case("close"));
            }
        }
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        // Keep anything past this response (a pipelined follow-up the
        // server pushed early) buffered for the next call.
        self.buf.drain(..body_start + content_length);
        Ok(CallOutcome {
            status,
            body,
            close,
        })
    }
}

/// First index of `needle` in `haystack`, if any.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A one-connection server thread that writes scripted bytes after
    /// consuming each incoming request head+body naively.
    fn scripted_server(script: Vec<Vec<u8>>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut sink = [0u8; 4096];
            for part in script {
                // Consume whatever request bytes arrived; the scripts
                // are one-response-per-request, so one read suffices
                // for these tests.
                let _ = stream.read(&mut sink);
                stream.write_all(&part).unwrap();
            }
        });
        addr
    }

    fn response(status: &str, body: &str, extra: &str) -> Vec<u8> {
        format!(
            "HTTP/1.1 {status}\r\nContent-Length: {}\r\n{extra}\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    #[test]
    fn keep_alive_calls_reuse_one_connection() {
        let addr = scripted_server(vec![
            response("200 OK", "{\"ok\":true}", "Connection: keep-alive\r\n"),
            response("200 OK", "second", "Connection: keep-alive\r\n"),
        ]);
        let mut conn = LoadConnection::connect(addr, Duration::from_secs(2)).unwrap();
        let first = conn.call(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, b"{\"ok\":true}");
        assert!(!first.close);
        let second = conn.call(b"GET /b HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(second.body, b"second");
    }

    #[test]
    fn an_early_pushed_second_response_stays_buffered() {
        // Both responses arrive in one burst; the reader must hand back
        // exactly the first and keep the second for the next call.
        let mut burst = response("200 OK", "one", "");
        burst.extend_from_slice(&response("503 Service Unavailable", "two", ""));
        let addr = scripted_server(vec![burst]);
        let mut conn = LoadConnection::connect(addr, Duration::from_secs(2)).unwrap();
        let first = conn.call(b"GET /a HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!((first.status, first.body.as_slice()), (200, &b"one"[..]));
        // No server read needed: the bytes are already client-side.
        let second = conn.read_response().unwrap();
        assert_eq!((second.status, second.body.as_slice()), (503, &b"two"[..]));
    }

    #[test]
    fn connection_close_is_surfaced_to_the_caller() {
        let addr = scripted_server(vec![response("200 OK", "x", "Connection: close\r\n")]);
        let mut conn = LoadConnection::connect(addr, Duration::from_secs(2)).unwrap();
        let outcome = conn.call(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        assert!(outcome.close);
    }

    #[test]
    fn eof_mid_response_is_an_error_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut sink = [0u8; 1024];
            let _ = stream.read(&mut sink);
            // Promise 100 bytes, deliver 3, hang up.
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nabc")
                .unwrap();
        });
        let mut conn = LoadConnection::connect(addr, Duration::from_secs(2)).unwrap();
        let err = conn.call(b"GET / HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }
}
