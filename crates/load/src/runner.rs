//! The load loop itself: a worker pool replaying a [`LoadPlan`]
//! against a live server in closed- or open-loop mode.
//!
//! * **Closed loop** — `connections` workers, each holding one
//!   keep-alive connection and firing its next request the moment the
//!   previous response lands. Measures the server's sustainable
//!   throughput at a fixed concurrency.
//! * **Open loop** — requests fire on a fixed schedule (`rate_per_sec`),
//!   regardless of how fast responses come back. Latency is measured
//!   from each request's *scheduled* fire time, so a stalled server
//!   shows up as growing latency instead of silently slowing the
//!   request stream (the coordinated-omission trap).
//!
//! Every completed exchange lands in the `load.request_micros`
//! histogram (the same log-linear buckets as the server side) plus the
//! `load.requests_total` / `load.shed_total` / `load.failed_total`
//! counters, so a load run's `metrics.json` diffs through
//! `repro compare` exactly like a pipeline run's.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use c100_obs::MetricsRegistry;

use crate::client::LoadConnection;
use crate::plan::LoadPlan;
use crate::report::LoadReport;

/// How the plan is driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// `connections` workers, next request on response.
    Closed {
        /// Concurrent keep-alive connections.
        connections: usize,
    },
    /// Fixed-rate schedule spread over a worker pool.
    Open {
        /// Target request rate across all workers.
        rate_per_sec: f64,
        /// Worker pool (and connection) size.
        connections: usize,
    },
}

/// Everything a run needs besides the plan.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Closed or open loop.
    pub mode: Mode,
    /// Seed echoed into the report (the plan already baked it in).
    pub seed: u64,
    /// Per-call connect/read/write timeout.
    pub timeout: Duration,
}

/// Per-worker outcome tallies, merged after the pool joins.
#[derive(Debug, Default)]
struct Tally {
    ok: u64,
    shed: u64,
    failed: u64,
    statuses: BTreeMap<u16, u64>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.failed += other.failed;
        for (status, n) in other.statuses {
            *self.statuses.entry(status).or_default() += n;
        }
    }
}

/// Replays `plan` against `config.addr` and reports what came back.
/// Worker threads share a single atomic cursor into the plan, so each
/// request is sent exactly once no matter how workers interleave.
pub fn run(plan: &LoadPlan, config: &LoadConfig, registry: &MetricsRegistry) -> LoadReport {
    let (connections, rate) = match config.mode {
        Mode::Closed { connections } => (connections.max(1), 0.0),
        Mode::Open {
            rate_per_sec,
            connections,
        } => (connections.max(1), rate_per_sec.max(1e-9)),
    };
    let schedule_rate = match config.mode {
        Mode::Closed { .. } => None,
        Mode::Open { .. } => Some(rate),
    };

    let latency = registry.histogram("load.request_micros");
    let requests_total = registry.counter("load.requests_total");
    let shed_total = registry.counter("load.shed_total");
    let failed_total = registry.counter("load.failed_total");

    let cursor = AtomicUsize::new(0);
    let start = Instant::now();
    let mut tally = Tally::default();
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(connections);
        for _ in 0..connections {
            let latency = latency.clone();
            let requests_total = requests_total.clone();
            let shed_total = shed_total.clone();
            let failed_total = failed_total.clone();
            let cursor = &cursor;
            workers.push(scope.spawn(move || {
                let mut local = Tally::default();
                let mut conn: Option<LoadConnection> = None;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= plan.len() {
                        break;
                    }
                    // Open loop: wait for this request's slot, then
                    // measure from the slot — not from the send — so
                    // schedule slip counts against the server.
                    let measured_from = match schedule_rate {
                        Some(rate) => {
                            let due = start + Duration::from_secs_f64(i as f64 / rate);
                            let now = Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                            due
                        }
                        None => Instant::now(),
                    };
                    if conn.is_none() {
                        match LoadConnection::connect(config.addr, config.timeout) {
                            Ok(c) => conn = Some(c),
                            Err(_) => {
                                requests_total.inc();
                                failed_total.inc();
                                local.failed += 1;
                                // Don't spin a dead server at full speed.
                                std::thread::sleep(Duration::from_millis(10));
                                continue;
                            }
                        }
                    }
                    let ready = conn.as_mut().expect("connection just ensured");
                    match ready.call(plan.wire(i)) {
                        Ok(outcome) => {
                            let micros = measured_from.elapsed().as_micros() as u64;
                            latency.observe_micros(micros);
                            requests_total.inc();
                            *local.statuses.entry(outcome.status).or_default() += 1;
                            match outcome.status {
                                200..=299 => local.ok += 1,
                                503 => {
                                    local.shed += 1;
                                    shed_total.inc();
                                }
                                _ => {
                                    local.failed += 1;
                                    failed_total.inc();
                                }
                            }
                            if outcome.close {
                                conn = None;
                            }
                        }
                        Err(_) => {
                            requests_total.inc();
                            failed_total.inc();
                            local.failed += 1;
                            conn = None;
                        }
                    }
                }
                local
            }));
        }
        for worker in workers {
            tally.merge(worker.join().expect("load worker panicked"));
        }
    });
    let elapsed = start.elapsed();

    let snapshot = registry.snapshot();
    let hist = &snapshot.histograms["load.request_micros"];
    let requests = tally.ok + tally.shed + tally.failed;
    LoadReport {
        mode: match config.mode {
            Mode::Closed { .. } => "closed".to_string(),
            Mode::Open { .. } => "open".to_string(),
        },
        connections,
        rate_per_sec: rate,
        seed: config.seed,
        requests,
        ok: tally.ok,
        shed: tally.shed,
        failed: tally.failed,
        statuses: tally.statuses,
        elapsed_secs: elapsed.as_secs_f64(),
        throughput_rps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
        mean_micros: hist.mean_micros(),
        p50_micros: hist.quantile_micros(0.50),
        p90_micros: hist.quantile_micros(0.90),
        p99_micros: hist.quantile_micros(0.99),
        max_micros: hist.max_micros,
    }
}
