//! Walk-forward backtest: a robustness check beyond the paper's single
//! split. The forecasting model is refit on an expanding window and
//! evaluated on each successive out-of-sample block.
//!
//! ```text
//! cargo run --release -p c100-core --example walk_forward_backtest
//! ```

use c100_core::dataset::assemble;
use c100_core::report::TextTable;
use c100_core::scenario::{build_scenario, Period};
use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::metrics::{mape, rmse};
use c100_ml::tree::MaxFeatures;
use c100_ml::Regressor;
use c100_timeseries::split::walk_forward_folds;

fn main() {
    let data = c100_synth::generate(&c100_synth::SynthConfig::small(17));
    let master = assemble(&data).expect("assemble");
    let window = 7;
    let scenario = build_scenario(&master, Period::Y2019, window).expect("scenario");

    let features: Vec<&str> = scenario.feature_names.iter().map(|s| s.as_str()).collect();
    let full = scenario
        .frame
        .to_matrix(&features, c100_core::TARGET)
        .expect("matrix");
    let x = Matrix::from_row_major(full.x.clone(), full.n_features).expect("matrix");

    let folds = walk_forward_folds(x.n_rows(), 4, x.n_rows() / 2).expect("folds");
    println!(
        "walk-forward backtest: {}-day horizon, {} features, {} folds\n",
        window,
        features.len(),
        folds.len()
    );

    let config = RandomForestConfig {
        n_estimators: 30,
        max_depth: Some(10),
        max_features: MaxFeatures::All,
        ..Default::default()
    };

    let mut table = TextTable::new(&["fold", "train days", "test days", "RMSE", "MAPE"]);
    for (k, (train_range, test_range)) in folds.iter().enumerate() {
        let train_rows: Vec<usize> = train_range.clone().collect();
        let test_rows: Vec<usize> = test_range.clone().collect();
        let x_train = x.take_rows(&train_rows);
        let y_train: Vec<f64> = train_rows.iter().map(|&i| full.y[i]).collect();
        let x_test = x.take_rows(&test_rows);
        let y_test: Vec<f64> = test_rows.iter().map(|&i| full.y[i]).collect();

        let model = config.fit(&x_train, &y_train, k as u64).expect("fit");
        let predictions = model.predict(&x_test);
        table.row(&[
            format!("{k}"),
            train_rows.len().to_string(),
            test_rows.len().to_string(),
            format!("{:.1}", rmse(&y_test, &predictions)),
            format!("{:.2}%", mape(&y_test, &predictions) * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\n(each fold trains strictly on the past — tree models cannot\n\
         extrapolate beyond seen levels, so late folds in a rising market\n\
         carry higher error; that is the expected failure mode, not a bug)"
    );
}
