//! O(1) incremental indicator state for streaming ingestion.
//!
//! The batch functions in [`moving`](crate::moving),
//! [`momentum`](crate::momentum) and [`volatility`](crate::volatility)
//! recompute a whole column from scratch; on a tick stream that turns
//! every new day into an O(n) pass. Each state here consumes one tick at
//! a time and emits exactly the value the batch function would have put
//! at that index, in O(1) per tick.
//!
//! **Parity contract.** Fed the same sequence, `update` is bit-identical
//! to the batch output — including `NaN` gaps, which poison the batch
//! recurrences and the incremental ones in exactly the same way:
//!
//! * [`SmaState`] replays `sma`'s running sum: the seed sum accumulates
//!   the first `window` samples in arrival order, then each tick does
//!   `sum += new − old`. A `NaN` entering the window drives the sum (and
//!   every later output) to `NaN` in both implementations.
//! * [`EmaState`] seeds with the SMA of the first window and then applies
//!   the `alpha·x + (1−alpha)·prev` recurrence — the same single pass the
//!   batch function makes.
//! * [`RsiState`] and [`AtrState`] replay Wilder's smoothing: an arrival-
//!   order seed average over the first `period` changes / true ranges,
//!   then `avg = (avg·(p−1) + x) / p`.
//!
//! **Resync.** The SMA running sum is the one recurrence that drifts:
//! `sum += new − old` accumulates rounding error relative to a fresh sum
//! over the current window. [`SmaState::with_resync`] recomputes the sum
//! from the ring buffer every `every` ticks, bounding the drift at the
//! cost of bit-parity with the batch column: after a resync the output is
//! only guaranteed within [`SMA_RESYNC_TOLERANCE`] (relative) of the
//! batch value, which the property tests assert. EMA, RSI and ATR carry
//! exponentially-fading state with no subtract-old step, so they cannot
//! drift from their batch twins and need no resync.

/// Relative tolerance between a resyncing [`SmaState`] and the batch
/// `sma` column. The drift a resync removes is a handful of ulps per
/// window turnover; 1e-9 is orders of magnitude above anything a daily
/// stream can accumulate yet tight enough to catch a wrong formula.
pub const SMA_RESYNC_TOLERANCE: f64 = 1e-9;

/// Fixed-capacity ring buffer over the trailing `window` samples.
#[derive(Debug, Clone)]
struct Ring {
    buf: Vec<f64>,
    head: usize,
    len: usize,
}

impl Ring {
    fn new(window: usize) -> Ring {
        Ring {
            buf: vec![0.0; window],
            head: 0,
            len: 0,
        }
    }

    /// Pushes a sample, returning the evicted oldest sample once full.
    fn push(&mut self, x: f64) -> Option<f64> {
        if self.len < self.buf.len() {
            let slot = (self.head + self.len) % self.buf.len();
            self.buf[slot] = x;
            self.len += 1;
            None
        } else {
            let old = self.buf[self.head];
            self.buf[self.head] = x;
            self.head = (self.head + 1) % self.buf.len();
            Some(old)
        }
    }

    fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Sum of the buffered samples in oldest-to-newest order.
    fn fresh_sum(&self) -> f64 {
        let mut sum = 0.0;
        for k in 0..self.len {
            sum += self.buf[(self.head + k) % self.buf.len()];
        }
        sum
    }
}

/// Incremental simple moving average (see [`crate::moving::sma`]).
#[derive(Debug, Clone)]
pub struct SmaState {
    ring: Ring,
    sum: f64,
    resync_every: Option<usize>,
    ticks_since_resync: usize,
}

impl SmaState {
    /// State for a `window`-day SMA.
    pub fn new(window: usize) -> SmaState {
        assert!(window >= 1, "window must be >= 1");
        SmaState {
            ring: Ring::new(window),
            sum: 0.0,
            resync_every: None,
            ticks_since_resync: 0,
        }
    }

    /// Recompute the running sum exactly from the buffered window every
    /// `every` ticks, bounding float drift (see the module docs).
    pub fn with_resync(mut self, every: usize) -> SmaState {
        assert!(every >= 1, "resync cadence must be >= 1");
        self.resync_every = Some(every);
        self
    }

    /// Consumes one tick; returns the SMA at this index (`NaN` during
    /// the warm-up prefix).
    pub fn update(&mut self, x: f64) -> f64 {
        match self.ring.push(x) {
            Some(old) => self.sum += x - old,
            None => self.sum += x,
        }
        if !self.ring.is_full() {
            return f64::NAN;
        }
        if let Some(every) = self.resync_every {
            self.ticks_since_resync += 1;
            if self.ticks_since_resync >= every {
                self.sum = self.ring.fresh_sum();
                self.ticks_since_resync = 0;
            }
        }
        self.sum / self.ring.buf.len() as f64
    }
}

/// Incremental exponential moving average (see [`crate::moving::ema`]).
#[derive(Debug, Clone)]
pub struct EmaState {
    window: usize,
    alpha: f64,
    /// Samples seen so far; the first `window` accumulate the SMA seed.
    count: usize,
    /// Seed sum while warming up, then the EMA itself.
    acc: f64,
}

impl EmaState {
    /// State for an EMA with span `window` (`alpha = 2 / (window + 1)`).
    pub fn new(window: usize) -> EmaState {
        assert!(window >= 1, "window must be >= 1");
        EmaState {
            window,
            alpha: 2.0 / (window as f64 + 1.0),
            count: 0,
            acc: 0.0,
        }
    }

    /// Consumes one tick; returns the EMA at this index (`NaN` during
    /// the warm-up prefix).
    pub fn update(&mut self, x: f64) -> f64 {
        self.count += 1;
        if self.count <= self.window {
            self.acc += x;
            if self.count == self.window {
                self.acc /= self.window as f64;
                return self.acc;
            }
            return f64::NAN;
        }
        self.acc = self.alpha * x + (1.0 - self.alpha) * self.acc;
        self.acc
    }
}

/// Incremental RSI with Wilder's smoothing (see
/// [`crate::momentum::rsi`]).
#[derive(Debug, Clone)]
pub struct RsiState {
    period: usize,
    count: usize,
    prev: f64,
    avg_gain: f64,
    avg_loss: f64,
}

impl RsiState {
    /// State for a `period`-day RSI.
    pub fn new(period: usize) -> RsiState {
        assert!(period >= 1, "period must be >= 1");
        RsiState {
            period,
            count: 0,
            prev: f64::NAN,
            avg_gain: 0.0,
            avg_loss: 0.0,
        }
    }

    /// Consumes one tick; returns the RSI at this index (`NaN` for the
    /// first `period` entries).
    pub fn update(&mut self, x: f64) -> f64 {
        self.count += 1;
        let change = x - self.prev;
        self.prev = x;
        if self.count == 1 {
            return f64::NAN;
        }
        let p = self.period as f64;
        if self.count <= self.period + 1 {
            // Seed phase: accumulate changes exactly as the batch loop
            // over t in 1..=period does.
            if change > 0.0 {
                self.avg_gain += change;
            } else {
                self.avg_loss -= change;
            }
            if self.count == self.period + 1 {
                self.avg_gain /= p;
                self.avg_loss /= p;
                return rsi_from(self.avg_gain, self.avg_loss);
            }
            return f64::NAN;
        }
        let (gain, loss) = if change > 0.0 {
            (change, 0.0)
        } else {
            (0.0, -change)
        };
        self.avg_gain = (self.avg_gain * (p - 1.0) + gain) / p;
        self.avg_loss = (self.avg_loss * (p - 1.0) + loss) / p;
        rsi_from(self.avg_gain, self.avg_loss)
    }
}

/// Shared RSI output formula (mirrors the batch `rsi_from`).
fn rsi_from(avg_gain: f64, avg_loss: f64) -> f64 {
    if avg_loss == 0.0 {
        if avg_gain == 0.0 {
            50.0
        } else {
            100.0
        }
    } else {
        100.0 - 100.0 / (1.0 + avg_gain / avg_loss)
    }
}

/// Incremental ATR with Wilder's smoothing (see
/// [`crate::volatility::atr`]).
#[derive(Debug, Clone)]
pub struct AtrState {
    period: usize,
    count: usize,
    prev_close: f64,
    /// True-range seed sum, then the smoothed ATR.
    acc: f64,
}

impl AtrState {
    /// State for a `period`-day ATR.
    pub fn new(period: usize) -> AtrState {
        assert!(period >= 1, "period must be >= 1");
        AtrState {
            period,
            count: 0,
            prev_close: f64::NAN,
            acc: 0.0,
        }
    }

    /// Consumes one OHLC tick; returns the ATR at this index (`NaN` for
    /// the first `period` entries). The day-0 true range (plain
    /// high − low) never enters the batch seed sum, and it does not
    /// here either.
    pub fn update(&mut self, high: f64, low: f64, close: f64) -> f64 {
        self.count += 1;
        let tr = (high - low)
            .max((high - self.prev_close).abs())
            .max((low - self.prev_close).abs());
        self.prev_close = close;
        if self.count == 1 {
            return f64::NAN;
        }
        let p = self.period as f64;
        if self.count <= self.period + 1 {
            self.acc += tr;
            if self.count == self.period + 1 {
                self.acc /= p;
                return self.acc;
            }
            return f64::NAN;
        }
        self.acc = (self.acc * (p - 1.0) + tr) / p;
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::momentum::rsi;
    use crate::moving::{ema, sma};
    use crate::volatility::atr;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 50.0)
            .collect()
    }

    #[test]
    fn sma_matches_batch_bitwise() {
        let values = ramp(200);
        for window in [1, 2, 5, 20, 50] {
            let batch = sma(&values, window);
            let mut state = SmaState::new(window);
            for (t, &x) in values.iter().enumerate() {
                let inc = state.update(x);
                assert_eq!(inc.to_bits(), batch[t].to_bits(), "w={window} t={t}");
            }
        }
    }

    #[test]
    fn ema_matches_batch_bitwise() {
        let values = ramp(200);
        for window in [1, 3, 14, 50] {
            let batch = ema(&values, window);
            let mut state = EmaState::new(window);
            for (t, &x) in values.iter().enumerate() {
                let inc = state.update(x);
                assert_eq!(inc.to_bits(), batch[t].to_bits(), "w={window} t={t}");
            }
        }
    }

    #[test]
    fn rsi_matches_batch_bitwise() {
        let values = ramp(200);
        for period in [1, 7, 14, 28] {
            let batch = rsi(&values, period);
            let mut state = RsiState::new(period);
            for (t, &x) in values.iter().enumerate() {
                let inc = state.update(x);
                assert_eq!(inc.to_bits(), batch[t].to_bits(), "p={period} t={t}");
            }
        }
    }

    #[test]
    fn atr_matches_batch_bitwise() {
        let close = ramp(200);
        let high: Vec<f64> = close.iter().map(|c| c * 1.02).collect();
        let low: Vec<f64> = close.iter().map(|c| c * 0.97).collect();
        for period in [1, 14, 28] {
            let batch = atr(&high, &low, &close, period);
            let mut state = AtrState::new(period);
            for t in 0..close.len() {
                let inc = state.update(high[t], low[t], close[t]);
                assert_eq!(inc.to_bits(), batch[t].to_bits(), "p={period} t={t}");
            }
        }
    }

    #[test]
    fn nan_gap_poisons_identically() {
        let mut values = ramp(120);
        values[40] = f64::NAN;
        let batch = sma(&values, 10);
        let mut state = SmaState::new(10);
        for (t, &x) in values.iter().enumerate() {
            let inc = state.update(x);
            assert_eq!(inc.to_bits(), batch[t].to_bits(), "t={t}");
        }
        // Once poisoned, the running sum never recovers — by design, in
        // both implementations.
        assert!(batch[119].is_nan());
    }

    #[test]
    fn resync_stays_within_tolerance() {
        let values = ramp(500);
        let batch = sma(&values, 20);
        let mut state = SmaState::new(20).with_resync(7);
        for (t, &x) in values.iter().enumerate() {
            let inc = state.update(x);
            if batch[t].is_nan() {
                assert!(inc.is_nan());
            } else {
                let rel = (inc - batch[t]).abs() / batch[t].abs().max(1.0);
                assert!(rel <= SMA_RESYNC_TOLERANCE, "t={t} rel={rel}");
            }
        }
    }

    #[test]
    fn short_input_stays_nan() {
        let mut state = SmaState::new(5);
        for x in [1.0, 2.0, 3.0, 4.0] {
            assert!(state.update(x).is_nan());
        }
        assert_eq!(state.update(5.0), 3.0);
    }
}
