//! Socket-level framing tests against a live server on loopback:
//! requests written one byte at a time, responses read in tiny chunks,
//! and every 4xx limit exercised over a real TCP connection.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_obs::MetricsRegistry;
use c100_serve::{ServeConfig, Server, ServerHandle};
use c100_store::{ArtifactStore, ModelArtifact, ModelPayload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c100_serve_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A tiny fitted RF artifact saved into a fresh store; returns the
/// store root, the artifact id, and rows it can predict on.
fn seeded_store(tag: &str) -> (PathBuf, String, Vec<Vec<f64>>) {
    let root = temp_store(tag);
    let mut rng = StdRng::seed_from_u64(17);
    let rows: Vec<Vec<f64>> = (0..60)
        .map(|_| (0..3).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 - r[1]).collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let config = RandomForestConfig {
        n_estimators: 5,
        max_depth: Some(4),
        ..Default::default()
    };
    let model = config.fit(&x, &y, 17).unwrap();
    let artifact = ModelArtifact {
        scenario: "2019_7".into(),
        period: "2019".into(),
        window: 7,
        features: (0..3).map(|i| format!("feat_{i}")).collect(),
        profile: "fast".into(),
        seed: 17,
        train_rows: x.n_rows() as u64,
        train_start: "2019-01-01".into(),
        train_end: "2019-03-01".into(),
        hyperparameters: BTreeMap::new(),
        model: ModelPayload::Rf(model),
    };
    let entry = ArtifactStore::open(&root).unwrap().save(&artifact).unwrap();
    (root, entry.id, rows)
}

fn start_server(root: &PathBuf) -> ServerHandle {
    let mut config = ServeConfig::new(root, "127.0.0.1:0");
    config.workers = 2;
    config.queue_depth = 16;
    config.max_batch = 4;
    config.max_wait = Duration::from_millis(2);
    config.max_body_bytes = 64 * 1024;
    Server::start(config, Arc::new(MetricsRegistry::new()), None).unwrap()
}

/// Sends raw bytes in `chunk`-sized writes and returns the full
/// response text (status line, headers, body). Half-closes the write
/// side after sending so the keep-alive server sees end-of-input and
/// releases the connection after its response.
fn roundtrip(server: &ServerHandle, raw: &[u8], chunk: usize) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    for piece in raw.chunks(chunk.max(1)) {
        stream.write_all(piece).unwrap();
        stream.flush().unwrap();
        if chunk < raw.len() {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

fn status_of(response: &str) -> u16 {
    response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"))
}

/// Splits a response at the blank line, returning (head, body).
fn split_response(response: &str) -> (&str, &str) {
    response
        .split_once("\r\n\r\n")
        .expect("response has a head terminator")
}

#[test]
fn single_byte_writes_parse_like_one_shot() {
    let (root, id, rows) = seeded_store("split_writes");
    let server = start_server(&root);
    let body = format!(
        "{{\"artifact\":\"{id}\",\"rows\":[[{},{},{}]]}}",
        rows[0][0], rows[0][1], rows[0][2]
    );
    let raw = format!(
        "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );

    let whole = roundtrip(&server, raw.as_bytes(), raw.len());
    let trickled = roundtrip(&server, raw.as_bytes(), 1);
    assert_eq!(status_of(&whole), 200, "{whole}");
    // Bodies identical regardless of write pattern.
    assert_eq!(split_response(&whole).1, split_response(&trickled).1);
    assert!(split_response(&whole).1.contains("\"forecasts\":["));

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn response_honours_its_content_length_under_partial_reads() {
    let (root, _, _) = seeded_store("partial_read");
    let server = start_server(&root);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(b"GET /models HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();

    // Read in 7-byte sips until EOF (`Connection: close` was requested,
    // so the server closes after this one response).
    let mut response = Vec::new();
    let mut buf = [0u8; 7];
    loop {
        match stream.read(&mut buf).unwrap() {
            0 => break,
            n => response.extend_from_slice(&buf[..n]),
        }
    }
    let text = String::from_utf8(response).unwrap();
    assert_eq!(status_of(&text), 200);
    let (head, body) = split_response(&text);
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length present")
        .parse()
        .unwrap();
    assert_eq!(body.len(), declared, "framing must match the declaration");
    assert!(head.contains("Connection: close"));

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn limit_violations_map_to_precise_statuses_over_tcp() {
    let (root, _, _) = seeded_store("limits");
    let server = start_server(&root);

    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"DELETE /models HTTP/1.1\r\n\r\n".to_vec(), 405),
        (
            format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000)).into_bytes(),
            414,
        ),
        (
            {
                let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
                while raw.len() <= 33 * 1024 {
                    raw.extend_from_slice(b"X-Pad: zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz\r\n");
                }
                raw.extend_from_slice(b"\r\n");
                raw
            },
            431,
        ),
        (
            b"POST /predict HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            400,
        ),
        (
            b"POST /predict HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n".to_vec(),
            413,
        ),
        (b"GET /nope HTTP/1.1\r\n\r\n".to_vec(), 404),
        (
            b"POST /models HTTP/1.1\r\nContent-Length: 0\r\n\r\n".to_vec(),
            405,
        ),
    ];
    for (raw, expected) in cases {
        let response = roundtrip(&server, &raw, raw.len());
        assert_eq!(
            status_of(&response),
            expected,
            "request {:?}...",
            String::from_utf8_lossy(&raw[..raw.len().min(40)])
        );
    }

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn schema_mismatch_400_names_every_offending_column() {
    let (root, id, _) = seeded_store("schema_400");
    let server = start_server(&root);
    // Columns reordered (swap 0 and 2) — both positions must be named.
    let body = format!(
        "{{\"artifact\":\"{id}\",\"columns\":[\"feat_2\",\"feat_1\",\"feat_0\"],\"rows\":[[1,2,3]]}}"
    );
    let raw = format!(
        "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = roundtrip(&server, raw.as_bytes(), raw.len());
    assert_eq!(status_of(&response), 400, "{response}");
    let (_, resp_body) = split_response(&response);
    for fragment in [
        "position 0 (expected 'feat_0', found 'feat_2')",
        "position 2 (expected 'feat_2', found 'feat_0')",
    ] {
        assert!(resp_body.contains(fragment), "{resp_body}");
    }

    // Missing + extra simultaneously: both named in one response.
    let body = format!(
        "{{\"artifact\":\"{id}\",\"columns\":[\"feat_0\",\"feat_1\",\"bonus\"],\"rows\":[[1,2,3]]}}"
    );
    let raw = format!(
        "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let response = roundtrip(&server, raw.as_bytes(), raw.len());
    assert_eq!(status_of(&response), 400);
    let (_, resp_body) = split_response(&response);
    assert!(resp_body.contains("missing ['feat_2']"), "{resp_body}");
    assert!(resp_body.contains("unexpected ['bonus']"), "{resp_body}");

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

/// Reads exactly one `Content-Length`-framed response off the stream,
/// leaving any following bytes (the next response) unread.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut raw = Vec::new();
    let mut buf = [0u8; 1];
    // Head, byte by byte, until the blank line.
    while !raw.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut buf).unwrap(), 1, "EOF inside head");
        raw.push(buf[0]);
    }
    let head = String::from_utf8(raw.clone()).unwrap();
    let declared: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("Content-Length present")
        .parse()
        .unwrap();
    let mut body = vec![0u8; declared];
    stream.read_exact(&mut body).unwrap();
    raw.extend_from_slice(&body);
    String::from_utf8(raw).unwrap()
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let (root, _, _) = seeded_store("keep_alive");
    let server = start_server(&root);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    for i in 0..5 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let response = read_one_response(&mut stream);
        assert_eq!(status_of(&response), 200, "request {i}: {response}");
        assert!(
            response.contains("Connection: keep-alive"),
            "request {i} should keep the connection: {response}"
        );
    }
    // The sixth request asks to close; the server must comply with EOF.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut rest = String::new();
    stream.read_to_string(&mut rest).unwrap();
    assert_eq!(status_of(&rest), 200);
    assert!(rest.contains("Connection: close"), "{rest}");

    // One TCP connection carried all six requests.
    let snap = server.registry().snapshot();
    assert_eq!(snap.counters["http.requests_total"], 6);
    assert_eq!(snap.counters["serve.connections_total"], 1);

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn pipelined_requests_come_back_in_order() {
    let (root, _, _) = seeded_store("pipelined");
    let server = start_server(&root);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // Three requests in one write; responses must arrive in request
    // order because the server runs one request per connection at a
    // time and buffers the rest.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\n\r\n\
              GET /models HTTP/1.1\r\n\r\n\
              GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    let first = read_one_response(&mut stream);
    let second = read_one_response(&mut stream);
    let mut third = String::new();
    stream.read_to_string(&mut third).unwrap();

    assert_eq!(status_of(&first), 200);
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    assert_eq!(status_of(&second), 200);
    assert!(second.contains("\"models\":["), "{second}");
    assert_eq!(status_of(&third), 200);
    assert!(third.contains("Connection: close"), "{third}");

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn malformed_second_request_closes_after_a_clean_first_response() {
    let (root, _, _) = seeded_store("malformed_second");
    let server = start_server(&root);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    // A valid request pipelined with garbage: the first response must
    // arrive intact, then a 4xx, then EOF — never a corrupted first
    // response.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\nNONSENSE GARBAGE\r\n\r\n")
        .unwrap();
    let first = read_one_response(&mut stream);
    assert_eq!(status_of(&first), 200, "{first}");
    assert!(first.contains("\"status\":\"ok\""), "{first}");
    let mut rest = String::new();
    stream.read_to_string(&mut rest).unwrap();
    assert_eq!(status_of(&rest), 400, "{rest}");
    assert!(rest.contains("Connection: close"), "{rest}");

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn half_open_connection_is_dropped_without_response() {
    let (root, _, _) = seeded_store("half_open");
    let server = start_server(&root);
    {
        // Write half a request line and hang up.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET /hea").unwrap();
    }
    // The server must survive and keep answering.
    let response = roundtrip(&server, b"GET /healthz HTTP/1.1\r\n\r\n", 64);
    assert_eq!(status_of(&response), 200);

    server.shutdown();
    std::fs::remove_dir_all(&root).ok();
}
