//! Run-to-run regression diffing: the engine behind `repro compare`.
//!
//! A [`RunData`] bundles what one `repro` run leaves on disk — the
//! metrics snapshot (`metrics.json`) and, when tracing was on, the span
//! profile (`profile.json`). [`compare`] diffs a baseline against a
//! current run and produces a [`RunComparison`]: one row per counter,
//! per histogram quantile, and per profile span, each with its delta.
//!
//! Only *time* rows gate the comparison — histogram p50 and per-call
//! span self-time. Counters are informational: a changed event count is
//! a behaviour difference, not a perf regression, and is better caught
//! by tests. Rows whose baseline is below a noise floor
//! ([`MIN_GATE_MICROS`]) never gate either; a 3µs stage that became 6µs
//! is jitter, not a regression.

use std::collections::{BTreeMap, BTreeSet};

use crate::json::{self, JsonError, Value};
use crate::metrics::MetricsSnapshot;
use crate::profile::ProfileReport;

/// Baseline values below this many microseconds are too noisy to gate
/// on (they still appear in the delta table).
pub const MIN_GATE_MICROS: f64 = 1_000.0;

/// Default regression threshold, in percent, for [`compare`].
pub const DEFAULT_FAIL_OVER_PCT: f64 = 20.0;

/// What one run left behind, parsed.
#[derive(Debug, Clone, Default)]
pub struct RunData {
    /// Parsed `metrics.json`, if present.
    pub metrics: Option<MetricsSnapshot>,
    /// Parsed `profile.json`, if present.
    pub profile: Option<ProfileReport>,
    /// Parsed `matrix.json` (a scenario-matrix report), if present.
    pub matrix: Option<MatrixSummary>,
}

/// One cell of a parsed `matrix.json`, reduced to what the gate needs.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCellSummary {
    /// Whether the cell completed (`"status":"ok"`).
    pub ok: bool,
    /// The cell's model MSE (NaN for failed cells).
    pub mse: f64,
}

/// A parsed scenario-matrix report (`matrix.json`).
///
/// Parsed generically through this crate's own JSON module so the
/// comparison engine needs no dependency on the matrix subsystem — any
/// file with the report's shape compares.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatrixSummary {
    /// The run fingerprint the report was produced under.
    pub fingerprint: String,
    /// Cells keyed by cell id.
    pub cells: BTreeMap<String, MatrixCellSummary>,
}

impl MatrixSummary {
    /// Parses a `matrix.json` report.
    pub fn from_json(text: &str) -> Result<MatrixSummary, JsonError> {
        let value = json::parse(text)?;
        let fingerprint = value.req_str("fingerprint")?.to_string();
        let cells_value = value
            .get("cells")
            .ok_or_else(|| JsonError::new("missing field \"cells\""))?;
        let items = match cells_value {
            Value::Array(items) => items,
            other => {
                return Err(JsonError::new(format!(
                    "field \"cells\" is not an array: {other:?}"
                )))
            }
        };
        let mut cells = BTreeMap::new();
        for item in items {
            let id = item.req_str("cell")?.to_string();
            let ok = item.req_str("status")? == "ok";
            let mse = item.req_float("mse")?;
            cells.insert(id, MatrixCellSummary { ok, mse });
        }
        Ok(MatrixSummary { fingerprint, cells })
    }
}

/// The kind of quantity a [`DeltaRow`] compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// A monotonic counter (informational only).
    Counter,
    /// A histogram quantile in microseconds.
    Quantile,
    /// Per-call span self-time in microseconds.
    SpanSelf,
    /// A matrix cell's model MSE (dimensionless — no noise floor).
    MatrixMse,
}

/// One compared quantity.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// What kind of quantity this is.
    pub kind: RowKind,
    /// Metric name (`"stage.fra_micros p50"`, `"2019_7/tree_fit self/call"`, …).
    pub name: String,
    /// Baseline value (`None` when the metric is new in the current run).
    pub baseline: Option<f64>,
    /// Current value (`None` when the metric disappeared).
    pub current: Option<f64>,
}

impl DeltaRow {
    /// Relative change in percent; `None` when either side is missing
    /// or the baseline is zero.
    pub fn delta_pct(&self) -> Option<f64> {
        match (self.baseline, self.current) {
            (Some(b), Some(c)) if b > 0.0 => Some((c - b) / b * 100.0),
            _ => None,
        }
    }

    /// Whether this row participates in the regression gate.
    pub fn gates(&self) -> bool {
        match self.kind {
            RowKind::Counter => false,
            // MSEs are dimensionless; the micros noise floor would mute
            // every matrix row, so they gate whenever both sides exist.
            RowKind::MatrixMse => self.baseline.is_some_and(|b| b.is_finite() && b > 0.0),
            RowKind::Quantile | RowKind::SpanSelf => {
                self.baseline.is_some_and(|b| b >= MIN_GATE_MICROS)
            }
        }
    }
}

/// The full diff of two runs.
#[derive(Debug, Clone)]
pub struct RunComparison {
    /// Every compared quantity, counters first, then quantiles, then spans.
    pub rows: Vec<DeltaRow>,
    /// Regression threshold in percent used by [`RunComparison::regressions`].
    pub fail_over_pct: f64,
    /// Structural matrix failures that gate unconditionally: a changed
    /// cell count, a cell that flipped from ok to failed, a cell that
    /// disappeared. Thresholds don't apply — these are behaviour
    /// changes, not noise.
    pub matrix_problems: Vec<String>,
}

impl RunComparison {
    /// Rows that gate and regressed past the threshold.
    pub fn regressions(&self) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| r.gates() && r.delta_pct().is_some_and(|d| d > self.fail_over_pct))
            .collect()
    }

    /// Whether the current run passes the gate.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty() && self.matrix_problems.is_empty()
    }

    /// Renders the delta table. Gating rows are marked with `!` when
    /// regressed; counters and sub-floor rows carry no marker.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>14} {:>14} {:>9}\n",
            "metric", "baseline", "current", "delta"
        ));
        for row in &self.rows {
            let fmt_side = |v: Option<f64>| match v {
                Some(v) if row.kind == RowKind::Counter => format!("{v:.0}"),
                Some(v) if row.kind == RowKind::MatrixMse => format!("{v:.4e}"),
                Some(v) => format!("{v:.0}us"),
                None => "-".to_string(),
            };
            let delta = match row.delta_pct() {
                Some(d) => format!("{d:+.1}%"),
                None => "-".to_string(),
            };
            let marker = if row.gates() && row.delta_pct().is_some_and(|d| d > self.fail_over_pct) {
                " !"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<44} {:>14} {:>14} {:>9}{}\n",
                row.name,
                fmt_side(row.baseline),
                fmt_side(row.current),
                delta,
                marker,
            ));
        }
        for problem in &self.matrix_problems {
            out.push_str(&format!("matrix: {problem} !\n"));
        }
        let regressions = self.regressions();
        if self.passed() {
            out.push_str(&format!(
                "OK: no tracked stage regressed more than {:.0}%\n",
                self.fail_over_pct
            ));
        } else {
            out.push_str(&format!(
                "FAIL: {} stage(s) regressed more than {:.0}%, {} matrix problem(s)\n",
                regressions.len(),
                self.fail_over_pct,
                self.matrix_problems.len(),
            ));
        }
        out
    }
}

/// Diffs two runs. `fail_over_pct` is the regression threshold in
/// percent ([`DEFAULT_FAIL_OVER_PCT`] for the CLI default).
pub fn compare(baseline: &RunData, current: &RunData, fail_over_pct: f64) -> RunComparison {
    let mut rows = Vec::new();

    let empty = MetricsSnapshot::default();
    let base_m = baseline.metrics.as_ref().unwrap_or(&empty);
    let curr_m = current.metrics.as_ref().unwrap_or(&empty);

    let counter_names: BTreeSet<&String> = base_m
        .counters
        .keys()
        .chain(curr_m.counters.keys())
        .collect();
    for name in counter_names {
        rows.push(DeltaRow {
            kind: RowKind::Counter,
            name: name.clone(),
            baseline: base_m.counters.get(name).map(|&v| v as f64),
            current: curr_m.counters.get(name).map(|&v| v as f64),
        });
    }

    let histogram_names: BTreeSet<&String> = base_m
        .histograms
        .keys()
        .chain(curr_m.histograms.keys())
        .collect();
    for name in histogram_names {
        // p90/p999 joined p50/p99 once the log-linear buckets made tail
        // quantiles trustworthy (≤25% error vs the old decade layout);
        // they compute fine on parsed pre-PR8 decade snapshots too.
        for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)] {
            rows.push(DeltaRow {
                kind: RowKind::Quantile,
                name: format!("{name} {label}"),
                baseline: base_m.histograms.get(name).map(|h| h.quantile_micros(q)),
                current: curr_m.histograms.get(name).map(|h| h.quantile_micros(q)),
            });
        }
    }

    let empty_profile = ProfileReport::default();
    let base_p = baseline.profile.as_ref().unwrap_or(&empty_profile);
    let curr_p = current.profile.as_ref().unwrap_or(&empty_profile);
    let span_keys: BTreeSet<(&String, &String)> = base_p
        .rows
        .iter()
        .chain(&curr_p.rows)
        .map(|r| (&r.scenario, &r.name))
        .collect();
    for (scenario, name) in span_keys {
        let self_per_call = |report: &ProfileReport| {
            report
                .row(scenario, name)
                .map(|r| r.self_micros as f64 / r.calls.max(1) as f64)
        };
        let label = if scenario.is_empty() {
            format!("span {name} self/call")
        } else {
            format!("span {scenario}/{name} self/call")
        };
        rows.push(DeltaRow {
            kind: RowKind::SpanSelf,
            name: label,
            baseline: self_per_call(base_p),
            current: self_per_call(curr_p),
        });
    }

    // Matrix reports: MSE rows per cell ok on both sides, structural
    // problems for anything that changed shape or flipped to failed.
    let mut matrix_problems = Vec::new();
    if let (Some(base), Some(curr)) = (&baseline.matrix, &current.matrix) {
        if base.cells.len() != curr.cells.len() {
            matrix_problems.push(format!(
                "cell count changed: {} -> {}",
                base.cells.len(),
                curr.cells.len()
            ));
        }
        for (id, base_cell) in &base.cells {
            match curr.cells.get(id) {
                None => matrix_problems.push(format!("cell {id} disappeared")),
                Some(curr_cell) => {
                    if base_cell.ok && !curr_cell.ok {
                        matrix_problems.push(format!("cell {id} regressed ok -> failed"));
                    }
                    if base_cell.ok && curr_cell.ok {
                        rows.push(DeltaRow {
                            kind: RowKind::MatrixMse,
                            name: format!("matrix {id} mse"),
                            baseline: Some(base_cell.mse),
                            current: Some(curr_cell.mse),
                        });
                    }
                }
            }
        }
    }

    RunComparison {
        rows,
        fail_over_pct,
        matrix_problems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ProfileRow;
    use crate::MetricsRegistry;

    fn run_with_stage(micros: u64) -> RunData {
        let m = MetricsRegistry::new();
        m.inc("events_total");
        m.observe_micros("stage.fra_micros", micros);
        RunData {
            metrics: Some(m.snapshot()),
            profile: Some(ProfileReport {
                rows: vec![ProfileRow {
                    scenario: "2019_7".into(),
                    name: "fra_iteration".into(),
                    calls: 4,
                    total_micros: micros * 4,
                    self_micros: micros * 4,
                }],
            }),
            matrix: None,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let run = run_with_stage(50_000);
        let cmp = compare(&run, &run, DEFAULT_FAIL_OVER_PCT);
        assert!(cmp.passed());
        assert!(cmp.regressions().is_empty());
        assert!(cmp.render().contains("OK:"));
        // All deltas are exactly zero.
        for row in &cmp.rows {
            if let Some(d) = row.delta_pct() {
                assert_eq!(d, 0.0, "{}", row.name);
            }
        }
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        let baseline = run_with_stage(50_000);
        let regressed = run_with_stage(100_000); // +100% on every time row
        let cmp = compare(&baseline, &regressed, DEFAULT_FAIL_OVER_PCT);
        assert!(!cmp.passed());
        let names: Vec<&str> = cmp.regressions().iter().map(|r| r.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("stage.fra_micros")));
        assert!(names
            .iter()
            .any(|n| n.contains("2019_7/fra_iteration self/call")));
        assert!(cmp.render().contains("FAIL:"));
        assert!(cmp.render().contains('!'));
    }

    #[test]
    fn improvement_and_small_baselines_do_not_gate() {
        // Faster run: never a regression.
        let cmp = compare(
            &run_with_stage(100_000),
            &run_with_stage(50_000),
            DEFAULT_FAIL_OVER_PCT,
        );
        assert!(cmp.passed());
        // Sub-floor baseline (3µs → 300µs is jitter territory).
        let cmp = compare(
            &run_with_stage(3),
            &run_with_stage(300),
            DEFAULT_FAIL_OVER_PCT,
        );
        assert!(cmp.passed());
    }

    #[test]
    fn counters_are_informational_only() {
        let mut baseline = run_with_stage(50_000);
        let current = run_with_stage(50_000);
        if let Some(m) = &mut baseline.metrics {
            m.counters.insert("events_total".into(), 1);
        }
        // Current has far more events — still passes.
        let m = MetricsRegistry::new();
        m.add("events_total", 10_000);
        let cmp = compare(&baseline, &current, DEFAULT_FAIL_OVER_PCT);
        assert!(cmp.passed());
        let counter_row = cmp
            .rows
            .iter()
            .find(|r| r.kind == RowKind::Counter)
            .unwrap();
        assert!(!counter_row.gates());
    }

    #[test]
    fn missing_sides_render_as_dashes() {
        let baseline = run_with_stage(50_000);
        let current = RunData::default();
        let cmp = compare(&baseline, &current, DEFAULT_FAIL_OVER_PCT);
        assert!(cmp.passed(), "missing data is not a regression");
        assert!(cmp.render().contains(" -"));
    }

    #[test]
    fn quantile_rows_cover_p50_through_p999() {
        let run = run_with_stage(50_000);
        let cmp = compare(&run, &run, DEFAULT_FAIL_OVER_PCT);
        for label in ["p50", "p90", "p99", "p999"] {
            assert!(
                cmp.rows.iter().any(|r| r.kind == RowKind::Quantile
                    && r.name == format!("stage.fra_micros {label}")),
                "missing {label} row"
            );
        }
    }

    #[test]
    fn pre_pr8_decade_snapshot_compares_against_a_current_run() {
        // A baseline written by PR ≤7 (dense decade buckets) must still
        // load, produce all four quantile rows, and gate correctly
        // against a snapshot from the new log-linear registry.
        let old = "{\"counters\":{\"events_total\":1},\
             \"histograms\":{\"stage.fra_micros\":{\"count\":1,\"sum_micros\":50000,\
             \"min_micros\":50000,\"max_micros\":50000,\
             \"buckets\":[{\"le_micros\":1,\"count\":0},{\"le_micros\":10,\"count\":0},\
             {\"le_micros\":100,\"count\":0},{\"le_micros\":1000,\"count\":0},\
             {\"le_micros\":10000,\"count\":0},{\"le_micros\":100000,\"count\":1},\
             {\"le_micros\":1000000,\"count\":0},{\"le_micros\":10000000,\"count\":0},\
             {\"le_micros\":100000000,\"count\":0},{\"le_micros\":1000000000,\"count\":0},\
             {\"le_micros\":null,\"count\":0}]}}}";
        let baseline = RunData {
            metrics: Some(MetricsSnapshot::from_json(old).expect("old snapshot parses")),
            profile: None,
            matrix: None,
        };
        let same = compare(&baseline, &run_with_stage(50_000), DEFAULT_FAIL_OVER_PCT);
        assert!(same.passed(), "{}", same.render());
        assert!(same.rows.iter().any(|r| r.name == "stage.fra_micros p999"));
        let regressed = compare(&baseline, &run_with_stage(200_000), DEFAULT_FAIL_OVER_PCT);
        assert!(!regressed.passed());
    }

    fn matrix_json(cells: &[(&str, &str, f64)]) -> String {
        let mut out = String::from(
            "{\"version\":1,\"fingerprint\":\"fp\",\"config\":\"cfg\",\"n_cells\":0,\
             \"ok\":0,\"failed\":0,\"cells\":[",
        );
        for (i, (id, status, mse)) in cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mse = if mse.is_nan() {
                "null".to_string()
            } else {
                format!("{mse:?}")
            };
            out.push_str(&format!(
                "{{\"cell\":\"{id}\",\"status\":\"{status}\",\"mse\":{mse}}}"
            ));
        }
        out.push_str("]}");
        out
    }

    fn run_with_matrix(cells: &[(&str, &str, f64)]) -> RunData {
        RunData {
            matrix: Some(MatrixSummary::from_json(&matrix_json(cells)).unwrap()),
            ..RunData::default()
        }
    }

    #[test]
    fn identical_matrix_reports_pass() {
        let run = run_with_matrix(&[("a/full/h1", "ok", 0.5), ("a/full/h7", "failed", f64::NAN)]);
        let cmp = compare(&run, &run, DEFAULT_FAIL_OVER_PCT);
        assert!(cmp.passed(), "{}", cmp.render());
        assert!(cmp.rows.iter().any(|r| r.kind == RowKind::MatrixMse));
    }

    #[test]
    fn matrix_mse_regression_fails_the_gate() {
        let baseline = run_with_matrix(&[("a/full/h1", "ok", 0.5)]);
        let worse = run_with_matrix(&[("a/full/h1", "ok", 0.9)]); // +80%
        let cmp = compare(&baseline, &worse, DEFAULT_FAIL_OVER_PCT);
        assert!(!cmp.passed());
        assert!(cmp
            .regressions()
            .iter()
            .any(|r| r.name == "matrix a/full/h1 mse"));
        // MSE values are far below the micros noise floor but still gate.
        let better = run_with_matrix(&[("a/full/h1", "ok", 0.4)]);
        assert!(compare(&baseline, &better, DEFAULT_FAIL_OVER_PCT).passed());
    }

    #[test]
    fn matrix_structural_changes_gate_unconditionally() {
        let baseline = run_with_matrix(&[("a", "ok", 0.5), ("b", "ok", 0.5)]);
        // A cell flipped to failed.
        let flipped = run_with_matrix(&[("a", "ok", 0.5), ("b", "failed", f64::NAN)]);
        let cmp = compare(&baseline, &flipped, DEFAULT_FAIL_OVER_PCT);
        assert!(!cmp.passed());
        assert!(cmp
            .matrix_problems
            .iter()
            .any(|p| p.contains("ok -> failed")));
        // A cell disappeared (count change too).
        let shrunk = run_with_matrix(&[("a", "ok", 0.5)]);
        let cmp = compare(&baseline, &shrunk, DEFAULT_FAIL_OVER_PCT);
        assert!(!cmp.passed());
        assert!(cmp
            .matrix_problems
            .iter()
            .any(|p| p.contains("cell count changed")));
        assert!(cmp
            .matrix_problems
            .iter()
            .any(|p| p.contains("disappeared")));
        assert!(cmp.render().contains("matrix: "));
        // A failed baseline cell recovering is not a problem.
        let failed_base = run_with_matrix(&[("a", "failed", f64::NAN)]);
        let recovered = run_with_matrix(&[("a", "ok", 0.5)]);
        assert!(compare(&failed_base, &recovered, DEFAULT_FAIL_OVER_PCT).passed());
    }

    #[test]
    fn missing_matrix_side_is_not_a_regression() {
        let with = run_with_matrix(&[("a", "ok", 0.5)]);
        let without = RunData::default();
        assert!(compare(&with, &without, DEFAULT_FAIL_OVER_PCT).passed());
        assert!(compare(&without, &with, DEFAULT_FAIL_OVER_PCT).passed());
    }

    #[test]
    fn matrix_summary_parses_real_report_shape() {
        let summary = MatrixSummary::from_json(&matrix_json(&[
            ("top100/full/h1", "ok", 1.25e8),
            ("top100/bull-1/h7", "failed", f64::NAN),
        ]))
        .unwrap();
        assert_eq!(summary.fingerprint, "fp");
        assert_eq!(summary.cells.len(), 2);
        assert!(summary.cells["top100/full/h1"].ok);
        assert!(!summary.cells["top100/bull-1/h7"].ok);
        assert!(summary.cells["top100/bull-1/h7"].mse.is_nan());
        assert!(
            MatrixSummary::from_json("{\"cells\":[]}").is_err(),
            "fingerprint required"
        );
        assert!(
            MatrixSummary::from_json("{\"fingerprint\":\"f\"}").is_err(),
            "cells required"
        );
    }

    #[test]
    fn threshold_is_configurable() {
        let cmp = compare(&run_with_stage(50_000), &run_with_stage(57_000), 10.0);
        assert!(!cmp.passed(), "+14% fails a 10% gate");
        let cmp = compare(&run_with_stage(50_000), &run_with_stage(57_000), 20.0);
        assert!(cmp.passed(), "+14% passes a 20% gate");
    }
}
