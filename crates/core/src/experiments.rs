//! Full-evaluation orchestration: runs all 10 scenarios and extracts every
//! table and figure of the paper's evaluation section.
//!
//! | Artifact | Extractor |
//! |---|---|
//! | Figure 1 (top-100 vs total cap) | [`figure1`] |
//! | Figure 2 (scaling-power tuning) | [`figure2`] |
//! | Table 1 (final vector sizes) | [`FullEvaluation::table1`] |
//! | Figures 3–4 (contribution factors) | [`FullEvaluation::contribution_figure`] |
//! | Table 3 (top-5 short/long) | [`FullEvaluation::table3`] |
//! | Table 4 (top-20 unique) | [`FullEvaluation::table4`] |
//! | Table 5 (improvement by window) | [`FullEvaluation::table5`] |
//! | Table 6 (improvement by category) | [`FullEvaluation::table6`] |
//! | §4.3 overall improvements | [`FullEvaluation::overall_improvements`] |

use std::collections::BTreeMap;
use std::time::Instant;

use c100_obs::{Event, Stage};
use c100_synth::{DataCategory, MarketData};
use c100_timeseries::{Frame, Series};

use crate::context::{duration_micros, RunContext};
use crate::contribution::CategoryContribution;
use crate::dataset::assemble;
use crate::diversity::{diversity_experiment, DiversityResult};
use crate::groups::{
    merge_group, unique_top, RankedFeatures, LONG_TERM_WINDOWS, SHORT_TERM_WINDOWS,
};
use crate::index::{figure2_frame, power_comparison, PowerComparison};
use crate::pipeline::{run_scenario_with, ScenarioResult, ScenarioSpec};
use crate::profile::Profile;
use crate::scenario::Period;
use crate::Result;

/// Results of the complete 10-scenario evaluation.
pub struct FullEvaluation {
    /// One pipeline result per scenario, in [`ScenarioSpec::all`] order.
    pub scenarios: Vec<ScenarioResult>,
    /// RF diversity experiment per scenario (same order).
    pub rf_diversity: Vec<DiversityResult>,
    /// XGB diversity experiment per scenario (same order).
    pub gbdt_diversity: Vec<DiversityResult>,
}

/// Runs every scenario plus both diversity experiments, silently.
/// Wrapper around [`run_full_evaluation_with`] with a
/// [`c100_obs::NullObserver`].
pub fn run_full_evaluation(data: &MarketData, profile: &Profile) -> Result<FullEvaluation> {
    run_full_evaluation_with(data, &RunContext::new(profile))
}

/// Runs every scenario plus both diversity experiments, reporting
/// progress to the context's observer: one `run_started`/`run_finished`
/// pair bracketing the whole evaluation, the full per-scenario pipeline
/// event stream, and a timed `diversity` stage per scenario.
pub fn run_full_evaluation_with(data: &MarketData, ctx: &RunContext<'_>) -> Result<FullEvaluation> {
    run_evaluation_with(data, &ScenarioSpec::all(), ctx)
}

/// Like [`run_full_evaluation_with`] but restricted to a chosen subset
/// of scenarios (the `repro --scenarios` flag). Table extractors over a
/// partial evaluation simply skip the missing scenarios.
pub fn run_evaluation_with(
    data: &MarketData,
    specs: &[ScenarioSpec],
    ctx: &RunContext<'_>,
) -> Result<FullEvaluation> {
    let profile = ctx.profile;
    let t_run = Instant::now();
    ctx.emit(Event::RunStarted {
        scenarios: specs.len(),
    });
    let master = assemble(data)?;
    let mut scenarios = Vec::with_capacity(specs.len());
    let mut rf_diversity = Vec::with_capacity(specs.len());
    let mut gbdt_diversity = Vec::with_capacity(specs.len());
    for spec in specs {
        let result = run_scenario_with(&master, spec, ctx)?;
        let id = spec.id();
        let seed = profile.stage_seed(&format!("{id}:diversity"));
        // The diversity stage runs after the scenario's own root span has
        // closed, so it opens a second scenario-tagged root to keep the
        // profile's per-scenario attribution intact.
        let diversity_span = ctx.trace.span_for(&id, "scenario");
        let div_ctx = ctx.with_trace(diversity_span.ctx());
        let (rf, gbdt) = div_ctx.time_stage(&id, Stage::Diversity, |_| -> Result<_> {
            let rf = diversity_experiment(
                &result.scenario,
                &result.final_features,
                &result.tuned_rf,
                seed,
            )?;
            let gbdt = diversity_experiment(
                &result.scenario,
                &result.final_features,
                &result.tuned_gbdt,
                seed ^ 0x9B,
            )?;
            Ok((rf, gbdt))
        })?;
        drop(diversity_span);
        rf_diversity.push(rf);
        gbdt_diversity.push(gbdt);
        scenarios.push(result);
    }
    ctx.emit(Event::RunFinished {
        scenarios: scenarios.len(),
        micros: duration_micros(t_run),
    });
    Ok(FullEvaluation {
        scenarios,
        rf_diversity,
        gbdt_diversity,
    })
}

impl FullEvaluation {
    fn by_spec(&self, period: Period, window: usize) -> Option<&ScenarioResult> {
        self.scenarios
            .iter()
            .find(|r| r.scenario.period == period && r.scenario.window == window)
    }

    /// Table 1: `(scenario id, final feature vector length)`.
    pub fn table1(&self) -> Vec<(String, usize)> {
        self.scenarios
            .iter()
            .map(|r| (r.scenario.id(), r.final_features.len()))
            .collect()
    }

    /// Figures 3/4: per window, the contribution factor of every category
    /// for the given period set.
    pub fn contribution_figure(&self, period: Period) -> Vec<(usize, Vec<CategoryContribution>)> {
        crate::scenario::WINDOWS
            .iter()
            .filter_map(|&w| {
                self.by_spec(period, w)
                    .map(|r| (w, r.contributions.clone()))
            })
            .collect()
    }

    fn group(&self, period: Period, windows: &[usize]) -> RankedFeatures {
        let members: Vec<&RankedFeatures> = windows
            .iter()
            .filter_map(|&w| self.by_spec(period, w).map(|r| &r.final_importance))
            .collect();
        merge_group(&members)
    }

    /// Table 3: per period set, the top-5 features of the short-term and
    /// long-term groups.
    pub fn table3(&self) -> BTreeMap<&'static str, (Vec<String>, Vec<String>)> {
        let mut out = BTreeMap::new();
        for period in Period::ALL {
            let short = self.group(period, &SHORT_TERM_WINDOWS);
            let long = self.group(period, &LONG_TERM_WINDOWS);
            out.insert(
                period.label(),
                (
                    short.top(5).iter().map(|s| s.to_string()).collect(),
                    long.top(5).iter().map(|s| s.to_string()).collect(),
                ),
            );
        }
        out
    }

    /// Table 4: per period set, the top-20 features unique to each group.
    pub fn table4(&self) -> BTreeMap<&'static str, (Vec<String>, Vec<String>)> {
        let mut out = BTreeMap::new();
        for period in Period::ALL {
            let short = self.group(period, &SHORT_TERM_WINDOWS);
            let long = self.group(period, &LONG_TERM_WINDOWS);
            out.insert(
                period.label(),
                (unique_top(&short, &long, 20), unique_top(&long, &short, 20)),
            );
        }
        out
    }

    /// Table 5: average RF improvement per prediction window, per set.
    pub fn table5(&self) -> Vec<(usize, f64, f64)> {
        crate::scenario::WINDOWS
            .iter()
            .map(|&w| {
                let get = |period: Period| {
                    self.rf_diversity
                        .iter()
                        .zip(&self.scenarios)
                        .find(|(_, s)| s.scenario.period == period && s.scenario.window == w)
                        .map(|(d, _)| d.mean_improvement())
                        .unwrap_or(f64::NAN)
                };
                (w, get(Period::Y2017), get(Period::Y2019))
            })
            .collect()
    }

    /// Table 6: average RF improvement per data category, per set.
    /// `NaN` marks a category absent from the set (rendered as "-").
    pub fn table6(&self) -> Vec<(String, f64, f64)> {
        let average = |period: Period, cat: DataCategory| -> f64 {
            let values: Vec<f64> = self
                .rf_diversity
                .iter()
                .zip(&self.scenarios)
                .filter(|(_, s)| s.scenario.period == period)
                .filter_map(|(d, _)| {
                    d.per_category
                        .iter()
                        .find(|c| c.category == cat.display_name())
                        .map(|c| c.improvement_pct)
                })
                .collect();
            if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            }
        };
        DataCategory::ALL
            .iter()
            .map(|&cat| {
                (
                    cat.display_name().to_string(),
                    average(Period::Y2017, cat),
                    average(Period::Y2019, cat),
                )
            })
            .collect()
    }

    /// §4.3: overall average improvement per model family and set,
    /// returned as `(label, value)` pairs.
    pub fn overall_improvements(&self) -> Vec<(String, f64)> {
        let mean_over = |diversity: &[DiversityResult], period: Period| -> f64 {
            let values: Vec<f64> = diversity
                .iter()
                .zip(&self.scenarios)
                .filter(|(_, s)| s.scenario.period == period)
                .map(|(d, _)| d.mean_improvement())
                .collect();
            values.iter().sum::<f64>() / values.len().max(1) as f64
        };
        vec![
            (
                "RF 2017".to_string(),
                mean_over(&self.rf_diversity, Period::Y2017),
            ),
            (
                "RF 2019".to_string(),
                mean_over(&self.rf_diversity, Period::Y2019),
            ),
            (
                "XGB 2017".to_string(),
                mean_over(&self.gbdt_diversity, Period::Y2017),
            ),
            (
                "XGB 2019".to_string(),
                mean_over(&self.gbdt_diversity, Period::Y2019),
            ),
        ]
    }
}

/// Figure 1: daily top-100 and total market caps (plus the share ratio).
pub fn figure1(data: &MarketData) -> Result<Frame> {
    let u = &data.universe;
    let mut frame = Frame::with_daily_index(u.start, u.n_days());
    frame.push_column(Series::new("top100_cap", u.top100_cap.clone()))?;
    frame.push_column(Series::new("total_cap", u.total_cap.clone()))?;
    frame.push_column(Series::new("top100_share", u.top100_share()))?;
    Ok(frame)
}

/// Figure 2: the Crypto100 series at powers 6/7/8 next to the BTC price,
/// plus the comparison summary used to pick power 7.
pub fn figure2(data: &MarketData) -> Result<(Frame, Vec<PowerComparison>)> {
    let frame = figure2_frame(&data.universe, &data.btc.close, &[6.0, 7.0, 8.0])?;
    let comparisons = power_comparison(&data.universe, &data.btc.close, &[6.0, 7.0, 8.0])?;
    Ok((frame, comparisons))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_synth::{generate, SynthConfig};

    #[test]
    fn figure1_frame_has_share_below_one() {
        let data = generate(&SynthConfig::small(151));
        let frame = figure1(&data).unwrap();
        for v in frame.column("top100_share").unwrap().values() {
            assert!(*v > 0.5 && *v <= 1.0);
        }
    }

    #[test]
    fn figure2_has_three_powers() {
        let data = generate(&SynthConfig::small(152));
        let (frame, comps) = figure2(&data).unwrap();
        assert_eq!(comps.len(), 3);
        assert!(frame.has_column("crypto100_p7"));
    }
}
