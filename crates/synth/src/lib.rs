//! # c100-synth
//!
//! A seedable latent-state market simulator that stands in for the paper's
//! proprietary data feeds (Coinmetrics, CoinGecko, ECB, LunarCrush, Google
//! Trends, Yahoo Finance). The substitution is documented in DESIGN.md; the
//! essential property it must preserve is *which feature families carry
//! predictive signal at which horizon*, because every experiment in the
//! paper is an ablation over exactly that structure.
//!
//! ## The latent model
//!
//! A handful of unobserved AR(1)/Ornstein–Uhlenbeck factors drive the
//! market ([`latent`]):
//!
//! * three **macro factors** (half-life ≈ 180 d) feed a **global trend**
//!   with a ~40-day lag;
//! * **traditional-market factors** share the global trend and lead the
//!   **crypto trend** `T` (half-life ≈ 90 d) by ~25 days;
//! * a **cycle** `C` (half-life ≈ 30 d) that stablecoin flows observe
//!   almost noiselessly;
//! * a fast **momentum** `F` (half-life ≈ 3 d) that technical and
//!   sentiment features capture;
//! * a near-unit-root **adoption** level `A` tracked by on-chain address
//!   and supply metrics;
//! * a two-state volatility **regime** chain giving crypto its fat tails.
//!
//! Daily BTC log-returns load on `T`, `C` and `F`; because an AR(1)
//! factor's autocorrelation horizon equals its half-life, each feature
//! family's forecasting reach at a `w`-day window emerges naturally: fast
//! factors predict short windows, slow factors long windows, and features
//! tracking the *level* (price, adoption, realized cap) matter at every
//! window since the paper's target is the future price level itself.
//!
//! ## Observed metrics
//!
//! Each of the ~430 daily metrics is a [`spec::MetricSpec`]: a named
//! transform of the latent paths plus measurement noise, a start date
//! (USDC metrics begin 2018-10, the fear-and-greed index 2018-02, …) and
//! optionally a deliberate data-quality defect so the cleaning phase has
//! something realistic to discard. Generators per category live in
//! [`onchain_btc`], [`onchain_usdc`], [`sentiment`], [`tradfi`] and
//! [`macro_econ`]; [`universe`] simulates the ~300-asset market-cap panel
//! from which the Crypto100 index and Figure 1 are computed; [`btc`]
//! produces the OHLCV inputs for the technical-indicator suite.
//!
//! The whole dataset is produced by [`generate`] and is a pure function of
//! [`SynthConfig`] — identical seeds give bit-identical data.

pub mod btc;
pub mod latent;
pub mod macro_econ;
pub mod onchain_btc;
pub mod onchain_usdc;
pub mod regime;
pub mod sentiment;
pub mod spec;
pub mod tradfi;
pub mod universe;

use c100_timeseries::{Date, Frame};

/// The data-source categories the paper studies. Display names match the
/// paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataCategory {
    /// Moving averages, oscillators, bands derived from BTC OHLCV.
    Technical,
    /// Bitcoin blockchain metrics.
    OnChainBtc,
    /// USDC stablecoin blockchain metrics (start late 2018).
    OnChainUsdc,
    /// Social media, search-trend and fear/greed metrics.
    Sentiment,
    /// Traditional market indices (stocks, bonds, FX, metals).
    TradFi,
    /// Macroeconomic indicators (rates, inflation, policy uncertainty).
    Macro,
}

impl DataCategory {
    /// All categories in the paper's presentation order.
    pub const ALL: [DataCategory; 6] = [
        DataCategory::Technical,
        DataCategory::OnChainBtc,
        DataCategory::OnChainUsdc,
        DataCategory::Sentiment,
        DataCategory::TradFi,
        DataCategory::Macro,
    ];

    /// The paper's display name for the category.
    pub fn display_name(self) -> &'static str {
        match self {
            DataCategory::Technical => "Technical Indicators",
            DataCategory::OnChainBtc => "On-chain Metrics (BTC)",
            DataCategory::OnChainUsdc => "On-chain Metrics (USDC)",
            DataCategory::Sentiment => "Sentiment and Interest Metrics",
            DataCategory::TradFi => "Traditional Market Indices",
            DataCategory::Macro => "Macroeconomic Indicators",
        }
    }
}

impl std::fmt::Display for DataCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

/// Configuration of a synthetic dataset run.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Master seed; every stream below derives from it.
    pub seed: u64,
    /// First observed day (the paper collects from 2017-01-01).
    pub start: Date,
    /// Last observed day (2023-06-30 in the paper).
    pub end: Date,
    /// Number of assets in the simulated universe (top-100 tracking needs
    /// comfortably more than 100).
    pub n_assets: usize,
    /// Hidden warm-up days simulated before `start` so latent factors and
    /// long indicators are in their stationary regime on day one.
    pub warmup_days: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            seed: 42,
            start: Date::from_ymd(2017, 1, 1).expect("valid constant"),
            end: Date::from_ymd(2023, 6, 30).expect("valid constant"),
            n_assets: 300,
            warmup_days: 400,
        }
    }
}

impl SynthConfig {
    /// A reduced configuration for tests: shorter period, fewer assets.
    pub fn small(seed: u64) -> Self {
        SynthConfig {
            seed,
            start: Date::from_ymd(2019, 1, 1).expect("valid constant"),
            end: Date::from_ymd(2020, 6, 30).expect("valid constant"),
            n_assets: 120,
            warmup_days: 250,
        }
    }

    /// Number of observed days.
    pub fn n_days(&self) -> usize {
        (self.end.days_between(self.start) + 1).max(0) as usize
    }
}

/// Everything the pipeline downstream needs: one frame per category plus
/// the raw inputs that feed derived artifacts.
pub struct MarketData {
    /// The configuration that produced this data.
    pub config: SynthConfig,
    /// BTC OHLCV + market cap (inputs to the technical suite).
    pub btc: btc::BtcMarket,
    /// On-chain BTC metric frame.
    pub onchain_btc: Frame,
    /// On-chain USDC metric frame (columns missing before late 2018).
    pub onchain_usdc: Frame,
    /// Sentiment and interest metric frame.
    pub sentiment: Frame,
    /// Traditional market index frame (weekend-forward-filled closes).
    pub tradfi: Frame,
    /// Macroeconomic indicator frame (monthly publication steps).
    pub macro_econ: Frame,
    /// The simulated asset universe (market caps, top-100 aggregates).
    pub universe: universe::Universe,
    /// The latent factor paths, exposed for diagnostics and tests.
    pub latents: latent::LatentPaths,
}

/// Generates the complete synthetic market dataset.
pub fn generate(config: &SynthConfig) -> MarketData {
    let latents = latent::simulate(config);
    let btc = btc::simulate_btc(config, &latents);
    let universe = universe::simulate_universe(config, &latents, &btc);
    let onchain_btc = spec::materialize(&onchain_btc::specs(config), config, &latents, &btc);
    let onchain_usdc = spec::materialize(&onchain_usdc::specs(config), config, &latents, &btc);
    let sentiment = spec::materialize(&sentiment::specs(config), config, &latents, &btc);
    let tradfi = tradfi::generate(config, &latents);
    let macro_econ = macro_econ::generate(config, &latents);
    MarketData {
        config: config.clone(),
        btc,
        onchain_btc,
        onchain_usdc,
        sentiment,
        tradfi,
        macro_econ,
        universe,
        latents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_day_count() {
        let cfg = SynthConfig::default();
        assert_eq!(cfg.n_days(), 2372);
        let small = SynthConfig::small(0);
        assert_eq!(small.n_days(), 547);
    }

    #[test]
    fn categories_have_distinct_names() {
        let names: std::collections::HashSet<&str> =
            DataCategory::ALL.iter().map(|c| c.display_name()).collect();
        assert_eq!(names.len(), DataCategory::ALL.len());
    }

    #[test]
    fn generate_is_deterministic() {
        let cfg = SynthConfig::small(7);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.btc.close, b.btc.close);
        assert_eq!(
            a.onchain_btc.column("RevAllTimeUSD").unwrap().values(),
            b.onchain_btc.column("RevAllTimeUSD").unwrap().values()
        );
        assert_eq!(a.universe.top100_cap, b.universe.top100_cap);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::small(1));
        let b = generate(&SynthConfig::small(2));
        assert_ne!(a.btc.close, b.btc.close);
    }
}
