//! The observer-carrying run context threaded through the orchestration
//! API.
//!
//! A [`RunContext`] bundles the compute [`Profile`] with the
//! [`RunObserver`] that receives pipeline telemetry. The silent
//! constructors ([`RunContext::new`]) make the context free when
//! observability is not wanted — every legacy entry point
//! (`run_scenario_on`, `run_full_evaluation`, …) wraps one of these, so
//! existing callers keep compiling unchanged.

use std::time::Instant;

use c100_obs::{Event, NullObserver, RunObserver, Stage};

use crate::profile::Profile;

/// Shared state for one pipeline run: the compute profile plus the event
/// sink. Cheap to construct and copy; borrows both members.
#[derive(Clone, Copy)]
pub struct RunContext<'a> {
    /// The compute profile (grids, folds, sampling counts, master seed).
    pub profile: &'a Profile,
    /// Receives every pipeline event.
    pub observer: &'a dyn RunObserver,
}

impl<'a> RunContext<'a> {
    /// A silent context: all events go to [`NullObserver`].
    pub fn new(profile: &'a Profile) -> RunContext<'a> {
        RunContext {
            profile,
            observer: &NullObserver,
        }
    }

    /// A context that reports to `observer`.
    pub fn with_observer(profile: &'a Profile, observer: &'a dyn RunObserver) -> RunContext<'a> {
        RunContext { profile, observer }
    }

    /// Emits one event.
    pub fn emit(&self, event: Event) {
        self.observer.on_event(&event);
    }

    /// Runs `f` bracketed by [`Event::StageStarted`] /
    /// [`Event::StageFinished`] events carrying the measured duration.
    pub fn time_stage<T>(&self, scenario: &str, stage: Stage, f: impl FnOnce() -> T) -> T {
        self.emit(Event::StageStarted {
            scenario: scenario.to_string(),
            stage,
        });
        let start = Instant::now();
        let out = f();
        self.emit(Event::StageFinished {
            scenario: scenario.to_string(),
            stage,
            micros: duration_micros(start),
        });
        out
    }
}

/// Microseconds elapsed since `start`, saturating at `u64::MAX`.
pub(crate) fn duration_micros(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_obs::RecordingObserver;

    #[test]
    fn time_stage_brackets_the_closure() {
        let profile = Profile::fast();
        let rec = RecordingObserver::new();
        let ctx = RunContext::with_observer(&profile, &rec);
        let out = ctx.time_stage("2019_7", Stage::Fra, || 42);
        assert_eq!(out, 42);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            Event::StageStarted { scenario, stage: Stage::Fra } if scenario == "2019_7"
        ));
        assert!(matches!(
            &events[1],
            Event::StageFinished { scenario, stage: Stage::Fra, .. } if scenario == "2019_7"
        ));
    }

    #[test]
    fn silent_context_swallows_events() {
        let profile = Profile::fast();
        let ctx = RunContext::new(&profile);
        // Nothing to assert beyond "does not panic": NullObserver drops it.
        ctx.emit(Event::RunStarted { scenarios: 10 });
        assert_eq!(ctx.profile.cv_folds, profile.cv_folds);
    }
}
