//! Online monitors that decide when the served model has gone stale.
//!
//! Two complementary signals:
//!
//! * [`DriftMonitor`] — covariate shift. At fit time it captures the
//!   per-feature mean/σ of the training matrix; each live feature row
//!   is scored as its worst absolute z-score against that baseline.
//!   A row far outside the training distribution means the model is
//!   extrapolating regardless of how accurate it used to be.
//! * [`DecayMonitor`] — label shift. Forecast error is only observable
//!   after the prediction horizon matures: a forecast made at tick `t`
//!   for horizon `h` is scored against the realized return at `t + h`.
//!   The monitor keeps the pending forecasts in a FIFO, folds each
//!   matured one into a rolling MSE window, and reports decay once the
//!   rolling MSE exceeds a configured multiple of the model's own
//!   fit-time training MSE.
//!
//! Both are plain data — the [`crate::runner`] loop owns the clock and
//! decides what a trigger is worth (triggers are rate-limited there, so
//! a persistently drifted regime cannot refit on every tick).

use std::collections::VecDeque;

use c100_ml::data::Matrix;

/// Per-feature z-score monitor against fit-time column statistics.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    mean: Vec<f64>,
    std: Vec<f64>,
    threshold: f64,
}

impl DriftMonitor {
    /// Captures column mean/σ of the training matrix. Columns with ~0
    /// variance get σ clamped to a tiny floor so a later shift on them
    /// registers as a (huge) finite z-score instead of a division by
    /// zero.
    pub fn fit(x: &Matrix, threshold: f64) -> DriftMonitor {
        let n = x.n_rows().max(1) as f64;
        let width = x.n_features();
        let mut mean = vec![0.0; width];
        for r in 0..x.n_rows() {
            for (m, v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; width];
        for r in 0..x.n_rows() {
            for (c, v) in x.row(r).iter().enumerate() {
                let d = v - mean[c];
                var[c] += d * d;
            }
        }
        let std = var
            .iter()
            .zip(&mean)
            .map(|(v, m)| (v / n).sqrt().max(1e-9 * m.abs()).max(1e-12))
            .collect();
        DriftMonitor {
            mean,
            std,
            threshold,
        }
    }

    /// Worst absolute z-score of the row against the fit-time baseline
    /// (`NaN` entries are ignored — warm-up rows must not look like
    /// drift).
    pub fn max_z(&self, row: &[f64]) -> f64 {
        row.iter()
            .zip(self.mean.iter().zip(&self.std))
            .map(|(x, (m, s))| ((x - m) / s).abs())
            .filter(|z| z.is_finite())
            .fold(0.0, f64::max)
    }

    /// True when the row sits outside the training distribution.
    pub fn drifted(&self, row: &[f64]) -> bool {
        self.max_z(row) > self.threshold
    }

    /// The configured z-score threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

/// Rolling-MSE decay monitor with horizon-aware scoring.
#[derive(Debug, Clone)]
pub struct DecayMonitor {
    horizon: usize,
    window: usize,
    ratio: f64,
    reference_mse: f64,
    /// Forecasts awaiting maturity: `(tick made at, predicted return)`.
    pending: VecDeque<(usize, f64)>,
    /// Squared errors of the most recent matured forecasts.
    errors: VecDeque<f64>,
}

impl DecayMonitor {
    /// A monitor for `horizon`-day forecasts: decay fires once the
    /// rolling MSE over the last `window` matured forecasts exceeds
    /// `ratio × reference_mse` (the model's fit-time training MSE).
    pub fn new(horizon: usize, window: usize, ratio: f64, reference_mse: f64) -> DecayMonitor {
        assert!(horizon >= 1, "horizon must be >= 1");
        assert!(window >= 1, "window must be >= 1");
        DecayMonitor {
            horizon,
            window,
            ratio,
            reference_mse,
            pending: VecDeque::new(),
            errors: VecDeque::new(),
        }
    }

    /// Records a forecast made at `tick`; it matures at
    /// `tick + horizon`.
    pub fn predicted(&mut self, tick: usize, forecast: f64) {
        self.pending.push_back((tick, forecast));
    }

    /// Scores the forecast that was made at `prediction_tick` (i.e. the
    /// current tick is `prediction_tick + horizon`) against the
    /// realized return. Stale pending entries from before a rollover's
    /// [`reset`](Self::reset) are silently dropped.
    pub fn observe_realized(&mut self, prediction_tick: usize, realized: f64) {
        while let Some(&(tick, forecast)) = self.pending.front() {
            if tick > prediction_tick {
                return;
            }
            self.pending.pop_front();
            if tick == prediction_tick {
                let err = forecast - realized;
                self.errors.push_back(err * err);
                if self.errors.len() > self.window {
                    self.errors.pop_front();
                }
                return;
            }
        }
    }

    /// Rolling MSE once the window is full; `None` while it fills.
    pub fn rolling_mse(&self) -> Option<f64> {
        if self.errors.len() < self.window {
            return None;
        }
        Some(self.errors.iter().sum::<f64>() / self.errors.len() as f64)
    }

    /// True once a full window of matured forecasts averages worse than
    /// `ratio × reference_mse`.
    pub fn decayed(&self) -> bool {
        match self.rolling_mse() {
            Some(mse) => mse > self.ratio * self.reference_mse,
            None => false,
        }
    }

    /// Rebaselines after a rollover: the new model's training MSE
    /// becomes the reference, and forecasts made by the old model —
    /// pending and scored alike — are discarded.
    pub fn reset(&mut self, reference_mse: f64) {
        self.reference_mse = reference_mse;
        self.pending.clear();
        self.errors.clear();
    }

    /// The forecast horizon in ticks.
    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: &[[f64; 2]]) -> Matrix {
        Matrix::from_row_major(rows.iter().flatten().copied().collect(), 2).unwrap()
    }

    #[test]
    fn drift_scores_z_against_fit_baseline() {
        let x = matrix(&[[0.0, 10.0], [2.0, 12.0], [4.0, 14.0], [6.0, 16.0]]);
        let monitor = DriftMonitor::fit(&x, 3.0);
        // In-distribution row: mean is (3, 13), σ ≈ (2.24, 2.24).
        assert!(!monitor.drifted(&[3.0, 13.0]));
        assert!(monitor.max_z(&[3.0, 13.0]) < 0.1);
        // 10σ shift on the first feature only.
        assert!(monitor.drifted(&[3.0 + 22.4, 13.0]));
        // NaN warm-up entries are ignored, not drift.
        assert!(!monitor.drifted(&[f64::NAN, 13.0]));
    }

    #[test]
    fn drift_handles_constant_columns() {
        let x = matrix(&[[5.0, 1.0], [5.0, 2.0], [5.0, 3.0], [5.0, 4.0]]);
        let monitor = DriftMonitor::fit(&x, 4.0);
        assert!(!monitor.drifted(&[5.0, 2.5]));
        // Any movement on a constant column is an enormous finite z.
        assert!(monitor.drifted(&[5.1, 2.5]));
        assert!(monitor.max_z(&[5.1, 2.5]).is_finite());
    }

    #[test]
    fn decay_waits_for_the_horizon_and_a_full_window() {
        let mut monitor = DecayMonitor::new(3, 2, 2.0, 0.01);
        monitor.predicted(0, 0.5);
        monitor.predicted(1, 0.5);
        assert!(!monitor.decayed());
        assert_eq!(monitor.rolling_mse(), None);
        // Tick 3 matures the forecast made at tick 0.
        monitor.observe_realized(0, 0.0); // err² = 0.25
        assert_eq!(monitor.rolling_mse(), None);
        monitor.observe_realized(1, 0.0); // window full: mse = 0.25
        assert_eq!(monitor.rolling_mse(), Some(0.25));
        assert!(monitor.decayed());
    }

    #[test]
    fn decay_window_rolls_and_reset_rebaselines() {
        let mut monitor = DecayMonitor::new(1, 2, 2.0, 1.0);
        for t in 0..4 {
            monitor.predicted(t, 10.0);
        }
        monitor.observe_realized(0, 10.0);
        monitor.observe_realized(1, 10.0);
        assert_eq!(monitor.rolling_mse(), Some(0.0));
        assert!(!monitor.decayed());
        // Two bad forecasts push the two perfect ones out of the window.
        monitor.observe_realized(2, 0.0);
        monitor.observe_realized(3, 0.0);
        assert_eq!(monitor.rolling_mse(), Some(100.0));
        assert!(monitor.decayed());

        monitor.reset(50.0);
        assert_eq!(monitor.rolling_mse(), None);
        assert!(!monitor.decayed());
    }

    #[test]
    fn stale_pending_forecasts_are_skipped() {
        let mut monitor = DecayMonitor::new(2, 1, 2.0, 1.0);
        monitor.predicted(0, 1.0);
        monitor.predicted(5, 2.0);
        // Maturity for tick 5 arrives after tick 0 was never scored
        // (e.g. its realization was skipped); the stale entry must not
        // be scored against tick 5's realization.
        monitor.observe_realized(5, 2.0);
        assert_eq!(monitor.rolling_mse(), Some(0.0));
    }
}
