//! Regenerates every table and figure of the paper's evaluation section,
//! and serves persisted models back as forecasts.
//!
//! ```text
//! repro [--profile smoke|fast|full] [--seed N] [--out DIR]
//!       [--split exact|hist[:BINS]] [--log-jsonl PATH] [--trace PATH]
//!       [--quiet] [--scenarios ID,ID,...] [--save-artifacts DIR]
//!       <artifact>...
//!
//! artifacts:
//!   fig1    Top-100 vs total market cap (Figure 1)
//!   fig2    Crypto100 scaling-power tuning (Figures 2a/2b)
//!   table1  Final feature-vector sizes per scenario
//!   fig3    Category contribution factors, set 2017 (Figure 3)
//!   fig4    Category contribution factors, set 2019 (Figure 4)
//!   table3  Top-5 short/long-term features
//!   table4  Top-20 unique short/long-term features
//!   table5  Avg MSE improvement by prediction window (RF)
//!   table6  Avg MSE improvement by data category (RF)
//!   overall Overall improvements, RF and XGB (§4.3)
//!   all     Everything above
//!
//! repro predict --store DIR --scenario ID --features CSV
//!               [--model rf|gbdt] [--engine interpreted|compiled]
//!               [--out CSV] [--trace PATH]
//!
//! repro serve --store DIR --addr 127.0.0.1:PORT [--workers N]
//!             [--queue-depth N] [--max-batch N] [--max-wait-ms N]
//!             [--reactors N] [--tune] [--max-workers N]
//!             [--idle-timeout-ms N]
//!             [--engine interpreted|compiled] [--trace PATH]
//!             [--flight PATH]
//!
//! repro load --addr HOST:PORT [--mode closed|open] [--connections N]
//!            [--rate R] [--requests N] [--seed N]
//!            [--scenario ID --features CSV] [--rows-per-request N]
//!            [--out DIR] [--slo-p99-ms F] [--slo-error-rate F]
//!            [--timeout-ms N] [--quiet]
//!
//! repro stream --store DIR [--ticks N] [--seed N] [--scenario ID]
//!              [--refit-every N] [--min-train N] [--min-refit-gap N]
//!              [--drift-z Z] [--decay-ratio R] [--decay-window N]
//!              [--resync-every N] [--retain N] [--serve ADDR]
//!              [--out DIR] [--trace PATH] [--flight PATH] [--quiet]
//!
//! repro matrix [--profile smoke|fast|full] [--seed N] [--threads N]
//!              [--out DIR] [--store DIR] [--fresh]
//!              [--families CSV] [--horizons CSV]
//!              [--trace PATH] [--flight PATH] [--quiet]
//!
//! repro compare BASELINE_DIR CURRENT_DIR [--fail-over-pct N]
//! ```
//!
//! Figure series are written as CSV into `--out` (default `results/`);
//! tables print to stdout and are also saved as JSON. Pipeline runs emit
//! structured telemetry: progress lines on stderr (suppress with
//! `--quiet`), an optional machine-readable event log (`--log-jsonl`),
//! and aggregated run metrics written to `<out>/metrics.json`.
//!
//! `--trace PATH` additionally records hierarchical spans through the
//! whole pipeline (scenario → stage → FRA iteration → per-tree fit),
//! writes them as Chrome Trace Event JSON to PATH (loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>), writes the
//! aggregated per-scenario profile to `<out>/profile.json`, and prints a
//! self-time table.
//!
//! `--split` overrides the split-search strategy for every model in the
//! run: the default is quantile-binned histogram search (`hist:256`);
//! `exact` restores the raw-value greedy search for A/B accuracy
//! comparisons, and `hist:64` trades accuracy for speed.
//!
//! `repro compare` diffs two run directories (their `metrics.json` and
//! `profile.json`) and exits non-zero when any timing row regressed by
//! more than `--fail-over-pct` percent (default 20).
//!
//! `--save-artifacts DIR` persists both final models per scenario into a
//! `c100-store` registry at `DIR` (plus a ready-to-serve
//! `features_<scenario>.csv` of the test region); `repro predict` loads
//! the latest matching artifact and forecasts without any refitting.
//!
//! `repro serve` keeps such a store resident behind an HTTP/1.1
//! endpoint (`GET /healthz|/models|/metrics|/debug/flight`, `POST
//! /predict|/reload|/shutdown`) with keep-alive connections multiplexed
//! over `--reactors` event loops, a bounded queue, micro-batching, and
//! load shedding; `--tune` lets the server resize its worker pool and
//! queue depth from the observed queue-wait histogram. See
//! `crates/serve/README.md` for the design.
//!
//! `repro load` replays a deterministic request stream (seeded, so two
//! runs compare the server rather than the workload) against a live
//! server over keep-alive connections: closed loop at a fixed
//! concurrency or open loop at a fixed rate with latency measured from
//! each request's scheduled fire time. It writes `load_report.json`
//! plus a `metrics.json` that `repro compare` diffs like any run, and
//! exits non-zero when an `--slo-*` objective is missed.
//!
//! `--flight PATH` (serve and stream) dumps the always-on flight
//! recorder — a bounded ring of the most recent request / rollover /
//! batch-flush records — to PATH on clean shutdown *and* from a panic
//! hook, so a crashed run leaves a post-mortem behind. The server also
//! exposes the live ring at `GET /debug/flight` regardless of the flag.
//!
//! `repro stream` replays the synthetic market tick-by-tick through the
//! `c100-stream` loop: O(1) incremental indicators, drift/decay
//! monitors, and online GBDT rollovers (warm-started, persisted into
//! `--store`, and hot-swapped into a live server when `--serve ADDR` is
//! given). A machine-readable summary lands in `<out>/stream_report.json`;
//! see `crates/stream/README.md` for the design.
//!
//! `--engine` picks the inference backend for `predict`/`serve`: the
//! default `compiled` flattens the ensemble into contiguous arrays for
//! branchless traversal, `interpreted` walks the fitted trees directly.
//! Both produce bit-identical forecasts.
//!
//! `repro matrix` runs the scenario matrix (`c100-matrix`): index
//! families × regime/walk-forward windows × horizons on a work-stealing
//! pool with shared dataset prep. Completed cells stream into `--store`
//! (default `<out>/matrix-store`), so a killed run resumes where it
//! stopped; the byte-deterministic report lands in `<out>/matrix.json`,
//! which `repro compare` diffs cell-by-cell (MSE regressions past the
//! threshold, any ok→failed flip, any cell-count change fail the gate).

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use c100_bench::RunProfile;
use c100_core::context::RunContext;
use c100_core::experiments::{figure1, figure2, run_evaluation_with, FullEvaluation};
use c100_core::export::export_scenario_artifacts;
use c100_core::pipeline::ScenarioSpec;
use c100_core::report::{metrics_table, pct, ratio, sparkline, TextTable};
use c100_core::scenario::Period;
use c100_ml::tree::SplitMethod;
use c100_obs::{
    compare, install_panic_dump, Fanout, FlightRecorder, JsonlObserver, MetricsRegistry,
    MetricsSnapshot, ProfileReport, RunData, RunObserver, StderrObserver, TraceCtx, Tracer,
};
use c100_serve::{ServeConfig, Server};
use c100_store::{ArtifactStore, BatchPredictor, Engine};
use c100_stream::{run_stream, StreamConfig};
use c100_synth::MarketData;
use c100_timeseries::csv::{read_frame_from_path, write_frame_to_path};
use c100_timeseries::{Frame, Series};

struct Args {
    profile: RunProfile,
    seed: u64,
    split: Option<SplitMethod>,
    out: PathBuf,
    log_jsonl: Option<PathBuf>,
    trace: Option<PathBuf>,
    quiet: bool,
    scenarios: Option<Vec<ScenarioSpec>>,
    save_artifacts: Option<PathBuf>,
    artifacts: BTreeSet<String>,
}

const ALL_ARTIFACTS: [&str; 10] = [
    "fig1", "fig2", "table1", "fig3", "fig4", "table3", "table4", "table5", "table6", "overall",
];

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut profile = RunProfile::Full;
    let mut seed = 42u64;
    let mut split = None;
    let mut out = PathBuf::from("results");
    let mut log_jsonl = None;
    let mut trace = None;
    let mut quiet = false;
    let mut scenarios = None;
    let mut save_artifacts = None;
    let mut artifacts = BTreeSet::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                let v = args.next().ok_or("--profile needs a value")?;
                profile = RunProfile::parse(&v).ok_or(format!("unknown profile {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--split" => {
                let v = args.next().ok_or("--split needs a value")?;
                split = Some(SplitMethod::parse(&v).ok_or(format!(
                    "bad split method {v} (expected exact or hist[:BINS])"
                ))?);
            }
            "--out" => {
                out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--log-jsonl" => {
                log_jsonl = Some(PathBuf::from(
                    args.next().ok_or("--log-jsonl needs a value")?,
                ));
            }
            "--trace" => {
                trace = Some(PathBuf::from(args.next().ok_or("--trace needs a value")?));
            }
            "--quiet" => {
                quiet = true;
            }
            "--scenarios" => {
                let v = args.next().ok_or("--scenarios needs a value")?;
                let specs = v
                    .split(',')
                    .map(|id| ScenarioSpec::parse(id.trim()).map_err(|e| e.to_string()))
                    .collect::<Result<Vec<_>, _>>()?;
                scenarios = Some(specs);
            }
            "--save-artifacts" => {
                save_artifacts = Some(PathBuf::from(
                    args.next().ok_or("--save-artifacts needs a value")?,
                ));
            }
            "all" => {
                artifacts.extend(ALL_ARTIFACTS.iter().map(|s| s.to_string()));
            }
            other if ALL_ARTIFACTS.contains(&other) => {
                artifacts.insert(other.to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if artifacts.is_empty() {
        return Err(format!(
            "no artifacts requested; pick from {ALL_ARTIFACTS:?} or 'all'"
        ));
    }
    Ok(Args {
        profile,
        seed,
        split,
        out,
        log_jsonl,
        trace,
        quiet,
        scenarios,
        save_artifacts,
        artifacts,
    })
}

fn main() {
    let mut cli = std::env::args().skip(1).peekable();
    if cli.peek().map(String::as_str) == Some("predict") {
        cli.next();
        if let Err(e) = run_predict(cli) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    if cli.peek().map(String::as_str) == Some("serve") {
        cli.next();
        if let Err(e) = run_serve(cli) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    if cli.peek().map(String::as_str) == Some("stream") {
        cli.next();
        if let Err(e) = run_stream_cmd(cli) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    if cli.peek().map(String::as_str) == Some("load") {
        cli.next();
        match run_load(cli) {
            Ok(passed) => std::process::exit(if passed { 0 } else { 1 }),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if cli.peek().map(String::as_str) == Some("compare") {
        cli.next();
        match run_compare(cli) {
            Ok(passed) => std::process::exit(if passed { 0 } else { 1 }),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if cli.peek().map(String::as_str) == Some("matrix") {
        cli.next();
        if let Err(e) = run_matrix_cmd(cli) {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
        return;
    }
    let args = match parse_args(cli) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&args.out).expect("create output directory");

    println!(
        "# Crypto100 reproduction — profile {:?}, seed {}",
        args.profile, args.seed
    );
    let t0 = std::time::Instant::now();
    let data = c100_synth::generate(&args.profile.synth_config(args.seed));
    println!(
        "# synthesized {} days × ~{} metrics in {:.1?}\n",
        data.config.n_days(),
        data.onchain_btc.width()
            + data.onchain_usdc.width()
            + data.sentiment.width()
            + data.tradfi.width()
            + data.macro_econ.width(),
        t0.elapsed()
    );

    // Cheap figure-only artifacts never need the scenario pipeline.
    if args.artifacts.contains("fig1") {
        run_fig1(&data, &args.out);
    }
    if args.artifacts.contains("fig2") {
        run_fig2(&data, &args.out);
    }

    let needs_pipeline = args.artifacts.iter().any(|a| a != "fig1" && a != "fig2");
    if !needs_pipeline {
        return;
    }

    // Telemetry sinks for the pipeline run: progress on stderr (unless
    // --quiet), an optional JSONL event log, and always a metrics
    // registry whose aggregate lands in <out>/metrics.json.
    let metrics = Arc::new(MetricsRegistry::new());
    let mut observer = Fanout::new().with(metrics.clone() as Arc<dyn RunObserver>);
    if !args.quiet {
        observer.push(Arc::new(StderrObserver::new()));
    }
    let jsonl = args.log_jsonl.as_ref().map(|path| {
        let sink = Arc::new(JsonlObserver::create(path).expect("create JSONL event log"));
        observer.push(sink.clone() as Arc<dyn RunObserver>);
        (path, sink)
    });
    // Shared so the artifact store can emit into the same sinks.
    let observer = Arc::new(observer);
    let tracer = args.trace.as_ref().map(|_| Tracer::new());

    let t1 = std::time::Instant::now();
    let mut profile = args.profile.pipeline_profile(args.seed);
    if let Some(split) = args.split {
        profile = profile.with_split_method(split);
    }
    let mut ctx = RunContext::with_observer(&profile, observer.as_ref());
    if let Some(tracer) = &tracer {
        ctx = ctx.with_trace(TraceCtx::root(tracer));
    }
    let specs = args.scenarios.clone().unwrap_or_else(ScenarioSpec::all);
    let evaluation = run_evaluation_with(&data, &specs, &ctx).expect("evaluation");
    println!(
        "# {}-scenario pipeline completed in {:.1?}\n",
        specs.len(),
        t1.elapsed()
    );

    if let Some(dir) = &args.save_artifacts {
        save_artifacts(dir, &evaluation, &profile, observer.clone());
    }

    if let Some((path, sink)) = jsonl {
        sink.flush().expect("flush JSONL event log");
        println!("  -> {}", path.display());
    }
    let snapshot = metrics.snapshot();
    let metrics_path = args.out.join("metrics.json");
    std::fs::write(&metrics_path, snapshot.to_json()).expect("write metrics.json");
    println!("  -> {}", metrics_path.display());
    if !args.quiet {
        print!("{}", metrics_table(&snapshot));
    }
    println!();

    if let (Some(tracer), Some(trace_path)) = (&tracer, &args.trace) {
        std::fs::write(trace_path, tracer.chrome_trace_json()).expect("write chrome trace");
        println!(
            "# {} spans -> {} (open in chrome://tracing or ui.perfetto.dev)",
            tracer.len(),
            trace_path.display()
        );
        let report = tracer.profile();
        let profile_path = args.out.join("profile.json");
        std::fs::write(&profile_path, report.to_json()).expect("write profile.json");
        println!("  -> {}", profile_path.display());
        if !args.quiet {
            print!("{}", report.render());
        }
        println!();
    }

    if args.artifacts.contains("table1") {
        run_table1(&evaluation, &args.out);
    }
    if args.artifacts.contains("fig3") {
        run_contribution(&evaluation, Period::Y2017, "fig3", &args.out);
    }
    if args.artifacts.contains("fig4") {
        run_contribution(&evaluation, Period::Y2019, "fig4", &args.out);
    }
    if args.artifacts.contains("table3") {
        run_table3(&evaluation, &args.out);
    }
    if args.artifacts.contains("table4") {
        run_table4(&evaluation, &args.out);
    }
    if args.artifacts.contains("table5") {
        run_table5(&evaluation, &args.out);
    }
    if args.artifacts.contains("table6") {
        run_table6(&evaluation, &args.out);
    }
    if args.artifacts.contains("overall") {
        run_overall(&evaluation, &args.out);
    }
    println!("# total wall time {:.1?}", t0.elapsed());
}

/// Persists both final models per scenario into a `c100-store` registry,
/// plus a `features_<scenario>.csv` of each scenario's test region so
/// `repro predict` has a ready-made input matching the stored schema.
fn save_artifacts(
    dir: &Path,
    eval: &FullEvaluation,
    profile: &c100_core::profile::Profile,
    observer: Arc<dyn RunObserver>,
) {
    println!("## Persisting model artifacts");
    let mut store = ArtifactStore::open(dir)
        .expect("open artifact store")
        .with_observer(observer);
    for result in &eval.scenarios {
        let entries =
            export_scenario_artifacts(&mut store, result, profile).expect("export artifacts");
        for e in &entries {
            println!(
                "  {} {:5} -> {} ({} bytes)",
                e.scenario,
                e.model,
                dir.join(format!("{}.json", e.id)).display(),
                e.bytes
            );
        }
        let refs: Vec<&str> = result.final_features.iter().map(|s| s.as_str()).collect();
        let scenario = &result.scenario;
        let test = scenario
            .frame
            .row_slice(scenario.split_row, scenario.frame.len())
            .expect("test region slice")
            .select(&refs)
            .expect("select final features");
        let path = dir.join(format!("features_{}.csv", scenario.id()));
        write_frame_to_path(&test, &path).expect("write features CSV");
        println!("  -> {}", path.display());
    }
    println!();
}

/// `repro predict`: loads the latest artifact for a scenario from a
/// store and forecasts a feature CSV, all without refitting.
fn run_predict(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut store_dir = None;
    let mut scenario = None;
    let mut family = "rf".to_string();
    let mut engine = Engine::default();
    let mut features = None;
    let mut out = None;
    let mut trace = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = Some(PathBuf::from(args.next().ok_or("--store needs a value")?));
            }
            "--scenario" => scenario = Some(args.next().ok_or("--scenario needs a value")?),
            "--model" => {
                let v = args.next().ok_or("--model needs a value")?;
                if v != "rf" && v != "gbdt" {
                    return Err(format!("unknown model family {v} (expected rf or gbdt)"));
                }
                family = v;
            }
            "--engine" => {
                let v = args.next().ok_or("--engine needs a value")?;
                engine = Engine::parse(&v).ok_or(format!(
                    "unknown engine {v} (expected interpreted or compiled)"
                ))?;
            }
            "--features" => {
                features = Some(PathBuf::from(
                    args.next().ok_or("--features needs a value")?,
                ));
            }
            "--out" => out = Some(PathBuf::from(args.next().ok_or("--out needs a value")?)),
            "--trace" => {
                trace = Some(PathBuf::from(args.next().ok_or("--trace needs a value")?));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let store_dir = store_dir.ok_or("predict requires --store DIR")?;
    let scenario = scenario.ok_or("predict requires --scenario ID")?;
    let features_path = features.ok_or("predict requires --features CSV")?;
    ScenarioSpec::parse(&scenario).map_err(|e| e.to_string())?;

    let store = ArtifactStore::open(&store_dir).map_err(|e| e.to_string())?;
    let entry = store
        .latest_family(&scenario, &family)
        .ok_or_else(|| {
            format!(
                "no {family} artifact for scenario {scenario} in {}",
                store_dir.display()
            )
        })?
        .clone();
    let artifact = store.load(&entry.id).map_err(|e| e.to_string())?;
    println!(
        "# artifact {} ({} {}) — {} features, trained {}..{} ({} rows, profile {}, engine {})",
        entry.id,
        entry.scenario,
        entry.model,
        artifact.features.len(),
        artifact.train_start,
        artifact.train_end,
        artifact.train_rows,
        artifact.profile,
        engine.label()
    );

    let frame = read_frame_from_path(&features_path).map_err(|e| e.to_string())?;
    let tracer = trace.as_ref().map(|_| Arc::new(Tracer::new()));
    let mut predictor = BatchPredictor::new(artifact).with_engine(engine);
    if let Some(tracer) = &tracer {
        predictor = predictor.with_tracer(tracer.clone());
    }
    let forecasts = predictor.predict_frame(&frame).map_err(|e| e.to_string())?;
    if let (Some(tracer), Some(trace_path)) = (&tracer, &trace) {
        std::fs::write(trace_path, tracer.chrome_trace_json()).map_err(|e| e.to_string())?;
        println!("# {} spans -> {}", tracer.len(), trace_path.display());
    }
    println!(
        "# {} forecasts, mean {:.6}",
        forecasts.len(),
        forecasts.iter().sum::<f64>() / forecasts.len().max(1) as f64
    );

    let out = out.unwrap_or_else(|| store_dir.join(format!("forecasts_{scenario}_{family}.csv")));
    let mut result = Frame::with_daily_index(frame.start(), frame.len());
    result
        .push_column(Series::new("forecast", forecasts))
        .map_err(|e| e.to_string())?;
    write_frame_to_path(&result, &out).map_err(|e| e.to_string())?;
    println!("  -> {}", out.display());
    Ok(())
}

/// `repro serve`: keeps an artifact store resident behind the
/// `c100-serve` HTTP endpoint until `POST /shutdown` drains it.
fn run_serve(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut store_dir = None;
    let mut addr = "127.0.0.1:8100".to_string();
    let mut workers = 4usize;
    let mut queue_depth = 64usize;
    let mut max_batch = 8usize;
    let mut max_wait_ms = 5u64;
    let mut reactors = 2usize;
    let mut tune = false;
    let mut max_workers = 0usize;
    let mut idle_timeout_ms = 10_000u64;
    let mut engine = Engine::default();
    let mut trace = None;
    let mut flight = None;
    fn parse_usize(flag: &str, value: Option<String>) -> Result<usize, String> {
        let v = value.ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value {v}"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = Some(PathBuf::from(args.next().ok_or("--store needs a value")?));
            }
            "--addr" => addr = args.next().ok_or("--addr needs a value")?,
            "--workers" => workers = parse_usize("--workers", args.next())?,
            "--queue-depth" => queue_depth = parse_usize("--queue-depth", args.next())?,
            "--max-batch" => max_batch = parse_usize("--max-batch", args.next())?,
            "--max-wait-ms" => max_wait_ms = parse_usize("--max-wait-ms", args.next())? as u64,
            "--reactors" => reactors = parse_usize("--reactors", args.next())?,
            "--tune" => tune = true,
            "--max-workers" => max_workers = parse_usize("--max-workers", args.next())?,
            "--idle-timeout-ms" => {
                idle_timeout_ms = parse_usize("--idle-timeout-ms", args.next())? as u64;
            }
            "--engine" => {
                let v = args.next().ok_or("--engine needs a value")?;
                engine = Engine::parse(&v).ok_or(format!(
                    "unknown engine {v} (expected interpreted or compiled)"
                ))?;
            }
            "--trace" => {
                trace = Some(PathBuf::from(args.next().ok_or("--trace needs a value")?));
            }
            "--flight" => {
                flight = Some(PathBuf::from(args.next().ok_or("--flight needs a value")?));
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let store_dir = store_dir.ok_or("serve requires --store DIR")?;

    let mut config = ServeConfig::new(&store_dir, addr);
    config.workers = workers;
    config.queue_depth = queue_depth;
    config.max_batch = max_batch;
    config.max_wait = std::time::Duration::from_millis(max_wait_ms);
    config.reactors = reactors;
    config.self_tune = tune;
    config.max_workers = max_workers;
    config.idle_timeout = std::time::Duration::from_millis(idle_timeout_ms);
    config.engine = engine;
    config.flight_path = flight.clone();

    let registry = Arc::new(MetricsRegistry::new());
    let tracer = trace.as_ref().map(|_| Arc::new(Tracer::new()));
    let handle =
        Server::start(config, registry.clone(), tracer.clone()).map_err(|e| e.to_string())?;
    if let Some(path) = &flight {
        // A handler panic is caught per-request, but a crash anywhere
        // else still leaves the recent-request ring behind.
        install_panic_dump(handle.flight(), path.clone());
    }
    println!(
        "# serving {} on http://{}",
        store_dir.display(),
        handle.local_addr()
    );
    println!("#   GET  /healthz /models /metrics /debug/flight");
    println!("#   POST /predict /reload /shutdown");
    handle.wait();

    println!("# server drained and stopped");
    print!("{}", metrics_table(&registry.snapshot()));
    if let Some(path) = &flight {
        println!("# flight recorder -> {}", path.display());
    }
    if let (Some(tracer), Some(trace_path)) = (&tracer, &trace) {
        std::fs::write(trace_path, tracer.chrome_trace_json()).map_err(|e| e.to_string())?;
        println!("# {} spans -> {}", tracer.len(), trace_path.display());
    }
    Ok(())
}

/// `repro load`: deterministic load replay against a live server.
/// Writes `load_report.json` + `metrics.json` into `--out` and returns
/// whether every `--slo-*` objective was met.
fn run_load(mut args: impl Iterator<Item = String>) -> Result<bool, String> {
    use c100_load::{LoadConfig, LoadPlan, Mode, RequestTemplate, Slo};
    use std::net::ToSocketAddrs;
    fn parse_usize(flag: &str, value: Option<String>) -> Result<usize, String> {
        let v = value.ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value {v}"))
    }
    fn parse_f64(flag: &str, value: Option<String>) -> Result<f64, String> {
        let v = value.ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value {v}"))
    }
    let mut addr_raw: Option<String> = None;
    let mut mode_raw = "closed".to_string();
    let mut connections = 8usize;
    let mut rate = 200.0f64;
    let mut requests = 1000usize;
    let mut seed = 42u64;
    let mut scenario: Option<String> = None;
    let mut features: Option<PathBuf> = None;
    let mut rows_per_request = 1usize;
    let mut out = PathBuf::from("results");
    let mut slo_p99_ms: Option<f64> = None;
    let mut slo_error_rate: Option<f64> = None;
    let mut timeout_ms = 10_000u64;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr_raw = Some(args.next().ok_or("--addr needs a value")?),
            "--mode" => mode_raw = args.next().ok_or("--mode needs a value")?,
            "--connections" => connections = parse_usize("--connections", args.next())?,
            "--rate" => rate = parse_f64("--rate", args.next())?,
            "--requests" => requests = parse_usize("--requests", args.next())?,
            "--seed" => seed = parse_usize("--seed", args.next())? as u64,
            "--scenario" => scenario = Some(args.next().ok_or("--scenario needs a value")?),
            "--features" => {
                features = Some(PathBuf::from(
                    args.next().ok_or("--features needs a value")?,
                ));
            }
            "--rows-per-request" => {
                rows_per_request = parse_usize("--rows-per-request", args.next())?;
            }
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--slo-p99-ms" => slo_p99_ms = Some(parse_f64("--slo-p99-ms", args.next())?),
            "--slo-error-rate" => {
                slo_error_rate = Some(parse_f64("--slo-error-rate", args.next())?);
            }
            "--timeout-ms" => timeout_ms = parse_usize("--timeout-ms", args.next())? as u64,
            "--quiet" => quiet = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let addr_raw = addr_raw.ok_or("load requires --addr HOST:PORT")?;
    let addr = addr_raw
        .to_socket_addrs()
        .map_err(|e| format!("bad --addr {addr_raw}: {e}"))?
        .next()
        .ok_or(format!("--addr {addr_raw} resolves to no address"))?;
    let mode = match mode_raw.as_str() {
        "closed" => Mode::Closed { connections },
        "open" => Mode::Open {
            rate_per_sec: rate,
            connections,
        },
        other => return Err(format!("unknown --mode {other} (expected closed or open)")),
    };

    // The request mix: real /predict bodies cut from a features CSV
    // (the same file `repro predict` consumes), or pure health checks
    // when no CSV is given.
    let mut templates = Vec::new();
    if let Some(features_path) = &features {
        let scenario = scenario
            .as_deref()
            .ok_or("--features needs --scenario to label the predict bodies")?;
        ScenarioSpec::parse(scenario).map_err(|e| e.to_string())?;
        let frame = read_frame_from_path(features_path).map_err(|e| e.to_string())?;
        let columns = frame.columns();
        if columns.is_empty() || frame.is_empty() {
            return Err(format!("{} holds no feature rows", features_path.display()));
        }
        let rows: Vec<Vec<f64>> = (0..frame.len())
            .map(|r| columns.iter().map(|c| c.values()[r]).collect())
            .collect();
        for chunk in rows.chunks(rows_per_request.max(1)) {
            let rendered: Vec<String> = chunk
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            let body = format!(
                "{{\"scenario\":\"{scenario}\",\"rows\":[{}]}}",
                rendered.join(",")
            );
            templates.push(RequestTemplate::post("/predict", &body));
        }
    } else {
        templates.push(RequestTemplate::get("/healthz"));
    }

    if !quiet {
        println!(
            "# repro load — {mode_raw} loop, {requests} requests over {connections} connections \
             (seed {seed}, {} templates) -> http://{addr}",
            templates.len()
        );
    }
    let plan = LoadPlan::replay(&templates, requests, seed);
    let registry = Arc::new(MetricsRegistry::new());
    let config = LoadConfig {
        addr,
        mode,
        seed,
        timeout: std::time::Duration::from_millis(timeout_ms),
    };
    let report = c100_load::run(&plan, &config, &registry);

    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let report_path = out.join("load_report.json");
    std::fs::write(&report_path, report.to_json()).map_err(|e| e.to_string())?;
    let metrics_path = out.join("metrics.json");
    std::fs::write(&metrics_path, registry.snapshot().to_json()).map_err(|e| e.to_string())?;
    if !quiet {
        println!(
            "# {} requests in {:.2}s ({:.0} req/s) — {} ok, {} shed, {} failed",
            report.requests,
            report.elapsed_secs,
            report.throughput_rps,
            report.ok,
            report.shed,
            report.failed
        );
        println!(
            "# latency p50 {:.0}us  p90 {:.0}us  p99 {:.0}us  max {}us",
            report.p50_micros, report.p90_micros, report.p99_micros, report.max_micros
        );
        println!("  -> {}", report_path.display());
        println!("  -> {}", metrics_path.display());
    }
    let slo = Slo {
        p99_micros: slo_p99_ms.map(|ms| ms * 1000.0),
        max_error_rate: slo_error_rate,
    };
    let violations = slo.violations(&report);
    for violation in &violations {
        eprintln!("SLO violation: {violation}");
    }
    Ok(violations.is_empty())
}

/// `repro stream`: replays the synthetic market tick-by-tick through
/// the `c100-stream` loop — incremental indicators, drift/decay
/// monitors, and online model rollovers against `--store` (and a live
/// server when `--serve ADDR` is given).
fn run_stream_cmd(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    fn parse_usize(flag: &str, value: Option<String>) -> Result<usize, String> {
        let v = value.ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value {v}"))
    }
    fn parse_f64(flag: &str, value: Option<String>) -> Result<f64, String> {
        let v = value.ok_or(format!("{flag} needs a value"))?;
        v.parse().map_err(|_| format!("bad {flag} value {v}"))
    }
    let mut store_dir: Option<PathBuf> = None;
    let mut scenario: Option<String> = None;
    let mut out = PathBuf::from("results");
    let mut trace: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut quiet = false;
    // Placeholder root; the real one is required below.
    let mut config = StreamConfig::new(std::env::temp_dir());
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--store" => {
                store_dir = Some(PathBuf::from(args.next().ok_or("--store needs a value")?));
            }
            "--ticks" => config.ticks = parse_usize("--ticks", args.next())?,
            "--seed" => config.seed = parse_usize("--seed", args.next())? as u64,
            "--scenario" => scenario = Some(args.next().ok_or("--scenario needs a value")?),
            "--refit-every" => config.refit_every = parse_usize("--refit-every", args.next())?,
            "--min-train" => config.min_train_rows = parse_usize("--min-train", args.next())?,
            "--min-refit-gap" => {
                config.min_refit_gap = parse_usize("--min-refit-gap", args.next())?;
            }
            "--drift-z" => config.drift_z = parse_f64("--drift-z", args.next())?,
            "--decay-ratio" => config.decay_ratio = parse_f64("--decay-ratio", args.next())?,
            "--decay-window" => config.decay_window = parse_usize("--decay-window", args.next())?,
            "--resync-every" => config.resync_every = parse_usize("--resync-every", args.next())?,
            "--retain" => config.retain = parse_usize("--retain", args.next())?,
            "--serve" => config.serve_addr = Some(args.next().ok_or("--serve needs a value")?),
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--trace" => {
                trace = Some(PathBuf::from(args.next().ok_or("--trace needs a value")?));
            }
            "--flight" => {
                flight_path = Some(PathBuf::from(args.next().ok_or("--flight needs a value")?));
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    config.store_dir = store_dir.ok_or("stream requires --store DIR")?;
    if let Some(id) = scenario {
        config.scenario = ScenarioSpec::parse(&id).map_err(|e| e.to_string())?;
    }
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    if !quiet {
        println!(
            "# repro stream — scenario {}, {} ticks, refit every {} (seed {})",
            config.scenario.id(),
            config.ticks,
            config.refit_every,
            config.seed
        );
        if let Some(addr) = &config.serve_addr {
            println!("#   live server: http://{addr}");
        }
    }

    let registry = Arc::new(MetricsRegistry::new());
    let tracer = trace.as_ref().map(|_| Arc::new(Tracer::new()));
    let flight = flight_path.as_ref().map(|path| {
        let recorder = Arc::new(FlightRecorder::new());
        // The loop is single-process: a panic mid-stream still dumps
        // the rollover/predict records leading up to it.
        install_panic_dump(recorder.clone(), path.clone());
        recorder
    });
    let report = run_stream(&config, &registry, tracer.as_ref(), flight.as_deref())
        .map_err(|e| e.to_string())?;
    if let (Some(flight), Some(path)) = (&flight, &flight_path) {
        flight.dump_to_file(path).map_err(|e| e.to_string())?;
        if !quiet {
            println!("# flight recorder -> {}", path.display());
        }
    }

    let report_path = out.join("stream_report.json");
    std::fs::write(&report_path, report.to_json()).map_err(|e| e.to_string())?;
    if !quiet {
        println!(
            "# {} ticks in {:.2}s ({:.0} ticks/s) — {} rollovers ({} warm; \
             {} scheduled, {} drift, {} decay)",
            report.ticks,
            report.elapsed_secs,
            report.ticks_per_sec,
            report.rollovers,
            report.warm_rollovers,
            report.scheduled_triggers,
            report.drift_triggers,
            report.decay_triggers
        );
        if report.predict_requests > 0 {
            println!(
                "# live predicts: {} ({} failed)",
                report.predict_requests, report.predict_failures
            );
        }
        if let Some(id) = &report.final_artifact {
            println!("# deployed artifact {id}");
        }
        if let Some(csv) = &report.features_csv {
            println!("  -> {}", csv.display());
        }
        print!("{}", metrics_table(&registry.snapshot()));
    }
    println!("  -> {}", report_path.display());
    if let (Some(tracer), Some(trace_path)) = (&tracer, &trace) {
        std::fs::write(trace_path, tracer.chrome_trace_json()).map_err(|e| e.to_string())?;
        println!("# {} spans -> {}", tracer.len(), trace_path.display());
    }
    Ok(())
}

/// Loads whatever run data a directory holds: `metrics.json` and/or
/// `profile.json`. A missing file is fine (the comparison renders the
/// side as a dash); a present-but-unparsable file is an error.
fn load_run_data(dir: &Path) -> Result<RunData, String> {
    let mut data = RunData::default();
    let metrics_path = dir.join("metrics.json");
    if metrics_path.exists() {
        let text = std::fs::read_to_string(&metrics_path).map_err(|e| e.to_string())?;
        data.metrics = Some(
            MetricsSnapshot::from_json(&text)
                .map_err(|e| format!("{}: {e}", metrics_path.display()))?,
        );
    }
    let profile_path = dir.join("profile.json");
    if profile_path.exists() {
        let text = std::fs::read_to_string(&profile_path).map_err(|e| e.to_string())?;
        data.profile = Some(
            ProfileReport::from_json(&text)
                .map_err(|e| format!("{}: {e}", profile_path.display()))?,
        );
    }
    let matrix_path = dir.join("matrix.json");
    if matrix_path.exists() {
        let text = std::fs::read_to_string(&matrix_path).map_err(|e| e.to_string())?;
        data.matrix = Some(
            c100_obs::compare::MatrixSummary::from_json(&text)
                .map_err(|e| format!("{}: {e}", matrix_path.display()))?,
        );
    }
    if data.metrics.is_none() && data.profile.is_none() && data.matrix.is_none() {
        return Err(format!(
            "{} holds no metrics.json, profile.json or matrix.json",
            dir.display()
        ));
    }
    Ok(data)
}

/// `repro matrix`: the scenario matrix — index families × regime /
/// walk-forward windows × horizons, crash-resumable via `--store`.
fn run_matrix_cmd(mut args: impl Iterator<Item = String>) -> Result<(), String> {
    let mut profile = RunProfile::Fast;
    let mut seed = 42u64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut out = PathBuf::from("results");
    let mut store: Option<PathBuf> = None;
    let mut fresh = false;
    let mut families = None;
    let mut horizons = None;
    let mut trace_path: Option<PathBuf> = None;
    let mut flight_path: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                let v = args.next().ok_or("--profile needs a value")?;
                profile = RunProfile::parse(&v).ok_or(format!("unknown profile {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                threads = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                if threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--out" => out = PathBuf::from(args.next().ok_or("--out needs a value")?),
            "--store" => store = Some(PathBuf::from(args.next().ok_or("--store needs a value")?)),
            "--fresh" => fresh = true,
            "--families" => {
                let v = args.next().ok_or("--families needs a value")?;
                families = Some(c100_matrix::spec::parse_families(&v).map_err(|e| e.to_string())?);
            }
            "--horizons" => {
                let v = args.next().ok_or("--horizons needs a value")?;
                horizons = Some(c100_matrix::spec::parse_horizons(&v).map_err(|e| e.to_string())?);
            }
            "--trace" => {
                trace_path = Some(PathBuf::from(args.next().ok_or("--trace needs a value")?))
            }
            "--flight" => {
                flight_path = Some(PathBuf::from(args.next().ok_or("--flight needs a value")?))
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }

    let mut config = c100_matrix::MatrixConfig::new(seed, profile.synth_config(seed));
    if let Some(f) = families {
        config.families = f;
    }
    if let Some(h) = horizons {
        config.horizons = h;
    }
    let store_root = store.unwrap_or_else(|| out.join("matrix-store"));
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let tracer = trace_path.as_ref().map(|_| Tracer::new());
    let metrics = MetricsRegistry::new();
    let flight = FlightRecorder::new();
    let obs = c100_matrix::MatrixObs {
        tracer: tracer.as_ref(),
        metrics: Some(&metrics),
        flight: Some(&flight),
    };

    if !quiet {
        eprintln!(
            "# repro matrix — profile {:?}, seed {seed}, {threads} thread(s), store {}",
            profile,
            store_root.display()
        );
    }
    let started = std::time::Instant::now();
    let outcome = c100_matrix::run_matrix(&config, threads, &store_root, fresh, obs)
        .map_err(|e| e.to_string())?;
    let elapsed = started.elapsed();

    let matrix_path = out.join("matrix.json");
    std::fs::write(&matrix_path, outcome.report.render()).map_err(|e| e.to_string())?;
    let metrics_path = out.join("metrics.json");
    std::fs::write(&metrics_path, metrics.snapshot().to_json()).map_err(|e| e.to_string())?;
    if let (Some(trace_path), Some(tracer)) = (&trace_path, &tracer) {
        std::fs::write(trace_path, tracer.chrome_trace_json()).map_err(|e| e.to_string())?;
        let profile_path = out.join("profile.json");
        std::fs::write(&profile_path, tracer.profile().to_json()).map_err(|e| e.to_string())?;
    }
    if let Some(path) = &flight_path {
        flight.dump_to_file(path).map_err(|e| e.to_string())?;
    }

    println!(
        "matrix: {} cells ({} ok, {} failed) in {:.1}s — {} resumed, {} computed",
        outcome.report.cells.len(),
        outcome.report.ok,
        outcome.report.failed,
        elapsed.as_secs_f64(),
        outcome.resumed,
        outcome.computed,
    );
    println!(
        "  prep: {} built, {} served from cache; scheduler: {} worker(s), {} steal(s)",
        outcome.prep_builds, outcome.prep_hits, outcome.sched.workers, outcome.sched.steals,
    );
    println!("  -> {}", matrix_path.display());
    println!("  -> {}", metrics_path.display());
    Ok(())
}

/// `repro compare`: diffs two run directories and returns whether the
/// current run passed the regression gate.
fn run_compare(mut args: impl Iterator<Item = String>) -> Result<bool, String> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut fail_over_pct = c100_obs::compare::DEFAULT_FAIL_OVER_PCT;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fail-over-pct" => {
                let v = args.next().ok_or("--fail-over-pct needs a value")?;
                fail_over_pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad --fail-over-pct {v}"))?;
                if !fail_over_pct.is_finite() || fail_over_pct < 0.0 {
                    return Err(format!("--fail-over-pct must be >= 0, got {v}"));
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument: {other}"));
            }
            dir => dirs.push(PathBuf::from(dir)),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        return Err("compare requires exactly BASELINE_DIR and CURRENT_DIR".into());
    };
    let baseline = load_run_data(baseline_dir)?;
    let current = load_run_data(current_dir)?;
    let comparison = compare(&baseline, &current, fail_over_pct);
    println!(
        "# repro compare — baseline {} vs current {}",
        baseline_dir.display(),
        current_dir.display()
    );
    print!("{}", comparison.render());
    Ok(comparison.passed())
}

fn save_json(out: &Path, name: &str, json: String) {
    let path = out.join(format!("{name}.json"));
    std::fs::write(&path, json).expect("write JSON result");
    println!("  -> {}", path.display());
}

fn run_fig1(data: &MarketData, out: &Path) {
    println!("## Figure 1 — Top 100 cryptocurrencies vs total market cap");
    let frame = figure1(data).expect("figure 1 frame");
    let share = frame.column("top100_share").unwrap().values();
    println!("  top100 share    {}", sparkline(share, 60));
    println!(
        "  share range: {:.3} .. {:.3} (paper: top-100 dominates the market)",
        c100_timeseries::stats::min(share),
        c100_timeseries::stats::max(share)
    );
    let path = out.join("fig1_top100_vs_total.csv");
    write_frame_to_path(&frame, &path).expect("write fig1 CSV");
    println!("  -> {}\n", path.display());
}

fn run_fig2(data: &MarketData, out: &Path) {
    println!("## Figure 2 — Crypto100 scaling-factor tuning vs BTC price");
    let (frame, comparisons) = figure2(data).expect("figure 2");
    let mut table = TextTable::new(&["power", "mean index/BTC ratio", "corr with BTC"]);
    for c in &comparisons {
        table.row(&[
            format!("{}", c.power),
            format!("{:.4}", c.mean_ratio_to_btc),
            format!("{:.4}", c.correlation_with_btc),
        ]);
    }
    print!("{}", table.render());
    println!("  (power 7 keeps the index price-comparable to BTC, as the paper tunes)");
    let path = out.join("fig2_scaling_powers.csv");
    write_frame_to_path(&frame, &path).expect("write fig2 CSV");
    save_json(
        out,
        "fig2_comparisons",
        c100_core::report::to_json(&comparisons),
    );
    println!("  -> {}\n", path.display());
}

fn run_table1(eval: &FullEvaluation, out: &Path) {
    println!("## Table 1 — Final feature vectors per scenario");
    let rows = eval.table1();
    let mut table = TextTable::new(&["Scenario", "Number of Features"]);
    for (id, n) in &rows {
        table.row(&[id.clone(), n.to_string()]);
    }
    print!("{}", table.render());
    save_json(out, "table1", c100_core::report::to_json(&rows));
    println!();
}

fn run_contribution(eval: &FullEvaluation, period: Period, name: &str, out: &Path) {
    println!(
        "## {} — Contribution of data sources to the final feature vector, set {}",
        if name == "fig3" {
            "Figure 3"
        } else {
            "Figure 4"
        },
        period.label()
    );
    let figure = eval.contribution_figure(period);
    let mut header = vec!["Category".to_string()];
    for (w, _) in &figure {
        header.push(format!("w={w}"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&header_refs);
    if let Some((_, first)) = figure.first() {
        for (i, contribution) in first.iter().enumerate() {
            let mut row = vec![contribution.category.clone()];
            for (_, contributions) in &figure {
                row.push(ratio(contributions[i].factor));
            }
            table.row(&row);
        }
    }
    print!("{}", table.render());
    save_json(out, name, c100_core::report::to_json(&figure));
    println!();
}

fn run_table3(eval: &FullEvaluation, out: &Path) {
    println!("## Table 3 — Top 5 features, short-term vs long-term");
    let rows = eval.table3();
    let mut table = TextTable::new(&["Set", "Short-term", "Long-term"]);
    for (set, (short, long)) in &rows {
        for i in 0..5 {
            table.row(&[
                if i == 0 {
                    set.to_string()
                } else {
                    String::new()
                },
                short.get(i).cloned().unwrap_or_default(),
                long.get(i).cloned().unwrap_or_default(),
            ]);
        }
    }
    print!("{}", table.render());
    save_json(out, "table3", c100_core::report::to_json(&rows));
    println!();
}

fn run_table4(eval: &FullEvaluation, out: &Path) {
    println!("## Table 4 — Top 20 unique features per group");
    let rows = eval.table4();
    let mut table = TextTable::new(&["Set", "Short-term unique", "Long-term unique"]);
    for (set, (short, long)) in &rows {
        let n = short.len().max(long.len());
        for i in 0..n {
            table.row(&[
                if i == 0 {
                    set.to_string()
                } else {
                    String::new()
                },
                short.get(i).cloned().unwrap_or_default(),
                long.get(i).cloned().unwrap_or_default(),
            ]);
        }
    }
    print!("{}", table.render());
    save_json(out, "table4", c100_core::report::to_json(&rows));
    println!();
}

fn run_table5(eval: &FullEvaluation, out: &Path) {
    println!("## Table 5 — Avg MSE decrease of the RF model by prediction window");
    let rows = eval.table5();
    let mut table = TextTable::new(&["Prediction Window", "2017", "2019"]);
    for (w, a, b) in &rows {
        table.row(&[w.to_string(), pct(*a), pct(*b)]);
    }
    print!("{}", table.render());
    save_json(out, "table5", c100_core::report::to_json(&rows));
    // Raw per-scenario MSEs behind tables 5/6 and §4.3. The tables
    // report MSE *ratios*, which amplify tiny model differences; CI's
    // exact-vs-histogram gate diffs these raw MSEs instead.
    let diversity = format!(
        "{{\"rf\":{},\"gbdt\":{}}}",
        c100_core::report::to_json(&eval.rf_diversity),
        c100_core::report::to_json(&eval.gbdt_diversity)
    );
    save_json(out, "diversity", diversity);
    println!();
}

fn run_table6(eval: &FullEvaluation, out: &Path) {
    println!("## Table 6 — Avg MSE decrease of the RF model by data category");
    let rows = eval.table6();
    let mut table = TextTable::new(&["Category", "2017", "2019"]);
    for (cat, a, b) in &rows {
        table.row(&[cat.clone(), pct(*a), pct(*b)]);
    }
    print!("{}", table.render());
    save_json(out, "table6", c100_core::report::to_json(&rows));
    println!();
}

fn run_overall(eval: &FullEvaluation, out: &Path) {
    println!("## §4.3 — Overall average improvement per model family");
    let rows = eval.overall_improvements();
    let mut table = TextTable::new(&["Model/Set", "Improvement"]);
    for (label, v) in &rows {
        table.row(&[label.clone(), pct(*v)]);
    }
    print!("{}", table.render());
    save_json(out, "overall", c100_core::report::to_json(&rows));
    println!();
}
