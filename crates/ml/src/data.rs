//! Dense row-major design matrix used by every model in this crate, plus
//! the quantile-binned companion used by histogram split search.
//!
//! [`Matrix`] is row-major: a single sample stays contiguous, which is
//! what tree traversal and prediction want. [`BinnedMatrix`] is the
//! opposite — **column-major** bin codes (`codes[f * n_rows + r]`), so a
//! histogram build streams one feature's codes sequentially. Binning is
//! done once per fit (quantile cuts, ≤ 256 bins stored as `u8`, `u16`
//! beyond that) and the result is shared by reference across every tree
//! of a forest, every boosting round, and every refit on the same rows.

use rayon::prelude::*;

use crate::{MlError, Result};

/// A dense, row-major matrix of feature values.
///
/// Row-major keeps a single sample contiguous, which is what both tree
/// traversal and prediction want; split finding gathers one feature column
/// into a scratch buffer per node instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n_features: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Builds a matrix from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(MlError::BadInput("no rows".into()));
        }
        let n_features = rows[0].len();
        if n_features == 0 {
            return Err(MlError::BadInput("zero-width rows".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * n_features);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n_features {
                return Err(MlError::BadInput(format!(
                    "row {i} has {} values, expected {n_features}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { n_features, data })
    }

    /// Builds a matrix from an existing row-major buffer.
    pub fn from_row_major(data: Vec<f64>, n_features: usize) -> Result<Self> {
        if n_features == 0 || data.is_empty() || data.len() % n_features != 0 {
            return Err(MlError::BadInput(format!(
                "buffer of {} values is not a multiple of {n_features} features",
                data.len()
            )));
        }
        Ok(Matrix { n_features, data })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.data.len() / self.n_features
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// One sample row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.n_features..(r + 1) * self.n_features]
    }

    /// The whole backing buffer, row-major. Batch predictors borrow
    /// this instead of re-copying rows.
    pub fn as_row_major(&self) -> &[f64] {
        &self.data
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.n_features + col]
    }

    /// Sets the value at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.n_features + col] = value;
    }

    /// Copies feature column `col` into `out` (resized to fit).
    pub fn gather_column(&self, col: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((0..self.n_rows()).map(|r| self.get(r, col)));
    }

    /// Builds a new matrix from the given subset of row indices.
    pub fn take_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.n_features);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            n_features: self.n_features,
            data,
        }
    }

    /// Builds a new matrix holding the first `k` rows. Row-major storage
    /// makes this one contiguous copy.
    pub fn prefix_rows(&self, k: usize) -> Result<Matrix> {
        if k > self.n_rows() {
            return Err(MlError::BadConfig(format!(
                "prefix of {k} rows exceeds the matrix's {} rows",
                self.n_rows()
            )));
        }
        Ok(Matrix {
            n_features: self.n_features,
            data: self.data[..k * self.n_features].to_vec(),
        })
    }

    /// Builds a new matrix keeping only the given feature columns, in order.
    pub fn take_columns(&self, cols: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.n_rows() * cols.len());
        for r in 0..self.n_rows() {
            let row = self.row(r);
            data.extend(cols.iter().map(|&c| row[c]));
        }
        Matrix {
            n_features: cols.len(),
            data,
        }
    }
}

/// Column-major bin codes, width-selected by the bin budget.
#[derive(Debug, Clone, PartialEq)]
enum Codes {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

/// Borrowed view of one feature's bin codes.
///
/// Hot loops should match on the variant once and run a generic inner
/// loop over the raw slice rather than calling [`ColumnView::get`] per
/// row.
#[derive(Debug, Clone, Copy)]
pub enum ColumnView<'a> {
    /// Codes stored as `u8` (bin budget ≤ 256).
    U8(&'a [u8]),
    /// Codes stored as `u16` (bin budget > 256).
    U16(&'a [u16]),
}

impl ColumnView<'_> {
    /// Bin code of row `r` for this feature.
    #[inline]
    pub fn get(&self, r: usize) -> usize {
        match self {
            ColumnView::U8(s) => s[r] as usize,
            ColumnView::U16(s) => s[r] as usize,
        }
    }
}

/// Quantile-binned, column-major companion of a [`Matrix`].
///
/// Each feature is discretised once into at most `max_bins` bins. When a
/// feature has ≤ `max_bins` distinct values every bin holds exactly one
/// distinct value, so histogram split search over the codes reproduces
/// exact split search bit for bit (same thresholds, same tie-breaks).
/// Otherwise bin boundaries are quantile cuts of the observed values.
///
/// Alongside the codes the structure keeps, per feature and per bin, the
/// smallest (`lows`) and largest (`highs`) raw value that landed in the
/// bin. [`BinnedMatrix::threshold_between`] uses them to emit the same
/// midpoint-with-guard thresholds as the exact scan, so fitted trees
/// stay comparable across both split methods.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedMatrix {
    n_rows: usize,
    max_bins: usize,
    codes: Codes,
    /// Per feature: smallest raw value in each bin (ascending).
    lows: Vec<Vec<f64>>,
    /// Per feature: largest raw value in each bin (ascending); `highs[f]`
    /// doubles as the upper-inclusive bin edge table used for coding.
    highs: Vec<Vec<f64>>,
}

impl BinnedMatrix {
    /// Bins every feature of `x` into at most `max_bins` quantile bins.
    ///
    /// `max_bins` must lie in `[2, 65536]`; values must be NaN-free.
    pub fn from_matrix(x: &Matrix, max_bins: usize) -> Result<Self> {
        if !(2..=65_536).contains(&max_bins) {
            return Err(MlError::BadConfig(format!(
                "max_bins must be in [2, 65536], got {max_bins}"
            )));
        }
        let (n_rows, n_features) = (x.n_rows(), x.n_features());
        let mut wide = vec![0u16; n_rows * n_features];
        let tables: Vec<(Vec<f64>, Vec<f64>)> = wide
            .par_chunks_mut(n_rows)
            .enumerate()
            .map(|(f, out)| bin_feature(x, f, max_bins, out))
            .collect::<Result<_>>()?;
        let (lows, highs) = tables.into_iter().unzip();
        let codes = if max_bins <= 256 {
            Codes::U8(wide.iter().map(|&c| c as u8).collect())
        } else {
            Codes::U16(wide)
        };
        Ok(BinnedMatrix {
            n_rows,
            max_bins,
            codes,
            lows,
            highs,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.highs.len()
    }

    /// The bin budget this matrix was built with.
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Number of bins actually used by feature `f` (≥ 1, ≤ `max_bins`).
    pub fn n_bins(&self, f: usize) -> usize {
        self.highs[f].len()
    }

    /// Column-major code slice for feature `f`.
    pub fn column(&self, f: usize) -> ColumnView<'_> {
        let (lo, hi) = (f * self.n_rows, (f + 1) * self.n_rows);
        match &self.codes {
            Codes::U8(v) => ColumnView::U8(&v[lo..hi]),
            Codes::U16(v) => ColumnView::U16(&v[lo..hi]),
        }
    }

    /// Bin code of `(row, feature)`.
    pub fn code(&self, row: usize, feature: usize) -> usize {
        self.column(feature).get(row)
    }

    /// Upper-inclusive bin edges of feature `f` (strictly increasing);
    /// every edge is an observed raw value.
    pub fn bin_edges(&self, f: usize) -> &[f64] {
        &self.highs[f]
    }

    /// Split threshold between bins `left_bin` and `right_bin` of
    /// feature `f`, computed exactly like the exact scan: the midpoint of
    /// the largest value left of the cut and the smallest value right of
    /// it, snapped down to the left value if rounding would misroute it.
    /// The caller passes the two *non-empty-at-the-node* bins flanking
    /// the cut; intervening empty bins must be skipped, not treated as
    /// the right side — their global extremes are not present in the
    /// node and would shift the threshold away from the exact scan's.
    pub fn threshold_between(&self, f: usize, left_bin: usize, right_bin: usize) -> f64 {
        let hi = self.highs[f][left_bin];
        let lo = self.lows[f][right_bin];
        let t = 0.5 * (hi + lo);
        if t >= lo {
            hi
        } else {
            t
        }
    }

    /// A binned view of the first `k` rows that *reuses this matrix's
    /// quantile cuts* instead of re-binning.
    ///
    /// Column-major storage makes each feature's prefix one contiguous
    /// copy, so the expensive part of [`BinnedMatrix::from_matrix`] — the
    /// per-feature sort behind the quantile tables — is paid once per
    /// window and shared across every training prefix cut from it. The
    /// scenario matrix leans on this to share dataset prep across cells
    /// that differ only in train/test split point.
    ///
    /// The cut tables (`lows`/`highs`, and therefore split thresholds)
    /// are the parent's: they describe the full window, not the prefix.
    /// That is the intended semantics — bin once, evaluate subwindows
    /// under the same discretisation — and keeps thresholds comparable
    /// across cells of one window.
    pub fn prefix_rows(&self, k: usize) -> Result<BinnedMatrix> {
        if k > self.n_rows {
            return Err(MlError::BadConfig(format!(
                "prefix of {k} rows exceeds the binned matrix's {} rows",
                self.n_rows
            )));
        }
        fn prefix<T: Copy>(v: &[T], n_rows: usize, n_features: usize, k: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(k * n_features);
            for f in 0..n_features {
                out.extend_from_slice(&v[f * n_rows..f * n_rows + k]);
            }
            out
        }
        let n_features = self.n_features();
        let codes = match &self.codes {
            Codes::U8(v) => Codes::U8(prefix(v, self.n_rows, n_features, k)),
            Codes::U16(v) => Codes::U16(prefix(v, self.n_rows, n_features, k)),
        };
        Ok(BinnedMatrix {
            n_rows: k,
            max_bins: self.max_bins,
            codes,
            lows: self.lows.clone(),
            highs: self.highs.clone(),
        })
    }

    /// Rewrites feature `f`'s codes so row `r` holds the code previously
    /// at row `perm[r]` — the binned equivalent of permuting the raw
    /// column, used by permutation importance to avoid re-binning.
    pub fn permute_column(&mut self, f: usize, perm: &[usize]) {
        assert_eq!(perm.len(), self.n_rows, "permutation length mismatch");
        let (lo, hi) = (f * self.n_rows, (f + 1) * self.n_rows);
        match &mut self.codes {
            Codes::U8(v) => permute_slice(&mut v[lo..hi], perm),
            Codes::U16(v) => permute_slice(&mut v[lo..hi], perm),
        }
    }
}

fn permute_slice<T: Copy>(col: &mut [T], perm: &[usize]) {
    let old: Vec<T> = col.to_vec();
    for (r, &src) in perm.iter().enumerate() {
        col[r] = old[src];
    }
}

/// Bins one feature column: writes codes into `out` and returns the
/// per-bin `(lows, highs)` raw-value tables.
fn bin_feature(
    x: &Matrix,
    f: usize,
    max_bins: usize,
    out: &mut [u16],
) -> Result<(Vec<f64>, Vec<f64>)> {
    let n = x.n_rows();
    let mut sorted: Vec<f64> = (0..n).map(|r| x.get(r, f)).collect();
    if sorted.iter().any(|v| v.is_nan()) {
        return Err(MlError::BadInput(format!("NaN in feature {f}")));
    }
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let mut distinct = sorted.clone();
    distinct.dedup();

    // Upper-inclusive edges: one per distinct value if they fit the
    // budget, else quantile cuts of the duplicated sorted column. Each
    // edge is an observed value, so no bin is ever empty.
    let edges: Vec<f64> = if distinct.len() <= max_bins {
        distinct.clone()
    } else {
        let mut e: Vec<f64> = (1..=max_bins)
            .map(|k| sorted[k * n / max_bins - 1])
            .collect();
        if *e.last().unwrap() < sorted[n - 1] {
            *e.last_mut().unwrap() = sorted[n - 1];
        }
        e.dedup();
        e
    };

    // Per-bin raw-value extremes, from the distinct values in order.
    let n_bins = edges.len();
    let mut lows = vec![f64::NAN; n_bins];
    let highs = edges.clone();
    for &v in &distinct {
        let b = edges.partition_point(|e| *e < v);
        if lows[b].is_nan() {
            lows[b] = v;
        }
    }
    for (r, slot) in out.iter_mut().enumerate() {
        *slot = edges.partition_point(|e| *e < x.get(r, f)) as u16;
    }
    Ok((lows, highs))
}

/// Validates that `x` and `y` agree and are non-trivial for fitting.
pub fn check_fit_input(x: &Matrix, y: &[f64]) -> Result<()> {
    if x.n_rows() != y.len() {
        return Err(MlError::BadInput(format!(
            "{} rows but {} targets",
            x.n_rows(),
            y.len()
        )));
    }
    if y.is_empty() {
        return Err(MlError::BadInput("empty training set".into()));
    }
    if y.iter().any(|v| v.is_nan()) || (0..x.n_rows()).any(|r| x.row(r).iter().any(|v| v.is_nan()))
    {
        return Err(MlError::BadInput("NaN in training data".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_features(), 2);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_row_major_validates_multiple() {
        assert!(Matrix::from_row_major(vec![1.0, 2.0, 3.0], 2).is_err());
        assert!(Matrix::from_row_major(vec![], 2).is_err());
        let m = Matrix::from_row_major(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn gather_column_extracts_strided_values() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap();
        let mut col = Vec::new();
        m.gather_column(1, &mut col);
        assert_eq!(col, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn take_rows_and_columns() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let sub = m.take_rows(&[2, 0]);
        assert_eq!(sub.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(sub.row(1), &[1.0, 2.0, 3.0]);
        let cols = m.take_columns(&[2, 0]);
        assert_eq!(cols.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn matrix_prefix_rows_is_a_contiguous_head() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap();
        let p = m.prefix_rows(2).unwrap();
        assert_eq!(p.n_rows(), 2);
        assert_eq!(p.row(0), m.row(0));
        assert_eq!(p.row(1), m.row(1));
        assert!(m.prefix_rows(4).is_err());
    }

    #[test]
    fn binned_prefix_keeps_codes_and_cut_tables() {
        let m = Matrix::from_rows(&[
            vec![2.0, 30.0],
            vec![1.0, 10.0],
            vec![5.0, 20.0],
            vec![4.0, 40.0],
        ])
        .unwrap();
        let b = BinnedMatrix::from_matrix(&m, 8).unwrap();
        let p = b.prefix_rows(3).unwrap();
        assert_eq!(p.n_rows(), 3);
        assert_eq!(p.n_features(), 2);
        assert_eq!(p.max_bins(), b.max_bins());
        for f in 0..2 {
            // Cut tables are shared with the parent window.
            assert_eq!(p.bin_edges(f), b.bin_edges(f));
            for r in 0..3 {
                assert_eq!(p.code(r, f), b.code(r, f));
            }
        }
        assert!(b.prefix_rows(5).is_err());
        // Full-length prefix is the identity.
        assert_eq!(b.prefix_rows(4).unwrap(), b);
    }

    #[test]
    fn binning_with_enough_bins_keeps_every_distinct_value() {
        // 3 distinct values, budget 4: one bin per value, codes = ranks.
        let m = Matrix::from_rows(&[vec![2.0], vec![1.0], vec![2.0], vec![5.0]]).unwrap();
        let b = BinnedMatrix::from_matrix(&m, 4).unwrap();
        assert_eq!(b.n_bins(0), 3);
        assert_eq!(b.bin_edges(0), &[1.0, 2.0, 5.0]);
        let codes: Vec<usize> = (0..4).map(|r| b.code(r, 0)).collect();
        assert_eq!(codes, vec![1, 0, 1, 2]);
        // One value per bin: threshold is the exact-scan midpoint.
        assert_eq!(b.threshold_between(0, 0, 1), 1.5);
        assert_eq!(b.threshold_between(0, 1, 2), 3.5);
    }

    #[test]
    fn quantile_binning_compresses_and_stays_monotone() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let b = BinnedMatrix::from_matrix(&m, 8).unwrap();
        assert_eq!(b.n_bins(0), 8);
        let edges = b.bin_edges(0);
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
        // Codes are monotone in the raw value and every bin is hit.
        let codes: Vec<usize> = (0..100).map(|r| b.code(r, 0)).collect();
        assert!(codes.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(codes.iter().max(), Some(&7));
        // Every value respects its bin's [low, high] envelope.
        for r in 0..100 {
            let c = b.code(r, 0);
            let v = m.get(r, 0);
            assert!(v <= b.bin_edges(0)[c]);
            assert!(c == 0 || v > b.bin_edges(0)[c - 1]);
        }
    }

    #[test]
    fn wide_budgets_fall_back_to_u16_codes() {
        let rows: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64]).collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let b = BinnedMatrix::from_matrix(&m, 512).unwrap();
        assert_eq!(b.n_bins(0), 400);
        assert!(matches!(b.column(0), ColumnView::U16(_)));
        assert_eq!(b.code(399, 0), 399);
    }

    #[test]
    fn binning_validates_budget_and_nan() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(BinnedMatrix::from_matrix(&m, 1).is_err());
        assert!(BinnedMatrix::from_matrix(&m, 65_537).is_err());
        let bad = Matrix::from_rows(&[vec![f64::NAN], vec![2.0]]).unwrap();
        assert!(BinnedMatrix::from_matrix(&bad, 16).is_err());
    }

    #[test]
    fn permute_column_matches_fresh_binning_of_permuted_matrix() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i * 7 % 20) as f64, (i * 3 % 5) as f64])
            .collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let perm: Vec<usize> = (0..20).map(|i| (i * 13 + 4) % 20).collect();
        let mut binned = BinnedMatrix::from_matrix(&m, 8).unwrap();
        binned.permute_column(1, &perm);

        let mut permuted = m.clone();
        for (r, &src) in perm.iter().enumerate() {
            permuted.set(r, 1, m.get(src, 1));
        }
        let fresh = BinnedMatrix::from_matrix(&permuted, 8).unwrap();
        assert_eq!(binned, fresh);
    }

    #[test]
    fn check_fit_input_catches_nan_and_mismatch() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(check_fit_input(&m, &[1.0]).is_err());
        assert!(check_fit_input(&m, &[1.0, f64::NAN]).is_err());
        let bad = Matrix::from_rows(&[vec![f64::NAN], vec![2.0]]).unwrap();
        assert!(check_fit_input(&bad, &[1.0, 2.0]).is_err());
        assert!(check_fit_input(&m, &[1.0, 2.0]).is_ok());
    }
}
