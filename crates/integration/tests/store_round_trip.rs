//! End-to-end persistence: a real pipeline run exported into an
//! artifact store, reopened cold, and served through `BatchPredictor` —
//! including the CSV hop the `repro predict` subcommand takes — with
//! bit-identical predictions throughout.

use std::sync::Arc;

use c100_core::export::export_scenario_artifacts;
use c100_core::pipeline::{run_scenario, ScenarioSpec};
use c100_core::profile::Profile;
use c100_core::scenario::Period;
use c100_ml::data::Matrix;
use c100_ml::Regressor;
use c100_obs::{MetricsRegistry, RunObserver};
use c100_store::{ArtifactStore, BatchPredictor};
use c100_synth::{generate, SynthConfig};
use c100_timeseries::csv::{read_frame_from_path, write_frame_to_path};

#[test]
fn pipeline_export_reopen_and_serve_matches_in_memory_model() {
    let data = generate(&SynthConfig::small(181));
    let profile = Profile::fast().with_seed(31);
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };
    let result = run_scenario(&data, &spec, &profile).unwrap();

    let dir = std::env::temp_dir().join(format!("c100_int_store_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Export with a metrics observer: store traffic must aggregate.
    let metrics = Arc::new(MetricsRegistry::new());
    let mut store = ArtifactStore::open(&dir)
        .unwrap()
        .with_observer(metrics.clone() as Arc<dyn RunObserver>);
    let entries = export_scenario_artifacts(&mut store, &result, &profile).unwrap();
    assert_eq!(entries.len(), 2);

    // Cold reopen: a fresh process would see exactly this state.
    let reopened = ArtifactStore::open(&dir).unwrap();
    let rf_entry = reopened.latest_family("2019_7", "rf").unwrap().clone();
    let artifact = reopened.load(&rf_entry.id).unwrap();
    assert_eq!(artifact.features, result.final_features);
    assert_eq!(artifact.period, "2019");
    assert_eq!(artifact.window, 7);

    // The CSV hop `repro predict` takes: write the test-region features,
    // read them back, predict through the frame-validating path.
    let refs: Vec<&str> = result.final_features.iter().map(|s| s.as_str()).collect();
    let scenario = &result.scenario;
    let test_frame = scenario
        .frame
        .row_slice(scenario.split_row, scenario.frame.len())
        .unwrap()
        .select(&refs)
        .unwrap();
    let csv_path = dir.join("features.csv");
    write_frame_to_path(&test_frame, &csv_path).unwrap();
    let round_tripped = read_frame_from_path(&csv_path).unwrap();

    let predictor = BatchPredictor::new(artifact);
    let served = predictor.predict_frame(&round_tripped).unwrap();

    // Same rows through the in-memory final model, bit for bit.
    let x = Matrix::from_row_major(
        {
            let mut data = Vec::new();
            for r in 0..test_frame.len() {
                for name in &refs {
                    data.push(test_frame.column(name).unwrap().values()[r]);
                }
            }
            data
        },
        refs.len(),
    )
    .unwrap();
    assert_eq!(served.len(), x.n_rows());
    for (r, p) in served.iter().enumerate() {
        assert_eq!(
            p.to_bits(),
            result.final_model.predict_row(x.row(r)).to_bits(),
            "row {r} diverged after disk + CSV round trip"
        );
    }

    // Store traffic showed up in the metrics registry.
    let snapshot = metrics.snapshot();
    let json = snapshot.to_json();
    assert!(json.contains("artifacts_saved_total"));

    std::fs::remove_dir_all(&dir).ok();
}
