//! Shared setup for the reproduction binary and the Criterion benches.

use c100_core::profile::Profile;
use c100_synth::SynthConfig;

/// The data/compute sizing of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunProfile {
    /// Reduced span and grids: minutes, for smoke runs and benches.
    Fast,
    /// The paper-sized run: full 2017-2023 span, full grids.
    Full,
}

impl RunProfile {
    /// Parses `fast` / `full`.
    pub fn parse(s: &str) -> Option<RunProfile> {
        match s {
            "fast" => Some(RunProfile::Fast),
            "full" => Some(RunProfile::Full),
            _ => None,
        }
    }

    /// The synthetic-data configuration for this profile.
    pub fn synth_config(self, seed: u64) -> SynthConfig {
        match self {
            RunProfile::Fast => SynthConfig {
                seed,
                n_assets: 150,
                ..SynthConfig::default()
            },
            RunProfile::Full => SynthConfig {
                seed,
                ..SynthConfig::default()
            },
        }
    }

    /// The pipeline compute profile.
    pub fn pipeline_profile(self, seed: u64) -> Profile {
        match self {
            // The fast profile still runs the full 2017-2023 span, so
            // give SHAP a few more rows than the test default.
            RunProfile::Fast => Profile::fast().with_shap_rows(192),
            RunProfile::Full => Profile::full(),
        }
        .with_seed(seed)
    }
}
