//! Plain-text rendering of tables and figure series for the experiment
//! binaries, plus CSV/JSON export helpers so results can be re-plotted.

use std::fmt::Write as _;

use c100_obs::{fmt_micros, MetricsSnapshot};

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; it must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats a float as a percentage with two decimals (`455.67%`).
pub fn pct(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.2}%")
    }
}

/// Formats a ratio with three decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.3}")
}

/// Renders an ASCII sparkline chart of a series (for figure previews in
/// the terminal). Samples `width` points evenly.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if present.is_empty() || width == 0 {
        return String::new();
    }
    let lo = present.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = present.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let step = (values.len() as f64 / width as f64).max(1.0);
    let mut out = String::with_capacity(width);
    let mut pos = 0.0;
    while (pos as usize) < values.len() && out.chars().count() < width {
        let v = values[pos as usize];
        if v.is_nan() {
            out.push(' ');
        } else {
            let idx = (((v - lo) / span) * 7.0).round() as usize;
            out.push(BARS[idx.min(7)]);
        }
        pos += step;
    }
    out
}

/// Writes any serde-serializable experiment result as pretty JSON.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results serialize")
}

/// Renders a [`MetricsSnapshot`] as two text tables: every counter, then
/// every duration histogram with count/mean/min/max/total columns.
pub fn metrics_table(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let mut counters = TextTable::new(&["Counter", "Value"]);
        for (name, value) in &snapshot.counters {
            counters.row(&[name.clone(), value.to_string()]);
        }
        out.push_str(&counters.render());
    }
    if !snapshot.histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let mut durations = TextTable::new(&["Duration", "Count", "Mean", "Min", "Max", "Total"]);
        for (name, h) in &snapshot.histograms {
            durations.row(&[
                name.clone(),
                h.count.to_string(),
                fmt_micros(h.mean_micros().round() as u64),
                fmt_micros(h.min_micros),
                fmt_micros(h.max_micros),
                fmt_micros(h.sum_micros),
            ]);
        }
        out.push_str(&durations.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Scenario", "Features"]);
        t.row(&["2017_1".into(), "79".into()]);
        t.row(&["2019_180".into(), "90".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Scenario"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("2019_180"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn pct_formats_and_handles_nan() {
        assert_eq!(pct(455.666), "455.67%");
        assert_eq!(pct(f64::NAN), "-");
    }

    #[test]
    fn sparkline_maps_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0], 4);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[], 10), "");
        // NaN renders as a gap.
        let with_gap = sparkline(&[0.0, f64::NAN, 2.0], 3);
        assert_eq!(with_gap.chars().nth(1), Some(' '));
    }

    #[test]
    fn metrics_table_lists_counters_and_histograms() {
        use c100_obs::MetricsRegistry;
        let m = MetricsRegistry::new();
        m.add("grid_candidates_total", 12);
        m.observe_micros("stage.fra_micros", 1_500_000);
        let text = metrics_table(&m.snapshot());
        assert!(text.contains("grid_candidates_total"));
        assert!(text.contains("12"));
        assert!(text.contains("stage.fra_micros"));
        assert!(text.contains("1.50s"));
        // Empty snapshots render nothing rather than empty tables.
        assert_eq!(metrics_table(&MetricsSnapshot::default()), "");
    }

    #[test]
    fn json_round_trips() {
        #[derive(serde::Serialize)]
        struct T {
            x: f64,
        }
        let s = to_json(&T { x: 1.5 });
        assert!(s.contains("1.5"));
    }
}
