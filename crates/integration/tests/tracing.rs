//! End-to-end span tracing: a real `Profile::fast()` pipeline run with a
//! tracer installed must record a correctly nested span tree down to the
//! per-tree fits, export schema-complete Chrome Trace JSON, aggregate
//! into a per-scenario profile, and keep parent links intact when span
//! contexts are handed across real OS threads.

use std::collections::HashMap;

use c100_core::context::RunContext;
use c100_core::dataset::assemble;
use c100_core::pipeline::{run_scenario_with, ScenarioSpec};
use c100_core::profile::Profile;
use c100_core::scenario::Period;
use c100_obs::json::Value;
use c100_obs::trace::SpanRecord;
use c100_obs::{TraceCtx, Tracer};
use c100_synth::{generate, SynthConfig};

fn traced_run() -> Vec<SpanRecord> {
    let data = generate(&SynthConfig::small(181));
    let master = assemble(&data).unwrap();
    let profile = Profile::fast().with_seed(18);
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };
    let tracer = Tracer::new();
    let ctx = RunContext::new(&profile).with_trace(TraceCtx::root(&tracer));
    let result = run_scenario_with(&master, &spec, &ctx).unwrap();
    assert!(!result.final_features.is_empty());
    tracer.snapshot()
}

fn by_id(spans: &[SpanRecord]) -> HashMap<u64, &SpanRecord> {
    spans.iter().map(|s| (s.id.0, s)).collect()
}

#[test]
fn pipeline_run_records_a_correctly_nested_span_tree() {
    let spans = traced_run();
    let index = by_id(&spans);

    // Exactly one scenario root, tagged with the scenario id.
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "one root span for a single-scenario run");
    let root = roots[0];
    assert_eq!(root.name, "scenario");
    assert_eq!(root.scenario.as_deref(), Some("2019_7"));

    // The four pipeline stages are direct children of the scenario root,
    // in pipeline order.
    let stage_of = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no {name} span"))
    };
    let tune = stage_of("tune");
    let fra = stage_of("fra");
    let shap = stage_of("shap");
    let final_fit = stage_of("final_fit");
    for stage in [tune, fra, shap, final_fit] {
        assert_eq!(stage.parent, Some(root.id), "{} under root", stage.name);
    }
    assert!(tune.end_micros() <= fra.start_micros);
    assert!(fra.end_micros() <= shap.start_micros);
    assert!(shap.end_micros() <= final_fit.start_micros);

    // Deep structure: grids under tune, iterations under fra with their
    // four rankings + filter, SHAP children, and per-tree fits.
    for name in ["rf_grid", "gbdt_grid"] {
        assert_eq!(stage_of(name).parent, Some(tune.id));
    }
    assert!(spans.iter().any(|s| s.name == "grid_fold"));
    let iterations: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "fra_iteration").collect();
    assert!(!iterations.is_empty());
    for iter in &iterations {
        assert_eq!(iter.parent, Some(fra.id));
        for child in ["rf_fit", "gbdt_fit", "rf_pfi", "gbdt_pfi", "corr_filter"] {
            assert!(
                spans
                    .iter()
                    .any(|s| s.name == child && s.parent == Some(iter.id)),
                "iteration missing {child}"
            );
        }
    }
    for name in ["shap_fit", "shap_values"] {
        assert_eq!(stage_of(name).parent, Some(shap.id));
    }
    assert!(spans.iter().any(|s| s.name == "tree_fit"));

    // Every child's interval nests inside its parent's.
    for span in &spans {
        if let Some(parent) = span.parent {
            let p = index[&parent.0];
            assert!(
                span.start_micros >= p.start_micros && span.end_micros() <= p.end_micros(),
                "span {} [{}, {}] escapes parent {} [{}, {}]",
                span.name,
                span.start_micros,
                span.end_micros(),
                p.name,
                p.start_micros,
                p.end_micros()
            );
        }
    }
}

#[test]
fn pipeline_chrome_trace_is_schema_complete_and_profile_attributes_scenarios() {
    let data = generate(&SynthConfig::small(191));
    let master = assemble(&data).unwrap();
    let profile = Profile::fast().with_seed(19);
    let spec = ScenarioSpec {
        period: Period::Y2019,
        window: 7,
    };
    let tracer = Tracer::new();
    let ctx = RunContext::new(&profile).with_trace(TraceCtx::root(&tracer));
    run_scenario_with(&master, &spec, &ctx).unwrap();

    // Chrome Trace export parses and every complete event carries the
    // fields Perfetto's importer requires.
    let parsed = c100_obs::json::parse(&tracer.chrome_trace_json()).unwrap();
    let Some(Value::Array(events)) = parsed.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    let mut complete = 0usize;
    for event in events {
        let ph = event.req_str("ph").unwrap();
        event.req_uint("pid").unwrap();
        event.req_uint("tid").unwrap();
        match ph {
            "M" => {
                assert_eq!(event.req_str("name").unwrap(), "thread_name");
            }
            "X" => {
                complete += 1;
                event.req_str("name").unwrap();
                event.req_uint("ts").unwrap();
                event.req_uint("dur").unwrap();
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(complete, tracer.len());

    // The aggregated profile attributes every pipeline row to the
    // scenario and orders stages sanely.
    let report = tracer.profile();
    for name in ["scenario", "tune", "fra", "shap", "final_fit", "tree_fit"] {
        let row = report
            .row("2019_7", name)
            .unwrap_or_else(|| panic!("no profile row for {name}"));
        assert!(row.calls >= 1);
        assert!(row.total_micros >= row.self_micros);
    }
}

#[test]
fn span_handoff_keeps_parent_links_across_real_threads() {
    // The pipeline hands `TraceCtx` values into rayon workers; model the
    // same handoff with scoped OS threads, where distinct thread ids are
    // guaranteed, and check both linkage and thread attribution.
    let tracer = Tracer::new();
    let root = tracer.span("handoff", "parent");
    let ctx = root.ctx();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let worker = ctx.span("worker");
                let _leaf = worker.ctx().span("leaf");
            });
        }
    });
    drop(root);

    let spans = tracer.snapshot();
    let index = by_id(&spans);
    let parent = spans.iter().find(|s| s.name == "parent").unwrap();
    let workers: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "worker").collect();
    assert_eq!(workers.len(), 4);
    let mut worker_tids = std::collections::HashSet::new();
    for worker in &workers {
        assert_eq!(worker.parent, Some(parent.id));
        assert_ne!(worker.tid, parent.tid, "worker ran on a spawned thread");
        worker_tids.insert(worker.tid);
    }
    assert_eq!(worker_tids.len(), 4, "each worker thread got its own tid");
    for leaf in spans.iter().filter(|s| s.name == "leaf") {
        let worker = index[&leaf.parent.unwrap().0];
        assert_eq!(worker.name, "worker");
        assert_eq!(leaf.tid, worker.tid, "leaf stays on its worker's thread");
    }
}
