//! # c100-stream
//!
//! Streaming ingestion, incremental indicators, and online model
//! rollover — the first subsystem that exercises the whole stack as one
//! feedback loop (train → persist → serve → monitor → retrain) rather
//! than as separate batch stages.
//!
//! The paper's pipeline is batch-offline, but its premise — forecasting
//! a daily-rebalanced index from diverse live sources — is a streaming
//! problem. This crate closes that loop over the synthetic market:
//!
//! * [`SynthTickSource`] replays the synthesizer's BTC series one
//!   observed day ([`c100_synth::btc::BtcTick`]) at a time.
//! * [`StreamIndicators`] folds each tick into O(1) incremental
//!   indicator state ([`c100_indicators::incremental`]) and emits the
//!   fixed feature row the online model consumes; history accumulates
//!   in a [`c100_timeseries::AppendFrame`].
//! * [`DriftMonitor`] and [`DecayMonitor`] watch the live feature
//!   distribution and the rolling forecast MSE (lag-aware: a forecast
//!   made at tick `t` is only scored once its horizon matures at
//!   `t + h`).
//! * [`RolloverController`] answers a trigger by refitting the GBDT —
//!   warm-started from the previous artifact — persisting the result
//!   through [`c100_store::ArtifactStore`] (with retention pruning),
//!   and hot-swapping it into a running `c100-serve` instance via
//!   `POST /reload`.
//! * [`run_stream`] is the driver loop behind `repro stream`, emitting
//!   `stream.*` metrics/spans and a machine-readable [`StreamReport`].
//!
//! See `crates/stream/README.md` for the design note.

pub mod client;
pub mod indicators;
pub mod monitor;
pub mod rollover;
pub mod runner;
pub mod source;

pub use indicators::{StreamIndicators, FEATURE_NAMES};
pub use monitor::{DecayMonitor, DriftMonitor};
pub use rollover::{RolloverController, RolloverOutcome, RolloverTrigger};
pub use runner::{run_stream, StreamConfig, StreamReport};
pub use source::SynthTickSource;

/// Errors produced by the streaming subsystem.
#[derive(Debug)]
pub enum StreamError {
    /// Frame/series manipulation failed.
    Ts(c100_timeseries::TsError),
    /// Model fitting or prediction failed.
    Ml(c100_ml::MlError),
    /// Artifact persistence failed.
    Store(c100_store::StoreError),
    /// An HTTP call to the live server failed (connect, write, or a
    /// non-2xx status).
    Http(String),
    /// The stream configuration is unusable.
    Config(String),
    /// Writing the features CSV or report failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Ts(e) => write!(f, "time-series error: {e}"),
            StreamError::Ml(e) => write!(f, "ml error: {e}"),
            StreamError::Store(e) => write!(f, "store error: {e}"),
            StreamError::Http(s) => write!(f, "http error: {s}"),
            StreamError::Config(s) => write!(f, "config error: {s}"),
            StreamError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<c100_timeseries::TsError> for StreamError {
    fn from(e: c100_timeseries::TsError) -> StreamError {
        StreamError::Ts(e)
    }
}

impl From<c100_ml::MlError> for StreamError {
    fn from(e: c100_ml::MlError) -> StreamError {
        StreamError::Ml(e)
    }
}

impl From<c100_store::StoreError> for StreamError {
    fn from(e: c100_store::StoreError) -> StreamError {
        StreamError::Store(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> StreamError {
        StreamError::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, StreamError>;
