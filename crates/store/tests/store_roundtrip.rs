//! Save → load → predict round-trips through a real directory-backed
//! store, plus the corruption and schema-mismatch rejection paths.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use c100_ml::data::Matrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::Regressor;
use c100_obs::{Event, RecordingObserver, RunObserver};
use c100_store::{
    ArtifactStore, BatchPredictor, Engine, ModelArtifact, ModelPayload, SchemaError, StoreError,
    SCHEMA_VERSION,
};
use c100_timeseries::{Date, Frame, Series};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("c100_store_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dataset(n: usize, width: usize, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..width).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| r[0] * 3.0 - r[1 % width] + rng.gen_range(-0.1..0.1))
        .collect();
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn feature_names(width: usize) -> Vec<String> {
    (0..width).map(|i| format!("feat_{i}")).collect()
}

fn rf_artifact(seed: u64) -> (ModelArtifact, Matrix) {
    let (x, y) = dataset(80, 4, seed);
    let config = RandomForestConfig {
        n_estimators: 7,
        max_depth: Some(4),
        ..Default::default()
    };
    let model = config.fit(&x, &y, seed).unwrap();
    let artifact = ModelArtifact {
        scenario: "2019_7".into(),
        period: "2019".into(),
        window: 7,
        features: feature_names(4),
        profile: "fast".into(),
        seed,
        train_rows: x.n_rows() as u64,
        train_start: "2019-01-01".into(),
        train_end: "2019-03-21".into(),
        hyperparameters: ModelArtifact::rf_hyperparameters(&config),
        model: ModelPayload::Rf(model),
    };
    (artifact, x)
}

fn gbdt_artifact(seed: u64) -> (ModelArtifact, Matrix) {
    let (x, y) = dataset(80, 3, seed);
    let config = GbdtConfig {
        n_estimators: 6,
        max_depth: 3,
        ..Default::default()
    };
    let model = config.fit(&x, &y, seed).unwrap();
    let artifact = ModelArtifact {
        scenario: "2017_30".into(),
        period: "2017".into(),
        window: 30,
        features: feature_names(3),
        profile: "fast".into(),
        seed,
        train_rows: x.n_rows() as u64,
        train_start: "2017-06-01".into(),
        train_end: "2017-08-19".into(),
        hyperparameters: ModelArtifact::gbdt_hyperparameters(&config),
        model: ModelPayload::Gbdt(model),
    };
    (artifact, x)
}

#[test]
fn rf_round_trip_is_bit_identical() {
    let (artifact, x) = rf_artifact(11);
    let decoded = ModelArtifact::decode(&artifact.encode().text).unwrap();
    assert_eq!(decoded, artifact);
    let original = match &artifact.model {
        ModelPayload::Rf(m) => m.clone(),
        _ => unreachable!(),
    };
    for r in 0..x.n_rows() {
        let row = x.row(r);
        // Bit-identical, not approximately equal.
        assert_eq!(
            decoded.model.predict_row(row).to_bits(),
            original.predict_row(row).to_bits()
        );
    }
}

#[test]
fn gbdt_round_trip_is_bit_identical() {
    let (artifact, x) = gbdt_artifact(13);
    let decoded = ModelArtifact::decode(&artifact.encode().text).unwrap();
    assert_eq!(decoded, artifact);
    for r in 0..x.n_rows() {
        let row = x.row(r);
        assert_eq!(
            decoded.model.predict_row(row).to_bits(),
            artifact.model.predict_row(row).to_bits()
        );
    }
}

#[test]
fn encoding_is_deterministic_and_content_addressed() {
    let (artifact, _) = rf_artifact(29);
    let a = artifact.encode();
    let b = artifact.encode();
    assert_eq!(a.text, b.text);
    assert_eq!(a.id, b.id);
    // A different model gets a different address.
    let (other, _) = rf_artifact(31);
    assert_ne!(other.encode().id, a.id);
}

#[test]
fn store_save_load_list_latest() {
    let root = temp_store("registry");
    let recorder = Arc::new(RecordingObserver::new());
    let mut store = ArtifactStore::open(&root)
        .unwrap()
        .with_observer(recorder.clone() as Arc<dyn RunObserver>);

    let (rf, x) = rf_artifact(3);
    let (gbdt, _) = gbdt_artifact(5);
    let rf_entry = store.save(&rf).unwrap();
    let gbdt_entry = store.save(&gbdt).unwrap();
    assert_eq!(store.list().len(), 2);
    assert_eq!(store.latest("2019_7").unwrap().id, rf_entry.id);
    assert_eq!(store.latest("2017_30").unwrap().id, gbdt_entry.id);
    assert_eq!(
        store.latest_family("2019_7", "rf").unwrap().model,
        "rf".to_string()
    );
    assert!(store.latest_family("2019_7", "gbdt").is_none());

    // Saving identical content again dedups the manifest entry.
    store.save(&rf).unwrap();
    assert_eq!(store.list().len(), 2);

    let loaded = store.load(&rf_entry.id).unwrap();
    assert_eq!(loaded, rf);
    for r in 0..x.n_rows() {
        assert_eq!(
            loaded.model.predict_row(x.row(r)).to_bits(),
            rf.model.predict_row(x.row(r)).to_bits()
        );
    }

    // A fresh open sees the persisted manifest.
    let reopened = ArtifactStore::open(&root).unwrap();
    assert_eq!(reopened.list().len(), 2);
    assert_eq!(reopened.latest("2019_7").unwrap().id, rf_entry.id);
    assert_eq!(reopened.load(&gbdt_entry.id).unwrap(), gbdt);

    let events = recorder.take();
    let saves = events
        .iter()
        .filter(|e| matches!(e, Event::ArtifactSaved { .. }))
        .count();
    let loads = events
        .iter()
        .filter(|e| matches!(e, Event::ArtifactLoaded { .. }))
        .count();
    assert_eq!(saves, 3);
    assert_eq!(loads, 1);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn reload_surfaces_externally_saved_artifacts() {
    let root = temp_store("reload");
    let mut serving = ArtifactStore::open(&root).unwrap();
    let (rf, _) = rf_artifact(41);
    let rf_entry = serving.save(&rf).unwrap();

    // Nothing new on disk: reload is a no-op that reports no ids.
    assert!(serving.reload().unwrap().is_empty());
    assert_eq!(serving.list().len(), 1);

    // A second process (here: a second handle) exports another model.
    let (gbdt, _) = gbdt_artifact(43);
    let gbdt_entry = ArtifactStore::open(&root).unwrap().save(&gbdt).unwrap();
    assert_eq!(serving.list().len(), 1, "not visible before reload");

    let new_ids = serving.reload().unwrap();
    assert_eq!(new_ids, vec![gbdt_entry.id.clone()]);
    assert_eq!(serving.list().len(), 2);
    assert_eq!(serving.latest("2019_7").unwrap().id, rf_entry.id);
    assert_eq!(
        serving.latest_family("2017_30", "gbdt").unwrap().id,
        gbdt_entry.id
    );
    assert_eq!(serving.load(&gbdt_entry.id).unwrap(), gbdt);

    // Reloading again reports nothing new, and saving through the
    // serving handle afterwards still advances past on-disk seqs.
    assert!(serving.reload().unwrap().is_empty());
    let (rf2, _) = rf_artifact(47);
    let rf2_entry = serving.save(&rf2).unwrap();
    assert!(rf2_entry.seq > gbdt_entry.seq);
    assert_eq!(serving.latest("2019_7").unwrap().id, rf2_entry.id);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn retention_prunes_manifest_and_files_but_latest_survives() {
    let root = temp_store("retention");
    let mut store = ArtifactStore::open(&root).unwrap().with_retention(2);

    // A gbdt artifact in another scenario must be untouched by rf churn.
    let (gbdt, _) = gbdt_artifact(60);
    let gbdt_entry = store.save(&gbdt).unwrap();

    // Repeated refits of the same (scenario, family) pair.
    let mut rf_entries = Vec::new();
    for seed in [61, 62, 63, 64, 65] {
        let (rf, _) = rf_artifact(seed);
        rf_entries.push(store.save(&rf).unwrap());
    }

    // Only the newest two rf artifacts remain indexed, plus the gbdt.
    assert_eq!(store.list().len(), 3);
    let newest = &rf_entries[4];
    assert_eq!(store.latest_family("2019_7", "rf").unwrap().id, newest.id);
    assert_eq!(
        store.latest_family("2017_30", "gbdt").unwrap().id,
        gbdt_entry.id
    );

    // Pruned files are gone from disk; survivors still load and verify.
    for old in &rf_entries[..3] {
        assert!(!root.join(format!("{}.json", old.id)).exists());
        assert!(matches!(store.load(&old.id), Err(StoreError::NotFound(_))));
    }
    for kept in &rf_entries[3..] {
        store.load(&kept.id).unwrap();
    }

    // A fresh open of the pruned store still resolves the latest.
    let reopened = ArtifactStore::open(&root).unwrap();
    assert_eq!(reopened.list().len(), 3);
    assert_eq!(
        reopened.latest_family("2019_7", "rf").unwrap().id,
        newest.id
    );
    reopened.load(&newest.id).unwrap();

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn load_of_unknown_id_is_not_found() {
    let root = temp_store("missing");
    let store = ArtifactStore::open(&root).unwrap();
    match store.load("deadbeefdeadbeef") {
        Err(StoreError::NotFound(_)) => {}
        other => panic!("expected NotFound, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupt_payload_is_rejected_with_checksum_mismatch() {
    let root = temp_store("corrupt");
    let mut store = ArtifactStore::open(&root).unwrap();
    let (rf, _) = rf_artifact(7);
    let entry = store.save(&rf).unwrap();

    // Flip one byte inside the payload (line 2) on disk.
    let path = root.join(format!("{}.json", entry.id));
    let mut bytes = std::fs::read(&path).unwrap();
    let newline = bytes.iter().position(|&b| b == b'\n').unwrap();
    let victim = newline + 1 + (bytes.len() - newline) / 2;
    bytes[victim] = if bytes[victim] == b'0' { b'1' } else { b'0' };
    std::fs::write(&path, &bytes).unwrap();

    match store.load(&entry.id) {
        Err(StoreError::ChecksumMismatch { .. } | StoreError::Malformed(_)) => {}
        other => panic!("expected corruption error, got {other:?}"),
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn future_schema_version_is_rejected() {
    let (rf, _) = rf_artifact(9);
    let text = rf.encode().text;
    let bumped = text.replacen(
        &format!("\"schema_version\":{SCHEMA_VERSION}"),
        &format!("\"schema_version\":{}", SCHEMA_VERSION + 1),
        1,
    );
    match ModelArtifact::decode(&bumped) {
        Err(StoreError::SchemaVersion { found, expected }) => {
            assert_eq!(found, SCHEMA_VERSION + 1);
            assert_eq!(expected, SCHEMA_VERSION);
        }
        other => panic!("expected SchemaVersion, got {other:?}"),
    }
}

#[test]
fn truncated_artifact_is_malformed_not_panic() {
    let (rf, _) = rf_artifact(17);
    let text = rf.encode().text;
    for cut in [0, 1, text.len() / 4, text.len() / 2, text.len() - 2] {
        assert!(
            ModelArtifact::decode(&text[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
}

fn frame_from_columns(names: &[String], x: &Matrix) -> Frame {
    let mut frame = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), x.n_rows());
    for (c, name) in names.iter().enumerate() {
        let values: Vec<f64> = (0..x.n_rows()).map(|r| x.get(r, c)).collect();
        frame.push_column(Series::new(name, values)).unwrap();
    }
    frame
}

#[test]
fn predictor_serves_frames_matching_schema() {
    let (rf, x) = rf_artifact(21);
    let frame = frame_from_columns(&rf.features, &x);
    let recorder = Arc::new(RecordingObserver::new());
    let predictor = BatchPredictor::new(rf.clone())
        .with_chunk_rows(16)
        .with_observer(recorder.clone() as Arc<dyn RunObserver>);

    let from_frame = predictor.predict_frame(&frame).unwrap();
    let from_matrix = predictor.predict_matrix(&x).unwrap();
    assert_eq!(from_frame.len(), x.n_rows());
    for (a, b) in from_frame.iter().zip(&from_matrix) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    for (r, p) in from_frame.iter().enumerate() {
        assert_eq!(p.to_bits(), rf.model.predict_row(x.row(r)).to_bits());
    }

    let events = recorder.take();
    let batch = events
        .iter()
        .find(|e| matches!(e, Event::BatchPredicted { .. }))
        .expect("batch event emitted");
    if let Event::BatchPredicted { rows, scenario, .. } = batch {
        assert_eq!(*rows, x.n_rows());
        assert_eq!(scenario, "2019_7");
    }
}

#[test]
fn chunk_size_does_not_change_results() {
    let (gbdt, x) = gbdt_artifact(23);
    let frame = frame_from_columns(&gbdt.features, &x);
    let baseline = BatchPredictor::new(gbdt.clone())
        .with_chunk_rows(1)
        .predict_frame(&frame)
        .unwrap();
    for chunk in [2, 3, 17, 1024] {
        let preds = BatchPredictor::new(gbdt.clone())
            .with_chunk_rows(chunk)
            .predict_frame(&frame)
            .unwrap();
        assert_eq!(preds.len(), baseline.len());
        for (a, b) in preds.iter().zip(&baseline) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn traced_predictor_records_batch_and_chunk_spans() {
    let (rf, x) = rf_artifact(27);
    let frame = frame_from_columns(&rf.features, &x);
    let untraced = BatchPredictor::new(rf.clone())
        .with_chunk_rows(16)
        .predict_frame(&frame)
        .unwrap();

    let tracer = Arc::new(c100_obs::Tracer::new());
    let predictor = BatchPredictor::new(rf.clone())
        .with_chunk_rows(16)
        .with_tracer(tracer.clone());
    let traced = predictor.predict_frame(&frame).unwrap();
    for (a, b) in traced.iter().zip(&untraced) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let spans = tracer.snapshot();
    let batch = spans
        .iter()
        .find(|s| s.name == "batch_predict")
        .expect("batch span recorded");
    assert_eq!(batch.scenario.as_deref(), Some("2019_7"));
    let chunks: Vec<_> = spans.iter().filter(|s| s.name == "predict_chunk").collect();
    assert_eq!(chunks.len(), x.n_rows().div_ceil(16));
    for chunk in chunks {
        assert_eq!(chunk.parent, Some(batch.id));
    }
}

#[test]
fn schema_violations_are_typed_errors() {
    let (rf, x) = rf_artifact(25);
    let predictor = BatchPredictor::new(rf.clone());

    // Missing columns — every absent column is named, not just the
    // first, and the Display text carries them verbatim.
    let mut missing = frame_from_columns(&rf.features, &x);
    missing.drop_column("feat_0").unwrap();
    missing.drop_column("feat_2").unwrap();
    match predictor.predict_frame(&missing) {
        Err(StoreError::Schema(e)) => {
            let SchemaError::Mismatch {
                missing,
                extra,
                reordered,
            } = &e
            else {
                panic!("expected Mismatch, got {e:?}")
            };
            assert_eq!(missing, &["feat_0", "feat_2"]);
            assert!(extra.is_empty());
            assert!(reordered.is_empty());
            let msg = e.to_string();
            assert!(
                msg.contains("'feat_0'") && msg.contains("'feat_2'"),
                "{msg}"
            );
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }

    // Extra column (and a missing one at the same time): both sides of
    // the divergence are reported together.
    let mut extra = frame_from_columns(&rf.features, &x);
    extra.drop_column("feat_3").unwrap();
    extra
        .push_column(Series::new("bonus", vec![0.0; x.n_rows()]))
        .unwrap();
    match predictor.predict_frame(&extra) {
        Err(StoreError::Schema(SchemaError::Mismatch { missing, extra, .. })) => {
            assert_eq!(missing, ["feat_3"]);
            assert_eq!(extra, ["bonus"]);
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }

    // Reordered columns: a single swap disagrees at both positions and
    // both are reported.
    let mut shuffled_names = rf.features.clone();
    shuffled_names.swap(1, 3);
    let mut reordered = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), x.n_rows());
    for name in &shuffled_names {
        let c = rf.features.iter().position(|f| f == name).unwrap();
        let values: Vec<f64> = (0..x.n_rows()).map(|r| x.get(r, c)).collect();
        reordered.push_column(Series::new(name, values)).unwrap();
    }
    match predictor.predict_frame(&reordered) {
        Err(StoreError::Schema(SchemaError::Mismatch { reordered, .. })) => {
            assert_eq!(reordered.len(), 2);
            assert_eq!(reordered[0].position, 1);
            assert_eq!(reordered[0].expected, "feat_1");
            assert_eq!(reordered[0].found, "feat_3");
            assert_eq!(reordered[1].position, 3);
        }
        other => panic!("expected Mismatch, got {other:?}"),
    }

    // Missing value.
    let mut holed = frame_from_columns(&rf.features, &x);
    let mut values = holed.column("feat_1").unwrap().values().to_vec();
    values[5] = f64::NAN;
    holed.drop_column("feat_1").unwrap();
    holed.push_column(Series::new("feat_1", values)).unwrap();
    // Re-pushing moved feat_1 to the end; rebuild in order instead.
    let mut ordered = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), x.n_rows());
    for name in &rf.features {
        ordered
            .push_column(Series::new(
                name,
                holed.column(name).unwrap().values().to_vec(),
            ))
            .unwrap();
    }
    match predictor.predict_frame(&ordered) {
        Err(StoreError::Schema(SchemaError::MissingValue { column, row })) => {
            assert_eq!(column, "feat_1");
            assert_eq!(row, 5);
        }
        other => panic!("expected MissingValue, got {other:?}"),
    }
}

#[test]
fn pre_split_method_artifacts_still_load_and_predict_identically() {
    // Artifacts written before the histogram-training release carry no
    // "split_method" hyperparameter. The key is additive metadata in the
    // free-form map, so the schema version did not bump and old payloads
    // must keep decoding and predicting bit for bit.
    assert_eq!(SCHEMA_VERSION, 1);
    for (artifact, x) in [rf_artifact(33), gbdt_artifact(35)] {
        assert!(artifact.hyperparameters.contains_key("split_method"));
        let mut old = artifact.clone();
        old.hyperparameters.remove("split_method");
        let decoded = ModelArtifact::decode(&old.encode().text).unwrap();
        assert_eq!(decoded, old);
        assert!(!decoded.hyperparameters.contains_key("split_method"));
        for r in 0..x.n_rows() {
            assert_eq!(
                decoded.model.predict_row(x.row(r)).to_bits(),
                artifact.model.predict_row(x.row(r)).to_bits()
            );
        }
    }
}

#[test]
fn pre_engine_artifacts_serve_identically_on_both_engines() {
    // The inference engine is a runtime knob, not part of the artifact
    // format: artifacts written before the compiled engine existed must
    // decode under the same schema version and serve bit-identically on
    // either engine.
    assert_eq!(SCHEMA_VERSION, 1);
    for (artifact, x) in [rf_artifact(51), gbdt_artifact(53)] {
        let decoded = ModelArtifact::decode(&artifact.encode().text).unwrap();
        let frame = frame_from_columns(&decoded.features, &x);
        let interpreted = BatchPredictor::new(decoded.clone())
            .with_engine(Engine::Interpreted)
            .predict_frame(&frame)
            .unwrap();
        let compiled = BatchPredictor::new(decoded)
            .with_engine(Engine::Compiled)
            .predict_frame(&frame)
            .unwrap();
        assert_eq!(interpreted.len(), x.n_rows());
        for (r, (a, b)) in interpreted.iter().zip(&compiled).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits());
            // Both engines also match the model walked directly.
            assert_eq!(a.to_bits(), artifact.model.predict_row(x.row(r)).to_bits());
        }
    }
}

#[test]
fn artifact_rejects_feature_count_mismatch() {
    let (mut rf, _) = rf_artifact(27);
    rf.features.push("phantom".into());
    let text = {
        // Encode carries the inconsistent schema; decode must refuse it.
        let mut hp = BTreeMap::new();
        hp.insert("k".to_string(), "v".to_string());
        rf.hyperparameters = hp;
        rf.encode().text
    };
    match ModelArtifact::decode(&text) {
        Err(StoreError::Malformed(msg)) => assert!(msg.contains("features")),
        other => panic!("expected Malformed, got {other:?}"),
    }
}
