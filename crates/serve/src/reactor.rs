//! Readiness-based connection shards: the event-loop half of the
//! server.
//!
//! Each reactor thread owns a private table of non-blocking
//! connections and multiplexes them with [`poll(2)`](crate::poll). The
//! acceptor hands fresh sockets to shards round-robin through an
//! [`Inbox`] (a mutex-guarded queue plus a self-pipe wake-up, so a
//! reactor blocked in `poll` notices new work immediately). Reactors
//! never run model code: a completed request is `try_push`ed onto the
//! bounded job queue (shedding `503` when full — the same backpressure
//! contract the thread-per-connection design had, now per *request*
//! instead of per connection), and the worker's finished
//! [`Response`] comes back through the same inbox to be written when
//! the socket accepts bytes.
//!
//! Connection state machine (one request outstanding per connection;
//! responses therefore ship in order, and pipelined requests wait
//! buffered in the parser):
//!
//! ```text
//!          POLLIN                 queue.try_push
//! Reading ────────▶ parse ──req──▶ Dispatched ──reply──▶ Writing
//!    ▲                │ (full) 503 + Retry-After            │ POLLOUT
//!    │                ▼                                     ▼
//!    │              Writing                          out buffer empty
//!    └──────────────────────────── keep-alive? ◀────────────┘
//!                                     │ no (or parse error)
//!                                     ▼
//!                                   close
//! ```
//!
//! While a request is dispatched the connection's descriptor is not
//! polled for readability — the kernel receive buffer throttles a
//! client that keeps sending, which bounds per-connection memory
//! without any explicit quota.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{HttpError, Request, RequestParser, Response};
use crate::poll::{poll_fds, PollFd, POLLIN, POLLNVAL, POLLOUT};
use crate::queue::TryPushError;
use crate::server::Shared;

/// A parsed request travelling from a reactor to a worker. The shard
/// and connection id route the response back to the socket it came
/// from; `received_at` stamps queue wait for the tuner.
pub(crate) struct Job {
    /// The fully parsed request.
    pub request: Request,
    /// Reactor-local connection id the response must return to.
    pub conn_id: u64,
    /// Which reactor shard owns the connection.
    pub shard: usize,
    /// When the request finished parsing (queue-wait epoch).
    pub received_at: Instant,
}

/// Work delivered to a reactor shard.
pub(crate) enum Msg {
    /// A freshly accepted socket from the acceptor.
    Accept(TcpStream),
    /// A worker's finished response for one of this shard's sockets.
    Reply {
        /// The connection the response belongs to.
        conn_id: u64,
        /// The response to serialize onto that connection.
        response: Response,
    },
}

/// A reactor shard's mailbox: senders enqueue under a short lock and
/// nudge the self-pipe so a `poll`-blocked reactor wakes. The write end
/// is non-blocking — a full pipe means a wake-up is already pending,
/// which is all a level-triggered poll needs.
pub(crate) struct Inbox {
    queue: Mutex<VecDeque<Msg>>,
    wake_tx: UnixStream,
    wake_rx: Mutex<Option<UnixStream>>,
}

impl Inbox {
    /// A mailbox with a fresh self-pipe pair.
    pub(crate) fn new() -> std::io::Result<Inbox> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        Ok(Inbox {
            queue: Mutex::new(VecDeque::new()),
            wake_tx,
            wake_rx: Mutex::new(Some(wake_rx)),
        })
    }

    /// Enqueues a message and wakes the owning reactor.
    pub(crate) fn send(&self, msg: Msg) {
        self.queue.lock().expect("inbox poisoned").push_back(msg);
        self.wake();
    }

    /// Wakes the owning reactor without a message (shutdown nudge).
    pub(crate) fn wake(&self) {
        // WouldBlock means the pipe already holds an unread wake-up.
        let _ = (&self.wake_tx).write(&[1]);
    }

    fn drain(&self) -> VecDeque<Msg> {
        std::mem::take(&mut *self.queue.lock().expect("inbox poisoned"))
    }

    fn take_rx(&self) -> UnixStream {
        self.wake_rx
            .lock()
            .expect("inbox poisoned")
            .take()
            .expect("reactor wake pipe already taken")
    }
}

/// How long a finished reactor keeps polling to flush pending
/// responses after workers have stopped.
const STOP_FLUSH_TIMEOUT: Duration = Duration::from_secs(1);

/// Poll timeout; bounds how stale the idle sweep and shutdown checks
/// can get when no descriptor turns ready.
const POLL_TICK_MS: i32 = 100;

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    out: Vec<u8>,
    out_pos: usize,
    /// A request from this connection sits in the queue or a worker.
    busy: bool,
    /// Tear the connection down once `out` is flushed.
    close_after_write: bool,
    /// The peer sent FIN; serve what is buffered, accept no more.
    peer_closed: bool,
    last_active: Instant,
}

impl Conn {
    fn wants_read(&self) -> bool {
        !self.busy && !self.close_after_write && !self.peer_closed
    }

    fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

enum ReadOutcome {
    NeedMore,
    Completed(Request),
    Malformed(HttpError),
    PeerClosed,
    Fatal,
}

enum WriteOutcome {
    Flushed,
    Blocked,
    Fatal,
}

struct Reactor<'a> {
    shared: &'a Arc<Shared>,
    shard: usize,
    conns: HashMap<u64, Conn>,
    next_id: u64,
}

/// Body of one reactor thread; returns when the server drains.
pub(crate) fn reactor_loop(shared: &Arc<Shared>, shard: usize) {
    let wake_rx = shared.inboxes[shard].take_rx();
    let mut r = Reactor {
        shared,
        shard,
        conns: HashMap::new(),
        next_id: 1,
    };
    let mut stop_deadline: Option<Instant> = None;
    let mut last_sweep = Instant::now();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut ids: Vec<u64> = Vec::new();

    loop {
        for msg in shared.inboxes[shard].drain() {
            r.on_msg(msg);
        }

        if shared.reactors_stop.load(Ordering::SeqCst) {
            // Workers are gone: no further replies can arrive, so every
            // connection with nothing left to write is done. The rest
            // get a bounded grace period to flush.
            let deadline =
                *stop_deadline.get_or_insert_with(|| Instant::now() + STOP_FLUSH_TIMEOUT);
            let done: Vec<u64> = r
                .conns
                .iter()
                .filter(|(_, c)| !c.wants_write())
                .map(|(&id, _)| id)
                .collect();
            for id in done {
                r.drop_conn(id);
            }
            if r.conns.is_empty() || Instant::now() >= deadline {
                break;
            }
        } else if last_sweep.elapsed() >= Duration::from_secs(1) {
            r.sweep_idle();
            last_sweep = Instant::now();
        }

        fds.clear();
        ids.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        for (&id, conn) in &r.conns {
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.wants_write() {
                events |= POLLOUT;
            }
            // Dispatched connections with nothing to write are left out
            // entirely: POLLHUP is reported regardless of the requested
            // set, and including them would spin the loop until the
            // worker replies.
            if events != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                ids.push(id);
            }
        }
        let timeout = if stop_deadline.is_some() {
            10
        } else {
            POLL_TICK_MS
        };
        if poll_fds(&mut fds, timeout).is_err() {
            continue; // transient; shutdown flags are re-checked above
        }

        if fds[0].ready(POLLIN) {
            let mut scratch = [0u8; 64];
            while matches!((&wake_rx).read(&mut scratch), Ok(n) if n > 0) {}
        }
        for (i, &id) in ids.iter().enumerate() {
            let fd = fds[i + 1];
            if fd.revents == 0 {
                continue;
            }
            if fd.revents & POLLNVAL != 0 {
                r.drop_conn(id);
                continue;
            }
            if fd.ready(POLLOUT) && r.conns.get(&id).is_some_and(Conn::wants_write) {
                r.writable(id);
            }
            if fd.ready(POLLIN) && r.conns.get(&id).is_some_and(Conn::wants_read) {
                r.readable(id);
            }
        }
    }

    let leftover: Vec<u64> = r.conns.keys().copied().collect();
    for id in leftover {
        r.drop_conn(id);
    }
}

impl Reactor<'_> {
    fn on_msg(&mut self, msg: Msg) {
        match msg {
            Msg::Accept(stream) => self.on_accept(stream),
            Msg::Reply { conn_id, response } => self.on_reply(conn_id, response),
        }
    }

    fn on_accept(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let id = self.next_id;
        self.next_id += 1;
        self.conns.insert(
            id,
            Conn {
                stream,
                parser: RequestParser::new(self.shared.max_body_bytes),
                out: Vec::new(),
                out_pos: 0,
                busy: false,
                close_after_write: false,
                peer_closed: false,
                last_active: Instant::now(),
            },
        );
        self.shared.metrics.connections.add(1.0);
        // The first request's bytes often race the Accept message here;
        // read eagerly instead of waiting a poll cycle.
        self.readable(id);
    }

    fn on_reply(&mut self, conn_id: u64, response: Response) {
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return; // the client vanished while the worker computed
        };
        conn.busy = false;
        self.queue_response(conn_id, response);
    }

    /// Reads until the socket would block, a request completes, or the
    /// peer closes, then acts on whichever came first.
    fn readable(&mut self, id: u64) {
        let _span = self
            .shared
            .tracer
            .as_deref()
            .map(|t| t.span("serve", "serve.parse"));
        let outcome = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            let mut buf = [0u8; 16 * 1024];
            loop {
                if !conn.wants_read() {
                    break ReadOutcome::NeedMore;
                }
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break ReadOutcome::PeerClosed;
                    }
                    Ok(n) => {
                        conn.last_active = Instant::now();
                        match conn.parser.push(&buf[..n]) {
                            Ok(Some(request)) => break ReadOutcome::Completed(request),
                            Ok(None) => {}
                            Err(e) => break ReadOutcome::Malformed(e),
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        break ReadOutcome::NeedMore
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break ReadOutcome::Fatal,
                }
            }
        };
        match outcome {
            ReadOutcome::NeedMore => {}
            ReadOutcome::Completed(request) => self.dispatch(id, request),
            ReadOutcome::Malformed(e) => self.bad_request(id, &e),
            ReadOutcome::Fatal => self.drop_conn(id),
            ReadOutcome::PeerClosed => {
                let verdict = self.conns.get(&id).map(|c| {
                    (
                        !c.busy && !c.wants_write() && c.parser.buffered() > 0,
                        !c.busy && !c.wants_write() && c.parser.buffered() == 0,
                    )
                });
                match verdict {
                    Some((true, _)) => self.bad_request(
                        id,
                        &HttpError::BadRequest("connection closed mid-request".into()),
                    ),
                    Some((_, true)) => self.drop_conn(id),
                    _ => {} // a response is still in flight or pending
                }
            }
        }
    }

    /// Hands a parsed request to the worker pool, shedding `503` when
    /// the bounded queue is full or the server is draining.
    fn dispatch(&mut self, id: u64, request: Request) {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            let resp = Response::error_json(503, "server is shutting down");
            self.queue_response(id, resp);
            return;
        }
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        conn.busy = true;
        let job = Job {
            request,
            conn_id: id,
            shard: self.shard,
            received_at: Instant::now(),
        };
        match self.shared.queue.try_push(job) {
            Ok(depth) => self.shared.metrics.queue_depth.set(depth as f64),
            Err(TryPushError::Full(_)) => {
                conn.busy = false;
                self.shared.metrics.sheds.inc();
                self.shared.metrics.responses_5xx.inc();
                self.shared.flight.record("shed", "queue full, 503", None);
                let resp = Response::error_json(503, "server is at capacity, retry shortly")
                    .with_header("Retry-After", "1");
                self.queue_response(id, resp);
            }
            Err(TryPushError::Closed(_)) => {
                conn.busy = false;
                let resp = Response::error_json(503, "server is shutting down");
                self.queue_response(id, resp);
            }
        }
    }

    /// Answers a framing/parse error. The status goes out *after*
    /// whatever is already buffered (a pipelined follow-up can be
    /// malformed without corrupting the in-flight response), then the
    /// connection closes.
    fn bad_request(&mut self, id: u64, e: &HttpError) {
        self.shared.metrics.requests_total.inc();
        self.shared.metrics.responses_4xx.inc();
        self.shared
            .flight
            .record("bad_request", &e.to_string(), None);
        let resp = Response::error_json(e.status(), &e.to_string());
        self.queue_response(id, resp);
    }

    /// Serializes a response onto the connection's write buffer and
    /// flushes as much as the socket takes right now.
    fn queue_response(&mut self, id: u64, response: Response) {
        let Some(conn) = self.conns.get_mut(&id) else {
            return;
        };
        if !response.keep_alive() {
            conn.close_after_write = true;
        }
        conn.out.extend_from_slice(&response.to_bytes());
        self.writable(id);
    }

    fn writable(&mut self, id: u64) {
        let outcome = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            loop {
                if !conn.wants_write() {
                    break WriteOutcome::Flushed;
                }
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => break WriteOutcome::Fatal,
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_active = Instant::now();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        break WriteOutcome::Blocked
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => break WriteOutcome::Fatal,
                }
            }
        };
        match outcome {
            WriteOutcome::Blocked => {}
            WriteOutcome::Fatal => self.drop_conn(id),
            WriteOutcome::Flushed => {
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.out.clear();
                    conn.out_pos = 0;
                }
                self.advance(id);
            }
        }
    }

    /// After a full flush: close, serve the next pipelined request, or
    /// go back to waiting for bytes.
    fn advance(&mut self, id: u64) {
        enum Next {
            Close,
            Dispatch(Request),
            Reject(HttpError),
            Wait,
        }
        let next = {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.close_after_write {
                Next::Close
            } else if conn.busy {
                Next::Wait
            } else {
                match conn.parser.next_request() {
                    Ok(Some(request)) => Next::Dispatch(request),
                    Ok(None) if conn.peer_closed && conn.parser.buffered() > 0 => Next::Reject(
                        HttpError::BadRequest("connection closed mid-request".into()),
                    ),
                    Ok(None) if conn.peer_closed => Next::Close,
                    Ok(None) => Next::Wait,
                    Err(e) => Next::Reject(e),
                }
            }
        };
        match next {
            Next::Close => self.drop_conn(id),
            Next::Dispatch(request) => self.dispatch(id, request),
            Next::Reject(e) => self.bad_request(id, &e),
            Next::Wait => {}
        }
    }

    fn drop_conn(&mut self, id: u64) {
        if self.conns.remove(&id).is_some() {
            self.shared.metrics.connections.add(-1.0);
        }
    }

    /// Closes connections idle past the configured timeout — both
    /// keep-alive sockets between requests and peers that stalled
    /// mid-request (the old per-read socket timeout's job).
    fn sweep_idle(&mut self) {
        let timeout = self.shared.idle_timeout;
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.busy && !c.wants_write() && c.last_active.elapsed() > timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in idle {
            self.drop_conn(id);
        }
    }
}
