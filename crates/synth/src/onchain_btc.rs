//! The On-chain Metrics (BTC) inventory (~111 metrics).
//!
//! Names follow the Coinmetrics vocabulary used throughout the paper's
//! Tables 2–4. Loading conventions (see [`crate::spec::MetricKind`]):
//! tuples are `(adoption, trend, cycle, momentum, level)`.
//!
//! The economic structure encoded here:
//! * **USD-threshold address counts** (`AdrBalUSD#Cnt`) rise mechanically
//!   with the price level → strong level loading, low noise → the
//!   short-term relevance Table 3 shows for `AdrBalUSD100Cnt`.
//! * **Supply-distribution metrics** (`SplyAdrBal*`) are slow, low-noise
//!   trackers of trend + adoption → the long-term dominance Table 3 shows.
//! * **`RevAllTimeUSD` / `CapRealUSD`** are integrated/smoothed price
//!   transforms → important at *every* horizon, as the paper finds.
//! * **Activity metrics** (`TxCnt`, `SplyAct7d`, …) load on cycle and
//!   momentum → short/medium horizons.
//! * Ratio metrics (`NVTAdj`, `CapMVRVCur`) are mean-reverting.
//!
//! A handful of metrics carry deliberate defects (frozen feeds, outages)
//! so the cleaning phase has real work to do.

use c100_timeseries::Date;

use crate::btc::btc_supply_on;
use crate::spec::{Defect, GenCtx, MetricSpec};
use crate::{DataCategory, SynthConfig};

const CAT: DataCategory = DataCategory::OnChainBtc;

fn d(y: i32, m: u32, day: u32) -> Date {
    Date::from_ymd(y, m, day).expect("valid constant date")
}

/// Cumulative all-time miner revenue in USD: Σ issuance·price·(1+fee share),
/// anchored at ≈$4B before the observation window.
fn rev_all_time(ctx: &mut GenCtx) -> Vec<f64> {
    let n = ctx.latents.n_total();
    let warmup = ctx.latents.warmup as i32;
    let mut acc = 4.0e9;
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let date = ctx.config.start.add_days(t as i32 - warmup);
        let issuance = daily_issuance(date);
        let price = ctx.btc.close_extended[t];
        acc += issuance * price * 1.03;
        out.push(acc);
    }
    out
}

/// Daily BTC issuance implied by the supply curve.
fn daily_issuance(date: Date) -> f64 {
    btc_supply_on(date.add_days(1)) - btc_supply_on(date)
}

/// Realized cap proxy: 200-day EMA of market cap.
fn realized_cap(ctx: &mut GenCtx) -> Vec<f64> {
    ema_path(&ctx.btc.market_cap_extended, 200.0)
}

fn ema_path(values: &[f64], span: f64) -> Vec<f64> {
    let alpha = 2.0 / (span + 1.0);
    let mut out = Vec::with_capacity(values.len());
    let mut prev = values[0];
    for &v in values {
        prev = alpha * v + (1.0 - alpha) * prev;
        out.push(prev);
    }
    out
}

/// Hash rate: follows the price with a ~60-day lag plus secular growth —
/// realistic, and deliberately *not* predictive of future prices.
fn hash_rate(ctx: &mut GenCtx) -> Vec<f64> {
    let smooth_log_price = ema_path(&ctx.latents.log_price, 60.0);
    let n = ctx.latents.n_total();
    (0..n)
        .map(|t| {
            let lagged = smooth_log_price[t.saturating_sub(60)];
            // Efficiency growth ~0.2%/day plus price response.
            (0.9 * lagged + 0.002 * t as f64 + 0.05 * ctx.noise()).exp() * 2.0e12
        })
        .collect()
}

/// Trailing return over `w` days, from the extended close series.
fn roi(ctx: &mut GenCtx, w: usize) -> Vec<f64> {
    let close = &ctx.btc.close_extended;
    (0..close.len())
        .map(|t| close[t] / close[t.saturating_sub(w)].max(f64::MIN_POSITIVE) - 1.0)
        .collect()
}

/// Market-value-to-realized-value ratio.
fn mvrv(ctx: &mut GenCtx) -> Vec<f64> {
    let realized = ema_path(&ctx.btc.market_cap_extended, 200.0);
    ctx.btc
        .market_cap_extended
        .iter()
        .zip(&realized)
        .map(|(cap, real)| cap / real.max(f64::MIN_POSITIVE))
        .collect()
}

/// Stock-to-flow ratio: supply / annualized issuance (steps at halvings).
fn s2f(ctx: &mut GenCtx) -> Vec<f64> {
    let n = ctx.latents.n_total();
    let warmup = ctx.latents.warmup as i32;
    (0..n)
        .map(|t| {
            let date = ctx.config.start.add_days(t as i32 - warmup);
            let flow = daily_issuance(date) * 365.25;
            btc_supply_on(date) / flow * (1.0 + 0.01 * ctx.noise())
        })
        .collect()
}

/// Builds the full BTC on-chain spec list.
pub fn specs(config: &SynthConfig) -> Vec<MetricSpec> {
    let start = config.start;
    let mut specs: Vec<MetricSpec> = Vec::with_capacity(120);

    // --- Address count families -----------------------------------------
    // AdrBal1in#Cnt: addresses holding ≥ 1/#-th of supply (whales → dust).
    let one_in: [&str; 8] = ["1K", "10K", "100K", "1M", "10M", "100M", "1B", "10B"];
    for (i, suffix) in one_in.iter().enumerate() {
        let x = i as f64 / 7.0; // 0 = whales, 1 = dust accounts
        specs.push(MetricSpec::log_linear(
            format!("AdrBal1in{suffix}Cnt"),
            CAT,
            start,
            4.0 + 2.2 * i as f64,
            (0.3 + 0.5 * x, 0.30 - 0.18 * x, 0.04, 0.0, 0.04),
            0,
            0.05 + 0.03 * x,
        ));
    }
    // AdrBalUSD#Cnt: addresses above a dollar threshold — mechanically
    // price-level sensitive (more so for high thresholds).
    let usd_thresholds: [&str; 8] = ["1", "10", "100", "1K", "10K", "100K", "1M", "10M"];
    for (i, suffix) in usd_thresholds.iter().enumerate() {
        let x = i as f64 / 7.0;
        specs.push(MetricSpec::log_linear(
            format!("AdrBalUSD{suffix}Cnt"),
            CAT,
            start,
            17.0 - 1.7 * i as f64,
            (0.55 - 0.25 * x, 0.10, 0.05, 0.02, 0.35 + 0.35 * x),
            0,
            0.04 + 0.02 * x,
        ));
    }
    // AdrBalNtv#Cnt: native-unit thresholds — no mechanical price link.
    let ntv_thresholds: [&str; 8] = ["0.001", "0.01", "0.1", "1", "10", "100", "1K", "10K"];
    for (i, suffix) in ntv_thresholds.iter().enumerate() {
        let x = i as f64 / 7.0;
        specs.push(MetricSpec::log_linear(
            format!("AdrBalNtv{suffix}Cnt"),
            CAT,
            start,
            16.0 - 1.5 * i as f64,
            (0.65 - 0.3 * x, 0.12 + 0.2 * x, 0.03, 0.0, 0.03),
            0,
            0.04,
        ));
    }

    // --- Supply distribution families ------------------------------------
    // SplyAdrBalUSD#: supply held above dollar thresholds.
    for (i, suffix) in usd_thresholds.iter().enumerate() {
        let x = i as f64 / 7.0;
        specs.push(MetricSpec::log_linear(
            format!("SplyAdrBalUSD{suffix}"),
            CAT,
            start,
            16.5 - 0.5 * i as f64,
            (0.30, 0.28 + 0.1 * x, 0.05, 0.0, 0.18 + 0.2 * x),
            0,
            0.035,
        ));
    }
    // SplyAdrBalNtv#: supply above native thresholds — the slow wealth-
    // distribution trackers that dominate the paper's long-term group.
    for (i, suffix) in ntv_thresholds.iter().enumerate() {
        let x = i as f64 / 7.0;
        specs.push(MetricSpec::log_linear(
            format!("SplyAdrBalNtv{suffix}"),
            CAT,
            start,
            16.6 - 0.35 * i as f64,
            (0.42 - 0.1 * x, 0.30 + 0.12 * x, 0.04, 0.0, 0.02),
            0,
            0.03,
        ));
    }
    // SplyAdrBal1in#: supply held by ≥1/#-owners.
    for (i, suffix) in one_in.iter().take(7).enumerate() {
        let x = i as f64 / 6.0;
        specs.push(MetricSpec::log_linear(
            format!("SplyAdrBal1in{suffix}"),
            CAT,
            start,
            16.4 - 0.3 * i as f64,
            (0.30, 0.26 + 0.10 * x, 0.05, 0.0, 0.04),
            0,
            0.035,
        ));
    }
    for (name, load_trend) in [
        ("SplyAdrTop1Pct", 0.32),
        ("SplyAdrTop10Pct", 0.26),
        ("SplyAdrTop100", 0.38),
    ] {
        specs.push(MetricSpec::log_linear(
            name,
            CAT,
            start,
            16.3,
            (0.2, load_trend, 0.05, 0.0, 0.03),
            0,
            0.04,
        ));
    }

    // --- Supply activity ---------------------------------------------------
    // Short activity windows load on momentum/cycle, long on trend.
    let act_windows: [(&str, f64, f64, f64); 10] = [
        ("1d", 0.02, 0.25, 0.50),
        ("7d", 0.05, 0.30, 0.35),
        ("30d", 0.10, 0.35, 0.18),
        ("90d", 0.18, 0.30, 0.08),
        ("180d", 0.25, 0.22, 0.04),
        ("1yr", 0.30, 0.15, 0.02),
        ("2yr", 0.32, 0.08, 0.0),
        ("3yr", 0.33, 0.05, 0.0),
        ("4yr", 0.33, 0.03, 0.0),
        ("5yr", 0.32, 0.02, 0.0),
    ];
    for (suffix, tr, cy, mo) in act_windows {
        let mut spec = MetricSpec::log_linear(
            format!("SplyAct{suffix}"),
            CAT,
            start,
            15.2,
            (0.25, tr, cy, mo, 0.0),
            0,
            0.06,
        );
        if suffix == "4yr" {
            // A realistic outage: the feed broke for a quarter in 2021.
            spec = spec.with_defect(Defect::MissingRange(d(2021, 2, 1), d(2021, 5, 15)));
        }
        specs.push(spec);
    }
    specs.push(MetricSpec::bounded(
        "SplyActPct1yr",
        CAT,
        start,
        (20.0, 75.0),
        (0.45, 0.30, 0.05),
        0.0,
        0.12,
    ));
    specs.push(MetricSpec::custom("SplyActEver", CAT, start, |ctx| {
        // Fraction of supply ever active: logistic in adoption.
        let n = ctx.latents.n_total();
        let warmup = ctx.latents.warmup as i32;
        (0..n)
            .map(|t| {
                let a = ctx.latents.adoption[t];
                let date = ctx.config.start.add_days(t as i32 - warmup);
                let frac = 0.75 + 0.20 / (1.0 + (-0.8 * a).exp());
                btc_supply_on(date) * frac * (1.0 + 0.002 * ctx.noise())
            })
            .collect()
    }));
    specs.push(MetricSpec::custom("SplyCur", CAT, start, |ctx| {
        let n = ctx.latents.n_total();
        let warmup = ctx.latents.warmup as i32;
        (0..n)
            .map(|t| btc_supply_on(ctx.config.start.add_days(t as i32 - warmup)))
            .collect()
    }));
    specs.push(MetricSpec::log_linear(
        "SplyFF",
        CAT,
        start,
        16.5,
        (0.15, 0.12, 0.03, 0.0, 0.02),
        0,
        0.02,
    ));
    specs.push(MetricSpec::log_linear(
        "SplyMiner0HopAllUSD",
        CAT,
        start,
        14.8,
        (0.10, 0.18, 0.12, 0.06, 0.75),
        0,
        0.05,
    ));
    specs.push(
        MetricSpec::log_linear(
            "SplyMiner1HopAllUSD",
            CAT,
            start,
            15.0,
            (0.10, 0.15, 0.10, 0.05, 0.70),
            0,
            0.05,
        )
        // The feed froze mid-2021 — cleaned away in both scenario sets.
        .with_defect(Defect::FlatAfter(d(2021, 7, 1))),
    );

    // --- Capitalization metrics -------------------------------------------
    specs.push(MetricSpec::custom("CapRealUSD", CAT, start, realized_cap));
    specs.push(MetricSpec::log_linear(
        "CapMrktCurUSD",
        CAT,
        start,
        24.0,
        (0.0, 0.0, 0.0, 0.0, 1.0),
        0,
        0.002,
    ));
    specs.push(MetricSpec::log_linear(
        "CapMrktFFUSD",
        CAT,
        start,
        23.8,
        (0.02, 0.02, 0.0, 0.0, 0.98),
        0,
        0.01,
    ));
    specs.push(MetricSpec::log_linear(
        "CapAct1yrUSD",
        CAT,
        start,
        23.0,
        (0.10, 0.20, 0.15, 0.05, 0.80),
        0,
        0.04,
    ));
    specs.push(MetricSpec::custom("CapMVRVCur", CAT, start, mvrv));
    specs.push(
        MetricSpec::custom("CapMVRVFF", CAT, start, mvrv)
            .with_defect(Defect::FlatAfter(d(2022, 1, 10))),
    );

    // --- Miner revenue and fees --------------------------------------------
    specs.push(MetricSpec::custom(
        "RevAllTimeUSD",
        CAT,
        start,
        rev_all_time,
    ));
    specs.push(MetricSpec::custom("RevUSD", CAT, start, |ctx| {
        let n = ctx.latents.n_total();
        let warmup = ctx.latents.warmup as i32;
        (0..n)
            .map(|t| {
                let date = ctx.config.start.add_days(t as i32 - warmup);
                daily_issuance(date) * ctx.btc.close_extended[t] * (1.03 + 0.02 * ctx.noise().abs())
            })
            .collect()
    }));
    specs.push(MetricSpec::custom("RevNtv", CAT, start, |ctx| {
        let n = ctx.latents.n_total();
        let warmup = ctx.latents.warmup as i32;
        (0..n)
            .map(|t| {
                let date = ctx.config.start.add_days(t as i32 - warmup);
                daily_issuance(date) * (1.03 + 0.02 * ctx.noise().abs())
            })
            .collect()
    }));
    specs.push(MetricSpec::custom("RevHashRateUSD", CAT, start, |ctx| {
        let hr = hash_rate(ctx);
        let n = ctx.latents.n_total();
        let warmup = ctx.latents.warmup as i32;
        (0..n)
            .map(|t| {
                let date = ctx.config.start.add_days(t as i32 - warmup);
                daily_issuance(date) * ctx.btc.close_extended[t] * 1.03 / hr[t]
            })
            .collect()
    }));
    specs.push(MetricSpec::log_linear(
        "FeeTotUSD",
        CAT,
        start,
        13.0,
        (0.15, 0.10, 0.40, 0.50, 0.60),
        0,
        0.25,
    ));
    specs.push(MetricSpec::log_linear(
        "FeeMeanUSD",
        CAT,
        start,
        1.0,
        (0.0, 0.05, 0.35, 0.45, 0.55),
        0,
        0.25,
    ));
    specs.push(
        MetricSpec::log_linear(
            "FeeMedUSD",
            CAT,
            start,
            0.3,
            (0.0, 0.05, 0.30, 0.40, 0.50),
            0,
            0.25,
        )
        .with_defect(Defect::MissingRange(d(2020, 8, 1), d(2020, 11, 20))),
    );

    // --- Network infrastructure ---------------------------------------------
    specs.push(MetricSpec::custom("HashRate", CAT, start, hash_rate));
    specs.push(MetricSpec::custom("DiffMean", CAT, start, |ctx| {
        hash_rate(ctx).iter().map(|h| h * 600.0 / 7.0e9).collect()
    }));
    specs.push(MetricSpec::log_linear(
        "BlkCnt",
        CAT,
        start,
        (144.0f64).ln(),
        (0.0, 0.0, 0.0, 0.0, 0.0),
        0,
        0.04,
    ));
    specs.push(
        MetricSpec::log_linear(
            "BlkSizeMeanByte",
            CAT,
            start,
            13.6,
            (0.05, 0.02, 0.10, 0.10, 0.0),
            0,
            0.08,
        )
        .with_defect(Defect::FlatAfter(d(2021, 6, 1))),
    );

    // --- Transactions ----------------------------------------------------------
    specs.push(MetricSpec::log_linear(
        "TxCnt",
        CAT,
        start,
        12.5,
        (0.30, 0.08, 0.30, 0.35, 0.05),
        0,
        0.07,
    ));
    specs.push(MetricSpec::log_linear(
        "TxTfrCnt",
        CAT,
        start,
        12.9,
        (0.30, 0.08, 0.28, 0.33, 0.05),
        0,
        0.07,
    ));
    specs.push(MetricSpec::log_linear(
        "TxTfrValAdjUSD",
        CAT,
        start,
        21.5,
        (0.15, 0.10, 0.35, 0.30, 0.70),
        0,
        0.12,
    ));
    specs.push(MetricSpec::log_linear(
        "TxTfrValMeanUSD",
        CAT,
        start,
        8.6,
        (0.0, 0.05, 0.25, 0.20, 0.60),
        0,
        0.15,
    ));
    specs.push(MetricSpec::log_linear(
        "TxTfrValMedUSD",
        CAT,
        start,
        5.0,
        (0.0, 0.05, 0.20, 0.18, 0.55),
        0,
        0.15,
    ));
    specs.push(MetricSpec::log_linear(
        "AdrActCnt",
        CAT,
        start,
        13.5,
        (0.35, 0.10, 0.30, 0.40, 0.05),
        0,
        0.06,
    ));
    specs.push(MetricSpec::log_linear(
        "AdrNewCnt",
        CAT,
        start,
        12.8,
        (0.35, 0.10, 0.30, 0.45, 0.05),
        0,
        0.08,
    ));

    // --- Ratios, velocity, ROI ----------------------------------------------
    specs.push(MetricSpec::log_linear(
        "NVTAdj",
        CAT,
        start,
        (55.0f64).ln(),
        (0.0, -0.05, -0.35, -0.30, 0.0),
        0,
        0.15,
    ));
    specs.push(
        MetricSpec::log_linear(
            "NVTAdj90",
            CAT,
            start,
            (60.0f64).ln(),
            (0.0, -0.10, -0.30, -0.10, 0.0),
            0,
            0.08,
        )
        .with_defect(Defect::MissingRange(d(2019, 9, 1), d(2019, 12, 15))),
    );
    specs.push(MetricSpec::log_linear(
        "VelCur1yr",
        CAT,
        start,
        (6.0f64).ln(),
        (-0.10, 0.15, 0.20, 0.05, 0.0),
        0,
        0.05,
    ));
    specs.push(MetricSpec::custom("ROI30d", CAT, start, |ctx| roi(ctx, 30)));
    specs.push(MetricSpec::custom("ROI1yr", CAT, start, |ctx| {
        roi(ctx, 365)
    }));
    specs.push(MetricSpec::bounded(
        "SER",
        CAT,
        start,
        (0.02, 0.20),
        (-0.45, -0.10, 0.0),
        0.0,
        0.10,
    ));
    specs.push(MetricSpec::custom("s2f_ratio", CAT, start, s2f));

    // --- Issuance -----------------------------------------------------------
    specs.push(MetricSpec::custom("IssContNtv", CAT, start, |ctx| {
        let n = ctx.latents.n_total();
        let warmup = ctx.latents.warmup as i32;
        (0..n)
            .map(|t| daily_issuance(ctx.config.start.add_days(t as i32 - warmup)))
            .collect()
    }));
    specs.push(
        MetricSpec::custom("IssContPctAnn", CAT, start, |ctx| {
            let n = ctx.latents.n_total();
            let warmup = ctx.latents.warmup as i32;
            (0..n)
                .map(|t| {
                    let date = ctx.config.start.add_days(t as i32 - warmup);
                    daily_issuance(date) * 365.25 / btc_supply_on(date) * 100.0
                })
                .collect()
        })
        .with_defect(Defect::FlatAfter(d(2021, 1, 1))),
    );
    specs.push(MetricSpec::custom("IssTotUSD", CAT, start, |ctx| {
        let n = ctx.latents.n_total();
        let warmup = ctx.latents.warmup as i32;
        (0..n)
            .map(|t| {
                let date = ctx.config.start.add_days(t as i32 - warmup);
                daily_issuance(date) * ctx.btc.close_extended[t]
            })
            .collect()
    }));

    // --- Exchange flows --------------------------------------------------------
    specs.push(MetricSpec::log_linear(
        "FlowInExUSD",
        CAT,
        start,
        20.0,
        (0.10, -0.05, -0.25, 0.30, 0.65),
        0,
        0.15,
    ));
    specs.push(MetricSpec::log_linear(
        "FlowOutExUSD",
        CAT,
        start,
        20.0,
        (0.10, 0.08, 0.28, 0.25, 0.65),
        0,
        0.15,
    ));
    specs.push(MetricSpec::log_linear(
        "FlowInExNtv",
        CAT,
        start,
        11.5,
        (0.08, -0.05, -0.25, 0.28, 0.0),
        0,
        0.15,
    ));
    specs.push(MetricSpec::log_linear(
        "FlowOutExNtv",
        CAT,
        start,
        11.5,
        (0.08, 0.08, 0.28, 0.22, 0.0),
        0,
        0.15,
    ));
    specs.push(MetricSpec::log_linear(
        "SplyExNtv",
        CAT,
        start,
        14.4,
        (0.15, -0.20, -0.15, 0.0, 0.0),
        0,
        0.04,
    ));

    // --- Holder cohorts -----------------------------------------------------
    specs.push(MetricSpec::bounded(
        "fish_pct",
        CAT,
        start,
        (0.08, 0.22),
        (0.35, 0.20, 0.02),
        0.0,
        0.06,
    ));
    specs.push(MetricSpec::bounded(
        "shrimps_pct",
        CAT,
        start,
        (0.30, 0.55),
        (-0.30, -0.15, 0.0),
        0.0,
        0.06,
    ));
    specs.push(MetricSpec::bounded(
        "whales_pct",
        CAT,
        start,
        (0.25, 0.45),
        (0.25, 0.12, 0.0),
        0.3,
        0.07,
    ));
    specs.push(MetricSpec::bounded(
        "sharks_pct",
        CAT,
        start,
        (0.10, 0.25),
        (0.28, 0.15, 0.0),
        0.0,
        0.07,
    ));
    specs.push(MetricSpec::log_linear(
        "total_balance",
        CAT,
        start,
        16.55,
        (0.20, 0.22, 0.06, 0.0, 0.03),
        0,
        0.025,
    ));
    specs.push(MetricSpec::log_linear(
        "market_cap",
        CAT,
        start,
        24.0,
        (0.0, 0.0, 0.0, 0.0, 1.0),
        0,
        0.003,
    ));

    // Chain data is measured, not surveyed: Coinmetrics-style feeds carry
    // little measurement noise. Scaling the declared noises down keeps the
    // category's relative structure while making it the high-fidelity
    // source the paper finds it to be.
    for spec in &mut specs {
        spec.noise *= 0.6;
        // Complementarity: BTC chain data excels at adoption/level (and
        // momentum through activity); the slow market *trend* is better
        // observed through traditional markets and stablecoin flows, so
        // its footprint here is damped.
        match &mut spec.kind {
            crate::spec::MetricKind::LogLinear { trend, cycle, .. } => {
                *trend *= 0.6;
                *cycle *= 0.35;
            }
            crate::spec::MetricKind::Bounded { trend, .. } => *trend *= 0.6,
            crate::spec::MetricKind::Custom(_) => {}
        }
    }

    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latent::simulate;
    use crate::spec::materialize;

    #[test]
    fn inventory_size_and_uniqueness() {
        let cfg = SynthConfig::default();
        let list = specs(&cfg);
        assert!(list.len() >= 105, "{} specs", list.len());
        let names: std::collections::HashSet<&str> = list.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), list.len(), "duplicate metric names");
        for s in &list {
            assert_eq!(s.category, DataCategory::OnChainBtc);
        }
    }

    #[test]
    fn paper_vocabulary_present() {
        let cfg = SynthConfig::default();
        let names: Vec<String> = specs(&cfg).iter().map(|s| s.name.clone()).collect();
        for expected in [
            "RevAllTimeUSD",
            "CapRealUSD",
            "AdrBalUSD100Cnt",
            "SplyAdrBalUSD100",
            "SplyAdrBalNtv0.01",
            "SplyCur",
            "SplyActEver",
            "fish_pct",
            "shrimps_pct",
            "total_balance",
            "market_cap",
            "SER",
            "s2f_ratio",
            "VelCur1yr",
            "RevHashRateUSD",
            "SplyMiner0HopAllUSD",
            "AdrBalNtv0.1Cnt",
            "SplyAdrTop1Pct",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn key_metrics_materialize_sensibly() {
        let cfg = SynthConfig::small(21);
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        let frame = materialize(&specs(&cfg), &cfg, &latents, &btc);

        // RevAllTimeUSD is cumulative: strictly increasing.
        let rev = frame.column("RevAllTimeUSD").unwrap().values();
        for w in rev.windows(2) {
            assert!(w[1] > w[0]);
        }
        // market_cap tracks BTC cap closely.
        let mc = frame.column("market_cap").unwrap().values();
        let corr = c100_timeseries::stats::pearson(mc, &btc.market_cap);
        assert!(corr > 0.99, "market_cap corr {corr}");
        // CapRealUSD is smoother than market cap (smaller daily moves).
        let real = frame.column("CapRealUSD").unwrap().values();
        let rough = |v: &[f64]| v.windows(2).map(|w| (w[1] / w[0]).ln().abs()).sum::<f64>();
        assert!(rough(real) < 0.3 * rough(mc));
        // SplyCur matches the issuance curve.
        let sply = frame.column("SplyCur").unwrap().values();
        assert_eq!(sply[0], btc_supply_on(cfg.start));
    }

    #[test]
    fn defective_metrics_have_defects() {
        let cfg = SynthConfig::default();
        let latents = simulate(&cfg);
        let btc = crate::btc::simulate_btc(&cfg, &latents);
        let frame = materialize(&specs(&cfg), &cfg, &latents, &btc);
        let frozen = frame.column("SplyMiner1HopAllUSD").unwrap();
        assert!(frozen.longest_flat_run() > 365);
        let outage = frame.column("FeeMedUSD").unwrap();
        assert!(outage.longest_missing_run() > 60);
    }
}
