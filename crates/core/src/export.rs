//! Exporting pipeline results as servable model artifacts.
//!
//! A [`crate::pipeline::ScenarioResult`] already holds the tuned-RF
//! final model; this module persists it — and a GBDT counterpart refit
//! on the same final feature vector — into a
//! [`c100_store::ArtifactStore`], stamped with the scenario, ordered
//! feature schema, profile descriptor, hyperparameters and train-range
//! metadata. Once exported, `repro predict` (or any [`BatchPredictor`])
//! serves forecasts from disk without touching the training pipeline.
//!
//! [`BatchPredictor`]: c100_store::BatchPredictor

use c100_ml::data::Matrix;
use c100_ml::gbdt::{Gbdt, GbdtConfig};
use c100_store::{ArtifactStore, ManifestEntry, ModelArtifact, ModelPayload};

use crate::pipeline::{ScenarioResult, ScenarioSpec};
use crate::profile::Profile;
use crate::Result;

/// Builds the RF artifact for a scenario result (no refit: the final
/// model fitted by the pipeline's `final_fit` stage is persisted as-is).
pub fn rf_artifact(result: &ScenarioResult, profile: &Profile) -> Result<ModelArtifact> {
    let mut artifact = artifact_shell(
        result,
        profile,
        ModelPayload::Rf(result.final_model.clone()),
    )?;
    artifact.hyperparameters = ModelArtifact::rf_hyperparameters(&result.tuned_rf);
    Ok(artifact)
}

/// Builds the GBDT artifact: the tuned GBDT refit on the final feature
/// vector with a dedicated deterministic stage seed.
pub fn gbdt_artifact(result: &ScenarioResult, profile: &Profile) -> Result<ModelArtifact> {
    let refs: Vec<&str> = result.final_features.iter().map(|s| s.as_str()).collect();
    let train = result.scenario.train_matrix(&refs)?;
    let fx = Matrix::from_row_major(train.x.clone(), train.n_features)?;
    let seed = profile.stage_seed(&format!("{}:export-gbdt", result.scenario.id()));
    let model = result.tuned_gbdt.fit(&fx, &train.y, seed)?;
    let mut artifact = artifact_shell(result, profile, ModelPayload::Gbdt(model))?;
    artifact.hyperparameters = ModelArtifact::gbdt_hyperparameters(&result.tuned_gbdt);
    Ok(artifact)
}

/// Persists both final models (RF as fitted, GBDT refit on the final
/// vector) for one scenario. Returns the manifest entries in
/// `[rf, gbdt]` order.
pub fn export_scenario_artifacts(
    store: &mut ArtifactStore,
    result: &ScenarioResult,
    profile: &Profile,
) -> Result<Vec<ManifestEntry>> {
    let rf = store.save(&rf_artifact(result, profile)?)?;
    let gbdt = store.save(&gbdt_artifact(result, profile)?)?;
    Ok(vec![rf, gbdt])
}

/// Persists artifacts for every scenario of a finished evaluation.
pub fn export_all_artifacts(
    store: &mut ArtifactStore,
    results: &[ScenarioResult],
    profile: &Profile,
) -> Result<Vec<ManifestEntry>> {
    let mut entries = Vec::with_capacity(results.len() * 2);
    for result in results {
        entries.extend(export_scenario_artifacts(store, result, profile)?);
    }
    Ok(entries)
}

/// Builds a GBDT artifact for a model fitted *outside* the batch
/// pipeline. The streaming rollover controller refits on live tick
/// history, so there is no [`ScenarioResult`] to derive metadata from —
/// the caller supplies the feature schema and train-range metadata that
/// `artifact_shell` would otherwise read off the scenario.
#[allow(clippy::too_many_arguments)]
pub fn online_gbdt_artifact(
    spec: &ScenarioSpec,
    profile: &Profile,
    features: &[String],
    config: &GbdtConfig,
    model: Gbdt,
    train_rows: u64,
    train_start: &str,
    train_end: &str,
) -> ModelArtifact {
    ModelArtifact {
        scenario: spec.id(),
        period: spec.period.label().to_string(),
        window: spec.window as u64,
        features: features.to_vec(),
        profile: profile.descriptor(),
        seed: profile.seed,
        train_rows,
        train_start: train_start.to_string(),
        train_end: train_end.to_string(),
        hyperparameters: ModelArtifact::gbdt_hyperparameters(config),
        model: ModelPayload::Gbdt(model),
    }
}

/// The metadata shell shared by both families; the model payload is
/// swapped in, hyperparameters are family-specific.
fn artifact_shell(
    result: &ScenarioResult,
    profile: &Profile,
    model: ModelPayload,
) -> Result<ModelArtifact> {
    let scenario = &result.scenario;
    // Row count of the design matrix actually fitted on (NaN-target rows
    // near the split are dropped by `to_matrix`).
    let refs: Vec<&str> = result.final_features.iter().map(|s| s.as_str()).collect();
    let train_rows = scenario.train_matrix(&refs)?.n_rows() as u64;
    Ok(ModelArtifact {
        scenario: scenario.id(),
        period: scenario.period.label().to_string(),
        window: scenario.window as u64,
        features: result.final_features.clone(),
        profile: profile.descriptor(),
        seed: profile.seed,
        train_rows,
        train_start: scenario.frame.date_at(0).to_string(),
        train_end: scenario.frame.date_at(scenario.split_row - 1).to_string(),
        hyperparameters: Default::default(),
        model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_scenario, ScenarioSpec};
    use crate::scenario::Period;
    use c100_store::BatchPredictor;
    use c100_synth::{generate, SynthConfig};

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("c100_export_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn export_round_trips_and_serves_without_refit() {
        let data = generate(&SynthConfig::small(161));
        let profile = Profile::fast().with_seed(23);
        let spec = ScenarioSpec {
            period: Period::Y2019,
            window: 7,
        };
        let result = run_scenario(&data, &spec, &profile).unwrap();

        let root = temp_store("roundtrip");
        let mut store = ArtifactStore::open(&root).unwrap();
        let entries = export_scenario_artifacts(&mut store, &result, &profile).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].model, "rf");
        assert_eq!(entries[1].model, "gbdt");
        assert_eq!(
            store.latest_family("2019_7", "rf").unwrap().id,
            entries[0].id
        );

        // The loaded RF must predict bit-identically to the in-memory
        // final model on the scenario's own test matrix.
        let refs: Vec<&str> = result.final_features.iter().map(|s| s.as_str()).collect();
        let test = result.scenario.test_matrix(&refs).unwrap();
        let x = Matrix::from_row_major(test.x.clone(), test.n_features).unwrap();
        let loaded = store.load(&entries[0].id).unwrap();
        assert_eq!(loaded.features, result.final_features);
        assert_eq!(loaded.profile, profile.descriptor());
        assert_eq!(loaded.window, 7);
        assert!(loaded.train_rows > 0);
        let served = BatchPredictor::new(loaded).predict_matrix(&x).unwrap();
        use c100_ml::Regressor;
        for (r, p) in served.iter().enumerate() {
            assert_eq!(
                p.to_bits(),
                result.final_model.predict_row(x.row(r)).to_bits()
            );
        }

        // GBDT export is deterministic: a second export dedups to the
        // same content address.
        let again = export_scenario_artifacts(&mut store, &result, &profile).unwrap();
        assert_eq!(again[1].id, entries[1].id);
        assert_eq!(store.list().len(), 2);

        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn online_gbdt_artifact_round_trips_through_the_store() {
        let n = 80;
        let x = Matrix::from_row_major((0..n * 3).map(|i| (i as f64 * 0.17).sin()).collect(), 3)
            .unwrap();
        let y: Vec<f64> = (0..n).map(|r| x.row(r).iter().sum::<f64>()).collect();
        let config = GbdtConfig {
            n_estimators: 5,
            max_depth: 3,
            ..Default::default()
        };
        let model = config.fit(&x, &y, 9).unwrap();
        let spec = ScenarioSpec {
            period: Period::Y2019,
            window: 7,
        };
        let profile = Profile::fast().with_seed(31);
        let features: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let artifact = online_gbdt_artifact(
            &spec,
            &profile,
            &features,
            &config,
            model,
            n as u64,
            "2019-01-01",
            "2019-03-21",
        );
        assert_eq!(artifact.scenario, "2019_7");
        assert_eq!(artifact.period, "2019");
        assert_eq!(artifact.window, 7);
        assert_eq!(artifact.profile, profile.descriptor());
        assert_eq!(artifact.hyperparameters["n_estimators"], "5");

        let root = temp_store("online");
        let mut store = ArtifactStore::open(&root).unwrap();
        let entry = store.save(&artifact).unwrap();
        assert_eq!(entry.model, "gbdt");
        assert_eq!(store.latest_family("2019_7", "gbdt").unwrap().id, entry.id);
        let loaded = store.load(&entry.id).unwrap();
        assert_eq!(loaded, artifact);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn scenario_spec_parse_round_trips_all_ids() {
        for spec in ScenarioSpec::all() {
            assert_eq!(ScenarioSpec::parse(&spec.id()).unwrap(), spec);
        }
        assert!(ScenarioSpec::parse("2018_7").is_err());
        assert!(ScenarioSpec::parse("2019_11").is_err());
        assert!(ScenarioSpec::parse("2019").is_err());
        assert!(ScenarioSpec::parse("").is_err());
    }
}
