//! One-call orchestration of a full per-scenario pipeline run:
//! fine-tune RF and XGB → FRA → SHAP validation → final feature vector →
//! final importance ranking → category contributions.
//!
//! The observer-carrying entry point is [`run_scenario_with`]; the
//! [`run_scenario_on`] / [`run_scenario`] wrappers keep the original
//! silent signatures.

use std::time::Instant;

use c100_ml::data::Matrix;
use c100_ml::forest::{RandomForest, RandomForestConfig};
use c100_ml::gbdt::GbdtConfig;
use c100_ml::model_selection::grid_search_traced;
use c100_obs::{Event, Stage};
use c100_synth::MarketData;

use crate::context::{duration_micros, RunContext};
use crate::contribution::{contribution_factors, CategoryContribution};
use crate::dataset::{assemble, MasterDataset};
use crate::fra::{run_fra_traced, FraConfig, FraResult};
use crate::groups::RankedFeatures;
use crate::profile::Profile;
use crate::scenario::{build_scenario, Period, ScenarioData};
use crate::selection::{final_vector, shap_ranking_traced};
use crate::Result;

/// Identifies one of the 10 scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Period set.
    pub period: Period,
    /// Prediction window in days.
    pub window: usize,
}

impl ScenarioSpec {
    /// All 10 scenarios in paper order.
    pub fn all() -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(10);
        for period in Period::ALL {
            for window in crate::scenario::WINDOWS {
                specs.push(ScenarioSpec { period, window });
            }
        }
        specs
    }

    /// The paper's `period_window` id.
    pub fn id(&self) -> String {
        format!("{}_{}", self.period.label(), self.window)
    }

    /// Parses a `period_window` id (`2019_7`) back into a spec. Only the
    /// paper's periods and windows are accepted — an artifact or CLI flag
    /// naming anything else is a mistake worth failing loudly on. Each
    /// failure mode names the offending token and lists the valid
    /// alternatives, so a typo'd `--scenarios` flag is self-explaining.
    pub fn parse(id: &str) -> Result<ScenarioSpec> {
        let periods = || {
            Period::ALL
                .iter()
                .map(|p| p.label())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let windows = || {
            crate::scenario::WINDOWS
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let Some((period_label, window_str)) = id.split_once('_') else {
            return Err(crate::CoreError::Pipeline(format!(
                "invalid scenario id {id:?}: missing '_' separator \
                 (expected <period>_<window>, e.g. 2019_7)"
            )));
        };
        let Some(period) = Period::ALL.into_iter().find(|p| p.label() == period_label) else {
            return Err(crate::CoreError::Pipeline(format!(
                "invalid scenario id {id:?}: unknown period {period_label:?} \
                 (valid periods: {})",
                periods()
            )));
        };
        let window: usize = window_str.parse().map_err(|_| {
            crate::CoreError::Pipeline(format!(
                "invalid scenario id {id:?}: window {window_str:?} is not a number \
                 (valid windows: {})",
                windows()
            ))
        })?;
        if !crate::scenario::WINDOWS.contains(&window) {
            return Err(crate::CoreError::Pipeline(format!(
                "invalid scenario id {id:?}: unsupported window {window} \
                 (valid windows: {})",
                windows()
            )));
        }
        Ok(ScenarioSpec { period, window })
    }
}

/// Everything one scenario run produces.
pub struct ScenarioResult {
    /// The preprocessed scenario dataset (kept for follow-up experiments).
    pub scenario: ScenarioData,
    /// Candidate features after cleaning/start-date filtering.
    pub n_candidates: usize,
    /// Winning RF configuration of the fine-tuning grid search.
    pub tuned_rf: RandomForestConfig,
    /// Winning XGB-style configuration.
    pub tuned_gbdt: GbdtConfig,
    /// FRA output.
    pub fra: FraResult,
    /// |SHAP top-100 ∩ FRA survivors| (paper reports ≈78 on average).
    pub shap_overlap: usize,
    /// The final feature vector (FRA ∪ SHAP top-75, Table 1).
    pub final_features: Vec<String>,
    /// Fine-tuned-RF importance ranking over the final vector (the input
    /// to the short/long-term group analysis).
    pub final_importance: RankedFeatures,
    /// The tuned RF fitted on the final vector — the model whose
    /// importances rank above, kept so it can be persisted and served
    /// without a refit (see [`crate::export`]).
    pub final_model: RandomForest,
    /// Per-category contribution factors (Figures 3–4).
    pub contributions: Vec<CategoryContribution>,
}

/// Runs the full pipeline for one scenario, reporting progress to the
/// context's observer: `scenario_started`, bracketing `stage_*` events
/// for tune/FRA/SHAP/final-fit, per-candidate grid scores, per-iteration
/// FRA diagnostics and a closing `scenario_finished` summary.
pub fn run_scenario_with(
    master: &MasterDataset,
    spec: &ScenarioSpec,
    ctx: &RunContext<'_>,
) -> Result<ScenarioResult> {
    let profile = ctx.profile;
    let t_scenario = Instant::now();
    let scenario = build_scenario(master, spec.period, spec.window)?;
    let id = spec.id();
    let n_candidates = scenario.feature_names.len();
    let stage_seed = |name: &str| profile.stage_seed(&format!("{id}:{name}"));
    ctx.emit(Event::ScenarioStarted {
        scenario: id.clone(),
        n_candidates,
    });

    // Root span for the scenario; stage spans opened by `time_stage` nest
    // beneath it, and the shadowed context hands the link onward.
    let scenario_span = ctx.trace.span_for(&id, "scenario");
    let ctx = &ctx.with_trace(scenario_span.ctx());

    // Fine-tune both model families on the full candidate set.
    let names: Vec<&str> = scenario.feature_names.iter().map(|s| s.as_str()).collect();
    let train = scenario.train_matrix(&names)?;
    let x = Matrix::from_row_major(train.x.clone(), train.n_features)?;
    let (rf_search, gbdt_search) = ctx.time_stage(&id, Stage::Tune, |tune_trace| {
        let rf_span = tune_trace.span("rf_grid");
        let rf = grid_search_traced(
            &profile.rf_grid,
            &x,
            &train.y,
            profile.cv_folds,
            stage_seed("rf-tune"),
            &format!("{id}:rf"),
            ctx.observer,
            rf_span.ctx(),
        );
        drop(rf_span);
        let gbdt_span = tune_trace.span("gbdt_grid");
        let gbdt = grid_search_traced(
            &profile.gbdt_grid,
            &x,
            &train.y,
            profile.cv_folds,
            stage_seed("gbdt-tune"),
            &format!("{id}:gbdt"),
            ctx.observer,
            gbdt_span.ctx(),
        );
        (rf, gbdt)
    });
    let tuned_rf = rf_search?.best_config;
    let tuned_gbdt = gbdt_search?.best_config;

    // FRA with the tuned models.
    let fra_config = FraConfig::new().with_target_len(profile.fra_target);
    let fra = ctx.time_stage(&id, Stage::Fra, |fra_trace| {
        run_fra_traced(
            &scenario,
            &tuned_rf,
            &tuned_gbdt,
            &fra_config,
            profile.pfi_repeats,
            stage_seed("fra"),
            ctx.observer,
            fra_trace,
        )
    })?;

    // SHAP validation on the original candidate set, then the union.
    let shap = ctx.time_stage(&id, Stage::Shap, |shap_trace| {
        shap_ranking_traced(
            &scenario,
            &profile.shap_forest,
            profile.shap_rows,
            stage_seed("shap"),
            ctx.observer,
            shap_trace,
        )
    })?;
    let selection = final_vector(&fra, &shap, profile.union_top_k);

    // Final importance: tuned RF refit on the final vector. The fitted
    // model is kept on the result so it can be exported and served.
    let (final_importance, final_model) =
        ctx.time_stage(&id, Stage::FinalFit, |fit_trace| -> Result<_> {
            let final_refs: Vec<&str> = selection.features.iter().map(|s| s.as_str()).collect();
            let final_train = scenario.train_matrix(&final_refs)?;
            let fx = Matrix::from_row_major(final_train.x.clone(), final_train.n_features)?;
            let final_model = tuned_rf.fit_traced(
                &fx,
                &final_train.y,
                stage_seed("final-importance"),
                fit_trace,
            )?;
            let ranking = RankedFeatures::from_pairs(
                selection
                    .features
                    .iter()
                    .cloned()
                    .zip(final_model.feature_importances.iter().copied())
                    .collect(),
            );
            Ok((ranking, final_model))
        })?;

    let contributions = contribution_factors(&scenario, &selection.features);

    ctx.emit(Event::ScenarioFinished {
        scenario: id,
        n_candidates,
        fra_survivors: fra.surviving.len(),
        fra_iterations: fra.iterations.len(),
        shap_overlap: selection.overlap_shap100_fra,
        final_features: selection.features.len(),
        micros: duration_micros(t_scenario),
    });

    Ok(ScenarioResult {
        scenario,
        n_candidates,
        tuned_rf,
        tuned_gbdt,
        fra,
        shap_overlap: selection.overlap_shap100_fra,
        final_features: selection.features,
        final_importance,
        final_model,
        contributions,
    })
}

/// Runs the full pipeline for one scenario on an already assembled master
/// dataset (preferred when running many scenarios), silently. Wrapper
/// around [`run_scenario_with`] with a [`c100_obs::NullObserver`].
pub fn run_scenario_on(
    master: &MasterDataset,
    spec: &ScenarioSpec,
    profile: &Profile,
) -> Result<ScenarioResult> {
    run_scenario_with(master, spec, &RunContext::new(profile))
}

/// Convenience wrapper that assembles the master dataset first.
pub fn run_scenario(
    data: &MarketData,
    spec: &ScenarioSpec,
    profile: &Profile,
) -> Result<ScenarioResult> {
    let master = assemble(data)?;
    run_scenario_on(&master, spec, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c100_synth::{generate, SynthConfig};

    #[test]
    fn all_scenarios_enumerate_ten() {
        let specs = ScenarioSpec::all();
        assert_eq!(specs.len(), 10);
        assert_eq!(specs[0].id(), "2017_1");
        assert_eq!(specs[9].id(), "2019_180");
    }

    #[test]
    fn parse_round_trips_every_scenario() {
        for spec in ScenarioSpec::all() {
            assert_eq!(ScenarioSpec::parse(&spec.id()).unwrap(), spec);
        }
    }

    #[test]
    fn parse_missing_separator_names_expectation() {
        let err = ScenarioSpec::parse("20197").unwrap_err().to_string();
        assert!(err.contains("\"20197\""), "{err}");
        assert!(err.contains("missing '_' separator"), "{err}");
        assert!(err.contains("<period>_<window>"), "{err}");
    }

    #[test]
    fn parse_unknown_period_lists_valid_periods() {
        let err = ScenarioSpec::parse("2023_7").unwrap_err().to_string();
        assert!(err.contains("unknown period \"2023\""), "{err}");
        assert!(err.contains("2017, 2019"), "{err}");
    }

    #[test]
    fn parse_non_numeric_window_names_token() {
        let err = ScenarioSpec::parse("2019_week").unwrap_err().to_string();
        assert!(err.contains("window \"week\" is not a number"), "{err}");
        assert!(err.contains("1, 7, 30, 90, 180"), "{err}");
    }

    #[test]
    fn parse_unsupported_window_lists_valid_windows() {
        let err = ScenarioSpec::parse("2019_14").unwrap_err().to_string();
        assert!(err.contains("unsupported window 14"), "{err}");
        assert!(err.contains("1, 7, 30, 90, 180"), "{err}");
    }

    #[test]
    fn fast_pipeline_produces_consistent_result() {
        let data = generate(&SynthConfig::small(141));
        let spec = ScenarioSpec {
            period: Period::Y2019,
            window: 7,
        };
        let result = run_scenario(&data, &spec, &Profile::fast()).unwrap();
        assert!(result.n_candidates > 100);
        assert!(!result.final_features.is_empty());
        assert!(result.final_features.len() <= 150);
        assert_eq!(
            result.final_importance.entries.len(),
            result.final_features.len()
        );
        // Contributions consistent with the final vector.
        let selected: usize = result.contributions.iter().map(|c| c.selected).sum();
        assert_eq!(selected, result.final_features.len());
        // FRA survivors never exceed candidates.
        assert!(result.fra.surviving.len() <= result.n_candidates);
    }
}
