//! Preregistered metric handles for the serve hot path.
//!
//! Every request used to record its counters and latencies through the
//! registry's by-name API — a string `format!` plus a map lookup per
//! metric per request. [`ServeMetrics`] resolves every handle once at
//! server start; request handling then records through lock-free
//! sharded cells only ([`c100_obs::telemetry`]), and the latency split
//! the ROADMAP's batcher-profiling item needs (queue-wait vs
//! handler-time vs batcher-flush) comes from distinct histograms:
//!
//! * `serve.queue_wait_micros` — parse-complete-to-worker-pop time,
//!   the congestion signal (distinguishes shed-vs-slow) and the
//!   self-tuner's input.
//! * `serve.handler_micros.<endpoint>` — routing + handler execution.
//! * `serve.request_micros.<endpoint>` — parse + handler (the
//!   pre-existing series, kept for dashboards and `repro compare`).
//! * `serve.batch_flush_micros` / `serve.batch_rows` — recorded by the
//!   batcher thread per coalesced flush.
//! * `serve.inflight_requests` — gauge of requests between parse and
//!   response write.

use std::collections::HashMap;

use c100_obs::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};

/// Endpoint labels that get their own latency series. `other` doubles
/// as the fallback for unknown labels; `panic` tags handlers that blew
/// up and were caught.
pub const ENDPOINTS: [&str; 9] = [
    "healthz", "models", "metrics", "predict", "reload", "shutdown", "flight", "other", "panic",
];

/// Per-endpoint preregistered handles.
#[derive(Debug, Clone)]
pub struct EndpointMetrics {
    /// `http.requests.<endpoint>`.
    pub requests: CounterHandle,
    /// `serve.request_micros.<endpoint>`: parse + route + handler.
    pub request_micros: HistogramHandle,
    /// `serve.handler_micros.<endpoint>`: route + handler only.
    pub handler_micros: HistogramHandle,
}

/// Every handle the server records through at request time.
#[derive(Debug)]
pub struct ServeMetrics {
    /// `http.requests_total`.
    pub requests_total: CounterHandle,
    /// `http.responses.2xx`.
    pub responses_2xx: CounterHandle,
    /// `http.responses.4xx`.
    pub responses_4xx: CounterHandle,
    /// `http.responses.5xx`.
    pub responses_5xx: CounterHandle,
    /// `serve.inflight_requests` gauge.
    pub inflight: GaugeHandle,
    /// `serve.queue_depth` gauge.
    pub queue_depth: GaugeHandle,
    /// `serve.sheds_total`.
    pub sheds: CounterHandle,
    /// `serve.queue_wait_micros`: time between parse completion and
    /// worker pop — the self-tuner's congestion signal.
    pub queue_wait: HistogramHandle,
    /// `serve.connections_total`: accepted connections.
    pub connections_total: CounterHandle,
    /// `serve.open_connections` gauge: sockets held across all reactor
    /// shards (keep-alive makes this outlive any single request).
    pub connections: GaugeHandle,
    /// `serve.batch_bypass_total`: `/predict` requests that skipped the
    /// batcher because they already carried a full batch of rows.
    pub batch_bypass: CounterHandle,
    /// `serve.tuned_workers` gauge: current worker count under
    /// self-tuning (mirrors the static count when tuning is off).
    pub tuned_workers: GaugeHandle,
    /// `serve.tuned_queue_depth` gauge: current queue capacity.
    pub tuned_queue_depth: GaugeHandle,
    endpoints: HashMap<&'static str, EndpointMetrics>,
}

impl ServeMetrics {
    /// Resolves every handle once; called at server start.
    pub fn preregister(registry: &MetricsRegistry) -> ServeMetrics {
        ServeMetrics {
            requests_total: registry.counter("http.requests_total"),
            responses_2xx: registry.counter("http.responses.2xx"),
            responses_4xx: registry.counter("http.responses.4xx"),
            responses_5xx: registry.counter("http.responses.5xx"),
            inflight: registry.gauge("serve.inflight_requests"),
            queue_depth: registry.gauge("serve.queue_depth"),
            sheds: registry.counter("serve.sheds_total"),
            queue_wait: registry.histogram("serve.queue_wait_micros"),
            connections_total: registry.counter("serve.connections_total"),
            connections: registry.gauge("serve.open_connections"),
            batch_bypass: registry.counter("serve.batch_bypass_total"),
            tuned_workers: registry.gauge("serve.tuned_workers"),
            tuned_queue_depth: registry.gauge("serve.tuned_queue_depth"),
            endpoints: ENDPOINTS
                .iter()
                .map(|&name| {
                    (
                        name,
                        EndpointMetrics {
                            requests: registry.counter(&format!("http.requests.{name}")),
                            request_micros: registry
                                .histogram(&format!("serve.request_micros.{name}")),
                            handler_micros: registry
                                .histogram(&format!("serve.handler_micros.{name}")),
                        },
                    )
                })
                .collect(),
        }
    }

    /// The handles for an endpoint label (falls back to `other`).
    pub fn endpoint(&self, name: &str) -> &EndpointMetrics {
        self.endpoints
            .get(name)
            .unwrap_or_else(|| &self.endpoints["other"])
    }

    /// The response-class counter for a status code.
    pub fn response_class(&self, status: u16) -> &CounterHandle {
        match status {
            200..=299 => &self.responses_2xx,
            300..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
    }
}

/// RAII guard for the in-flight gauge: `+1` on creation, `−1` on drop,
/// so early returns and caught panics can never leak an increment.
pub struct InflightGuard<'a>(&'a GaugeHandle);

impl<'a> InflightGuard<'a> {
    /// Increments `gauge` until the guard drops.
    pub fn enter(gauge: &'a GaugeHandle) -> InflightGuard<'a> {
        gauge.add(1.0);
        InflightGuard(gauge)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.add(-1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn preregistered_names_appear_in_the_snapshot_at_zero() {
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = ServeMetrics::preregister(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["http.requests_total"], 0);
        assert_eq!(snap.gauges["serve.inflight_requests"], 0.0);
        assert_eq!(snap.histograms["serve.queue_wait_micros"].count, 0);
        for name in ENDPOINTS {
            assert!(snap
                .histograms
                .contains_key(&format!("serve.handler_micros.{name}")));
        }
        // Handle writes land in the same snapshot names.
        metrics.endpoint("predict").requests.inc();
        metrics.endpoint("nonsense").requests.inc(); // → other
        let snap = registry.snapshot();
        assert_eq!(snap.counters["http.requests.predict"], 1);
        assert_eq!(snap.counters["http.requests.other"], 1);
    }

    #[test]
    fn inflight_guard_balances_on_drop() {
        let registry = MetricsRegistry::new();
        let gauge = registry.gauge("serve.inflight_requests");
        {
            let _g1 = InflightGuard::enter(&gauge);
            let _g2 = InflightGuard::enter(&gauge);
            assert_eq!(gauge.value(), 2.0);
        }
        assert_eq!(gauge.value(), 0.0);
    }

    #[test]
    fn response_classes_map_by_status() {
        let registry = MetricsRegistry::new();
        let metrics = ServeMetrics::preregister(&registry);
        metrics.response_class(200).inc();
        metrics.response_class(404).inc();
        metrics.response_class(503).inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["http.responses.2xx"], 1);
        assert_eq!(snap.counters["http.responses.4xx"], 1);
        assert_eq!(snap.counters["http.responses.5xx"], 1);
    }
}
