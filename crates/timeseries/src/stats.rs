//! Scalar statistics over (possibly gappy) samples.
//!
//! Pearson correlation is load-bearing here: the Feature Reduction
//! Algorithm gates feature removal on each feature's correlation with the
//! target. All functions skip `NaN` samples pairwise.

/// Arithmetic mean over present values; `NaN` if none are present.
pub fn mean(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &v in values {
        if !v.is_nan() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Population variance over present values; `NaN` with fewer than 2.
pub fn variance(values: &[f64]) -> f64 {
    let m = mean(values);
    if m.is_nan() {
        return f64::NAN;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for &v in values {
        if !v.is_nan() {
            let d = v - m;
            sum += d * d;
            n += 1;
        }
    }
    if n < 2 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Pearson correlation between two equally long slices, skipping any pair
/// with a missing side. Returns 0.0 when either side is constant (the FRA
/// treats a feature uncorrelated with the target as removable, which is the
/// right behaviour for a constant feature).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut n = 0usize;
    let mut sa = 0.0;
    let mut sb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if !x.is_nan() && !y.is_nan() {
            sa += x;
            sb += y;
            n += 1;
        }
    }
    if n < 2 {
        return 0.0;
    }
    let ma = sa / n as f64;
    let mb = sb / n as f64;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if !x.is_nan() && !y.is_nan() {
            let dx = x - ma;
            let dy = y - mb;
            cov += dx * dy;
            va += dx * dx;
            vb += dy * dy;
        }
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

/// Covariance between two slices (population, pairwise-complete).
pub fn covariance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut n = 0usize;
    let mut sa = 0.0;
    let mut sb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if !x.is_nan() && !y.is_nan() {
            sa += x;
            sb += y;
            n += 1;
        }
    }
    if n < 2 {
        return f64::NAN;
    }
    let ma = sa / n as f64;
    let mb = sb / n as f64;
    let mut cov = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        if !x.is_nan() && !y.is_nan() {
            cov += (x - ma) * (y - mb);
        }
    }
    cov / n as f64
}

/// Linear-interpolated quantile `q ∈ [0, 1]` over present values.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut present: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if present.is_empty() {
        return f64::NAN;
    }
    present.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
    let pos = q.clamp(0.0, 1.0) * (present.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        present[lo]
    } else {
        let t = pos - lo as f64;
        present[lo] * (1.0 - t) + present[hi] * t
    }
}

/// Minimum over present values; `NaN` if none.
pub fn min(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(
            f64::NAN,
            |acc, v| if acc.is_nan() || v < acc { v } else { acc },
        )
}

/// Maximum over present values; `NaN` if none.
pub fn max(values: &[f64]) -> f64 {
    values
        .iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(
            f64::NAN,
            |acc, v| if acc.is_nan() || v > acc { v } else { acc },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_skips_missing() {
        assert_eq!(mean(&[1.0, f64::NAN, 3.0]), 2.0);
        assert!(mean(&[f64::NAN]).is_nan());
    }

    #[test]
    fn variance_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let b = [5.0, 5.0, 5.0];
        assert_eq!(pearson(&a, &b), 0.0);
        assert_eq!(pearson(&b, &a), 0.0);
    }

    #[test]
    fn pearson_pairwise_complete() {
        // The NaN pair is skipped; remaining pairs are perfectly correlated.
        let a = [1.0, f64::NAN, 3.0, 4.0];
        let b = [1.0, 100.0, 3.0, 4.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn covariance_matches_pearson_scaling() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 4.0, 6.0, 8.0, 10.0];
        let cov = covariance(&a, &b);
        let expected = pearson(&a, &b) * std_dev(&a) * std_dev(&b);
        assert!((cov - expected).abs() < 1e-9);
    }

    #[test]
    fn min_max_skip_missing() {
        let v = [f64::NAN, 3.0, -1.0, 7.0];
        assert_eq!(min(&v), -1.0);
        assert_eq!(max(&v), 7.0);
        assert!(min(&[f64::NAN]).is_nan());
    }
}
