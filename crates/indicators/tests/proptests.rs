//! Property-based tests for the technical indicators.

use c100_indicators::momentum::{macd, roc, rsi, stochastic};
use c100_indicators::moving::{ema, sma, wma};
use c100_indicators::volatility::{atr, bollinger, rolling_std};
use c100_indicators::volume::{obv, volume_ratio};
use c100_indicators::{AtrState, EmaState, RsiState, SmaState, SMA_RESYNC_TOLERANCE};
use proptest::prelude::*;

fn prices(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..10_000.0, 5..max_len)
}

/// Random tick sequences with occasional NaN gaps, as a live feed with
/// missing days would produce.
fn gappy_prices(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![9 => 1.0f64..10_000.0, 1 => Just(f64::NAN)],
        5..max_len,
    )
}

proptest! {
    #[test]
    fn moving_averages_stay_within_input_range(values in prices(120), w in 1usize..30) {
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for out in [sma(&values, w), ema(&values, w), wma(&values, w)] {
            for v in out.iter().filter(|v| !v.is_nan()) {
                prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn sma_warmup_length_is_exact(values in prices(120), w in 1usize..30) {
        let out = sma(&values, w);
        for (t, v) in out.iter().enumerate() {
            if t + 1 < w.min(values.len() + 1) {
                prop_assert!(v.is_nan(), "t={t} should be warm-up");
            } else if t + 1 >= w {
                prop_assert!(!v.is_nan(), "t={t} should be defined");
            }
        }
    }

    #[test]
    fn rsi_is_bounded(values in prices(150), period in 2usize..30) {
        for v in rsi(&values, period).iter().filter(|v| !v.is_nan()) {
            prop_assert!(*v >= 0.0 && *v <= 100.0);
        }
    }

    #[test]
    fn stochastic_is_bounded(values in prices(100), period in 2usize..20) {
        let high: Vec<f64> = values.iter().map(|v| v * 1.01).collect();
        let low: Vec<f64> = values.iter().map(|v| v * 0.99).collect();
        let out = stochastic(&high, &low, &values, period, 3);
        for v in out.k.iter().chain(&out.d).filter(|v| !v.is_nan()) {
            prop_assert!(*v >= -1e-9 && *v <= 100.0 + 1e-9);
        }
    }

    #[test]
    fn bollinger_brackets_middle(values in prices(100), w in 2usize..25) {
        let bb = bollinger(&values, w, 2.0);
        for t in 0..values.len() {
            if !bb.middle[t].is_nan() {
                prop_assert!(bb.upper[t] >= bb.middle[t] - 1e-9);
                prop_assert!(bb.lower[t] <= bb.middle[t] + 1e-9);
            }
        }
    }

    #[test]
    fn rolling_std_is_nonnegative(values in prices(100), w in 1usize..25) {
        for v in rolling_std(&values, w).iter().filter(|v| !v.is_nan()) {
            prop_assert!(*v >= 0.0);
        }
    }

    #[test]
    fn atr_is_nonnegative(values in prices(80), period in 1usize..20) {
        let high: Vec<f64> = values.iter().map(|v| v * 1.02).collect();
        let low: Vec<f64> = values.iter().map(|v| v * 0.98).collect();
        for v in atr(&high, &low, &values, period).iter().filter(|v| !v.is_nan()) {
            prop_assert!(*v >= 0.0);
        }
    }

    #[test]
    fn roc_of_constant_is_zero(level in 1.0f64..1000.0, n in 5usize..60, period in 1usize..10) {
        let values = vec![level; n];
        for v in roc(&values, period).iter().filter(|v| !v.is_nan()) {
            prop_assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn macd_histogram_is_line_minus_signal(values in prices(150)) {
        let out = macd(&values, 12, 26, 9);
        for t in 0..values.len() {
            if !out.histogram[t].is_nan() {
                prop_assert!((out.histogram[t] - (out.macd[t] - out.signal[t])).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn obv_changes_by_at_most_daily_volume(values in prices(80)) {
        let volume: Vec<f64> = values.iter().map(|v| v * 10.0).collect();
        let out = obv(&values, &volume);
        for t in 1..values.len() {
            let delta = (out[t] - out[t - 1]).abs();
            prop_assert!(delta <= volume[t] + 1e-9);
        }
    }

    #[test]
    fn volume_ratio_is_positive(values in prices(80), w in 1usize..20) {
        for v in volume_ratio(&values, w).iter().filter(|v| !v.is_nan()) {
            prop_assert!(*v > 0.0);
        }
    }

    // --- Incremental-vs-batch parity (streaming states) -----------------
    //
    // The streaming states replay the batch recurrences tick-by-tick, so
    // without resync every output must be bit-identical to the batch
    // column — including NaN gaps, which poison both the same way.

    #[test]
    fn incremental_sma_is_bit_identical(values in gappy_prices(150), w in 1usize..30) {
        let batch = sma(&values, w);
        let mut state = SmaState::new(w);
        for (t, &x) in values.iter().enumerate() {
            let inc = state.update(x);
            prop_assert!(inc.to_bits() == batch[t].to_bits(), "t={}", t);
        }
    }

    #[test]
    fn incremental_ema_is_bit_identical(values in gappy_prices(150), w in 1usize..30) {
        let batch = ema(&values, w);
        let mut state = EmaState::new(w);
        for (t, &x) in values.iter().enumerate() {
            let inc = state.update(x);
            prop_assert!(inc.to_bits() == batch[t].to_bits(), "t={}", t);
        }
    }

    #[test]
    fn incremental_rsi_is_bit_identical(values in gappy_prices(150), period in 1usize..30) {
        let batch = rsi(&values, period);
        let mut state = RsiState::new(period);
        for (t, &x) in values.iter().enumerate() {
            let inc = state.update(x);
            prop_assert!(inc.to_bits() == batch[t].to_bits(), "t={}", t);
        }
    }

    #[test]
    fn incremental_atr_is_bit_identical(values in gappy_prices(150), period in 1usize..20) {
        let high: Vec<f64> = values.iter().map(|v| v * 1.02).collect();
        let low: Vec<f64> = values.iter().map(|v| v * 0.98).collect();
        let batch = atr(&high, &low, &values, period);
        let mut state = AtrState::new(period);
        for t in 0..values.len() {
            let inc = state.update(high[t], low[t], values[t]);
            prop_assert!(inc.to_bits() == batch[t].to_bits(), "t={}", t);
        }
    }

    // With resync enabled the SMA sum is periodically recomputed from the
    // buffered window, so bit-parity is traded for a documented relative
    // tolerance (SMA_RESYNC_TOLERANCE).
    #[test]
    fn resynced_sma_stays_within_tolerance(
        values in prices(200),
        w in 1usize..30,
        every in 1usize..40,
    ) {
        let batch = sma(&values, w);
        let mut state = SmaState::new(w).with_resync(every);
        for (t, &x) in values.iter().enumerate() {
            let inc = state.update(x);
            if batch[t].is_nan() {
                prop_assert!(inc.is_nan(), "t={}", t);
            } else {
                let rel = (inc - batch[t]).abs() / batch[t].abs().max(1.0);
                prop_assert!(rel <= SMA_RESYNC_TOLERANCE, "t={} rel={}", t, rel);
            }
        }
    }
}
