//! Observability overhead benchmarks.
//!
//! The tracing layer sits on the pipeline's hottest paths (per-tree
//! fits, per-chunk predictions), so its per-span cost must stay well
//! under a microsecond. Spans are recorded in batches of 1000 against a
//! fresh tracer per iteration so memory stays bounded however long
//! criterion samples; divide the reported time by 1000 for the
//! per-span cost.

use c100_obs::{TraceCtx, Tracer};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const SPANS_PER_ITER: usize = 1000;

fn bench_spans(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group.sample_size(20);

    // Enabled path: open + drop a child span, recording it.
    group.bench_function("span_record_x1000", |b| {
        b.iter(|| {
            let tracer = Tracer::new();
            let root = tracer.span("bench", "root");
            let ctx = root.ctx();
            for _ in 0..SPANS_PER_ITER {
                black_box(ctx.span("leaf"));
            }
        });
    });

    // Disabled path: the same call sites with tracing off must be
    // near-free, since every run pays this cost when --trace is absent.
    group.bench_function("span_disabled_x1000", |b| {
        let ctx = TraceCtx::disabled();
        b.iter(|| {
            for _ in 0..SPANS_PER_ITER {
                black_box(ctx.span("leaf"));
            }
        });
    });

    // Profile aggregation over a realistic span count.
    group.bench_function("profile_from_4k_spans", |b| {
        let tracer = Tracer::new();
        for _ in 0..40 {
            let root = tracer.span("bench", "scenario");
            let ctx = root.ctx();
            for _ in 0..99 {
                black_box(ctx.span("leaf"));
            }
        }
        b.iter(|| black_box(tracer.profile()));
    });

    group.finish();
}

criterion_group!(benches, bench_spans);
criterion_main!(benches);
