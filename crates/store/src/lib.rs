//! Model artifact persistence, registry, and batch inference.
//!
//! The pipeline in `c100-core` fits random forests and gradient-boosted
//! ensembles per scenario, but until this crate existed every prediction
//! required a refit. `c100-store` turns fitted models into durable,
//! servable artifacts in three layers:
//!
//! 1. **Serialization** ([`artifact`]) — a [`ModelArtifact`] envelope
//!    captures the model together with everything needed to serve it
//!    safely later: the ordered feature schema, the scenario it was
//!    trained for, hyperparameters, train-range metadata, an explicit
//!    [`SCHEMA_VERSION`], and an FNV-1a integrity checksum. Corrupt or
//!    stale artifacts are rejected at load time with typed errors.
//! 2. **Registry** ([`registry`]) — [`ArtifactStore`] is a
//!    directory-backed store with a `manifest.json` index and
//!    content-addressed artifact files. All writes go through a temp
//!    file + atomic rename so a crashed run never leaves a torn file.
//! 3. **Inference** ([`predict`]) — [`BatchPredictor`] validates an
//!    incoming [`Frame`](c100_timeseries::Frame) against the stored
//!    feature schema (missing, extra, or reordered columns are hard
//!    errors), then predicts in parallel chunks via rayon on a
//!    selectable [`Engine`] — the interpreted tree walker or the
//!    compiled flat-ensemble backend, bit-identical by construction —
//!    emitting `c100-obs` events so inference shows up in run telemetry.
//!
//! Everything is deterministic: encoding a model twice yields the same
//! bytes, the artifact id is a digest of those bytes, and chunked
//! prediction concatenates chunk outputs in row order.

pub mod artifact;
mod codec;
pub mod matrix;
pub mod predict;
pub mod registry;

pub use artifact::{EncodedArtifact, ModelArtifact, ModelPayload, SCHEMA_VERSION};
pub use c100_ml::{Engine, Predictor};
pub use matrix::{CompletedCell, MatrixStore};
pub use predict::BatchPredictor;
pub use registry::{ArtifactStore, ManifestEntry};

use std::fmt;

/// Errors surfaced by the artifact store and batch predictor.
///
/// Decode failures are deliberately fine-grained so callers (and tests)
/// can distinguish "file from a future incompatible release"
/// ([`StoreError::SchemaVersion`]) from "file damaged on disk"
/// ([`StoreError::ChecksumMismatch`]) from "not JSON at all"
/// ([`StoreError::Malformed`]).
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure while reading or writing the store.
    Io(std::io::Error),
    /// The artifact text is structurally invalid (bad JSON, missing
    /// fields, out-of-range values).
    Malformed(String),
    /// The artifact was written by an incompatible schema revision.
    SchemaVersion {
        /// Version found in the artifact header.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
    /// The payload bytes do not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum recorded in the header (16 hex digits).
        expected: String,
        /// Checksum computed from the payload actually read.
        actual: String,
    },
    /// No artifact with the requested id (or for the requested
    /// scenario) exists in the store.
    NotFound(String),
    /// A matrix store belongs to a run with a different configuration
    /// fingerprint; resuming into it would mix incompatible cells.
    RunMismatch {
        /// Fingerprint recorded in the store.
        found: String,
        /// Fingerprint of the run attempting to resume.
        expected: String,
    },
    /// An input frame does not match the artifact's feature schema.
    Schema(SchemaError),
    /// The decoded model rejected an input (e.g. wrong row width).
    Ml(c100_ml::MlError),
}

/// One position where an input's column order disagrees with the
/// stored feature schema (the column sets are already known to match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderedColumn {
    /// Zero-based position of the disagreement.
    pub position: usize,
    /// Column the schema expects at that position.
    pub expected: String,
    /// Column the input actually has there.
    pub found: String,
}

/// How an input frame diverged from an artifact's stored feature schema.
///
/// Column divergences are reported exhaustively — *every* missing,
/// extra, and reordered column is named, not just the first one found —
/// so a client fixing its request sees the whole distance to the schema
/// in one round trip. `c100-serve` surfaces the [`fmt::Display`] text
/// of this error verbatim in `400` response bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The input's column set or order does not match the schema.
    /// Silently reindexing would feed features into the wrong tree
    /// splits, so any divergence is a hard error.
    Mismatch {
        /// Schema columns absent from the input.
        missing: Vec<String>,
        /// Input columns the model was never trained on.
        extra: Vec<String>,
        /// Positions where the (set-equal) column order disagrees;
        /// empty whenever `missing` or `extra` is non-empty.
        reordered: Vec<ReorderedColumn>,
    },
    /// A feature cell is NaN; the predictor refuses to extrapolate
    /// through missing values.
    MissingValue {
        /// Column containing the missing value.
        column: String,
        /// Zero-based row index within the input frame.
        row: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Mismatch {
                missing,
                extra,
                reordered,
            } => {
                write!(f, "input columns do not match the model's feature schema:")?;
                let mut first = true;
                let mut sep = |f: &mut fmt::Formatter<'_>| {
                    let s = if first { " " } else { "; " };
                    first = false;
                    write!(f, "{s}")
                };
                if !missing.is_empty() {
                    sep(f)?;
                    write!(f, "missing [{}]", quoted_list(missing))?;
                }
                if !extra.is_empty() {
                    sep(f)?;
                    write!(f, "unexpected [{}]", quoted_list(extra))?;
                }
                if !reordered.is_empty() {
                    sep(f)?;
                    write!(f, "reordered ")?;
                    for (i, r) in reordered.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(
                            f,
                            "at position {} (expected '{}', found '{}')",
                            r.position, r.expected, r.found
                        )?;
                    }
                }
                Ok(())
            }
            SchemaError::MissingValue { column, row } => {
                write!(f, "missing value in column '{column}' at row {row}")
            }
        }
    }
}

/// `'a', 'b', 'c'` — the column-list form used by schema errors.
fn quoted_list(names: &[String]) -> String {
    names
        .iter()
        .map(|n| format!("'{n}'"))
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact store I/O error: {e}"),
            StoreError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            StoreError::SchemaVersion { found, expected } => write!(
                f,
                "artifact schema version {found} is not supported (expected {expected})"
            ),
            StoreError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact checksum mismatch: header says {expected}, payload hashes to {actual}"
            ),
            StoreError::NotFound(what) => write!(f, "artifact not found: {what}"),
            StoreError::RunMismatch { found, expected } => write!(
                f,
                "matrix store belongs to a different run (fingerprint {found}, \
                 this run is {expected}); pass --fresh to discard it"
            ),
            StoreError::Schema(e) => write!(f, "schema validation failed: {e}"),
            StoreError::Ml(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Ml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SchemaError> for StoreError {
    fn from(e: SchemaError) -> Self {
        StoreError::Schema(e)
    }
}

impl From<c100_ml::MlError> for StoreError {
    fn from(e: c100_ml::MlError) -> Self {
        StoreError::Ml(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
