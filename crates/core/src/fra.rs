//! The Feature Reduction Algorithm (Algorithm 1 of the paper).
//!
//! Each iteration fits the scenario's fine-tuned RF and XGB models on the
//! surviving features, extracts four importance rankings (RF-MDI,
//! XGB-gain, RF-PFI, XGB-PFI), and removes every feature that
//! simultaneously (a) ranks in the bottom 50% of *all four* rankings and
//! (b) has absolute Pearson correlation with the target below a threshold
//! that starts at 0.5 and tightens by 0.025 per iteration. The loop runs
//! until at most `target_len` features survive.
//!
//! Two safeguards the paper leaves implicit are made explicit here: an
//! iteration cap, and a stall-breaker that removes the worst features by
//! mean rank when the four bottom-halves fail to intersect for several
//! consecutive iterations (possible, though rare, with adversarial
//! rankings).

use std::collections::HashMap;

use c100_ml::data::BinnedMatrix;
use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::importance::{permutation_importance, PermutationConfig};
use c100_ml::Estimator;
use c100_obs::{Event, NullObserver, RunObserver, TraceCtx};
use c100_timeseries::stats::pearson;

use crate::scenario::ScenarioData;
use crate::{CoreError, Result, TARGET};

/// Which intersection rule drives removal (paper = [`RemovalRule::AllFour`];
/// [`RemovalRule::AnyOne`] exists for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalRule {
    /// Bottom-50% in all four rankings (the paper's strict rule).
    AllFour,
    /// Bottom-50% in at least one ranking (aggressive ablation variant).
    AnyOne,
}

/// FRA hyper-parameters.
///
/// `#[non_exhaustive]`: construct via [`FraConfig::new`] (the paper's
/// defaults) and the chainable `with_*` setters, so future knobs
/// (threshold schedules, alternative ranking sets) can be added without
/// breaking downstream callers.
///
/// ```
/// use c100_core::fra::{FraConfig, RemovalRule};
///
/// let config = FraConfig::new()
///     .with_target_len(80)
///     .with_max_iterations(8)
///     .with_rule(RemovalRule::AnyOne);
/// assert_eq!(config.target_len, 80);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FraConfig {
    /// Stop once at most this many features survive (paper: 100).
    pub target_len: usize,
    /// Initial correlation threshold (paper: 0.5).
    pub initial_corr_threshold: f64,
    /// Per-iteration threshold increment (paper: 0.025).
    pub corr_step: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Consecutive no-removal iterations tolerated before the
    /// stall-breaker removes the worst features by mean rank.
    pub stall_patience: usize,
    /// Intersection rule.
    pub rule: RemovalRule,
}

impl Default for FraConfig {
    fn default() -> Self {
        FraConfig {
            target_len: 100,
            initial_corr_threshold: 0.5,
            corr_step: 0.025,
            max_iterations: 60,
            stall_patience: 3,
            rule: RemovalRule::AllFour,
        }
    }
}

impl FraConfig {
    /// The paper's configuration (identical to `Default`).
    pub fn new() -> FraConfig {
        FraConfig::default()
    }

    /// Sets the survivor target (paper: 100).
    pub fn with_target_len(mut self, target_len: usize) -> FraConfig {
        self.target_len = target_len;
        self
    }

    /// Sets the initial correlation threshold (paper: 0.5).
    pub fn with_initial_corr_threshold(mut self, threshold: f64) -> FraConfig {
        self.initial_corr_threshold = threshold;
        self
    }

    /// Sets the per-iteration threshold increment (paper: 0.025).
    pub fn with_corr_step(mut self, corr_step: f64) -> FraConfig {
        self.corr_step = corr_step;
        self
    }

    /// Sets the hard iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> FraConfig {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the stall-breaker patience.
    pub fn with_stall_patience(mut self, stall_patience: usize) -> FraConfig {
        self.stall_patience = stall_patience;
        self
    }

    /// Sets the intersection rule.
    pub fn with_rule(mut self, rule: RemovalRule) -> FraConfig {
        self.rule = rule;
        self
    }
}

/// Diagnostics of one FRA iteration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FraIteration {
    /// Iteration number (0-based).
    pub iteration: usize,
    /// Features alive at the start of the iteration.
    pub n_before: usize,
    /// Features removed this iteration.
    pub n_removed: usize,
    /// Correlation threshold in force.
    pub corr_threshold: f64,
    /// Whether the stall-breaker fired.
    pub stall_break: bool,
}

/// Output of an FRA run.
#[derive(Debug, Clone)]
pub struct FraResult {
    /// Surviving feature names, ranked by final fine-tuned-RF importance
    /// (most important first).
    pub surviving: Vec<String>,
    /// Final importance value per surviving feature, same order.
    pub importance: Vec<f64>,
    /// Per-iteration diagnostics.
    pub iterations: Vec<FraIteration>,
}

impl FraResult {
    /// `(name, importance)` pairs, most important first.
    pub fn ranked(&self) -> Vec<(&str, f64)> {
        self.surviving
            .iter()
            .map(|s| s.as_str())
            .zip(self.importance.iter().copied())
            .collect()
    }
}

/// Ranks of `values` ascending (rank 0 = smallest). Ties broken by index
/// for determinism.
fn ascending_ranks(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("importance values are finite")
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0; values.len()];
    for (rank, &idx) in order.iter().enumerate() {
        ranks[idx] = rank;
    }
    ranks
}

/// Runs FRA on a scenario with the already fine-tuned model
/// configurations. Silent wrapper around [`run_fra_observed`].
pub fn run_fra(
    scenario: &ScenarioData,
    rf: &RandomForestConfig,
    gbdt: &GbdtConfig,
    config: &FraConfig,
    pfi_repeats: usize,
    seed: u64,
) -> Result<FraResult> {
    run_fra_observed(scenario, rf, gbdt, config, pfi_repeats, seed, &NullObserver)
}

/// [`run_fra`] with telemetry: emits one [`Event::FraIteration`] per
/// iteration, mirroring the [`FraIteration`] diagnostics also returned in
/// the result.
#[allow(clippy::too_many_arguments)]
pub fn run_fra_observed(
    scenario: &ScenarioData,
    rf: &RandomForestConfig,
    gbdt: &GbdtConfig,
    config: &FraConfig,
    pfi_repeats: usize,
    seed: u64,
    observer: &dyn RunObserver,
) -> Result<FraResult> {
    run_fra_traced(
        scenario,
        rf,
        gbdt,
        config,
        pfi_repeats,
        seed,
        observer,
        TraceCtx::disabled(),
    )
}

/// [`run_fra_observed`] with span tracing: each iteration records a
/// `fra_iteration` span with `rf_fit`, `gbdt_fit`, `rf_pfi`, `gbdt_pfi`
/// and `corr_filter` children (the RF fit additionally nests per-tree
/// spans), and the survivors' refit records `fra_final_fit`. The result
/// is identical to the untraced path.
#[allow(clippy::too_many_arguments)]
pub fn run_fra_traced(
    scenario: &ScenarioData,
    rf: &RandomForestConfig,
    gbdt: &GbdtConfig,
    config: &FraConfig,
    pfi_repeats: usize,
    seed: u64,
    observer: &dyn RunObserver,
    trace: TraceCtx<'_>,
) -> Result<FraResult> {
    if scenario.feature_names.is_empty() {
        return Err(CoreError::Pipeline("scenario has no features".into()));
    }
    let mut alive: Vec<String> = scenario.feature_names.clone();

    // Feature ↔ target correlations are static: compute once.
    let target_col = scenario
        .frame
        .column(TARGET)
        .ok_or_else(|| CoreError::Pipeline("target column missing".into()))?
        .values()
        .to_vec();
    let train_rows = scenario.split_row;
    let mut corr: HashMap<String, f64> = HashMap::with_capacity(alive.len());
    for name in &alive {
        let col = scenario
            .frame
            .column(name)
            .ok_or_else(|| CoreError::Pipeline(format!("feature {name} missing")))?;
        let c = pearson(&col.values()[..train_rows], &target_col[..train_rows]);
        corr.insert(name.clone(), c.abs());
    }

    let mut iterations = Vec::new();
    let mut threshold = config.initial_corr_threshold;
    let mut stall = 0usize;

    for iteration in 0..config.max_iterations {
        if alive.len() <= config.target_len {
            break;
        }
        let iter_span = trace.span("fra_iteration");
        let iter_trace = iter_span.ctx();
        let names: Vec<&str> = alive.iter().map(|s| s.as_str()).collect();
        let train = scenario.train_matrix(&names)?;
        let x = c100_ml::data::Matrix::from_row_major(train.x.clone(), train.n_features)?;
        let iter_seed = seed
            .wrapping_add(iteration as u64)
            .wrapping_mul(0x9E37_79B9);

        // Bin the surviving columns once; the RF and GBDT fits below
        // share the codes instead of each re-discretising the matrix.
        // (Both default to the same budget; a model whose budget differs
        // simply re-bins for itself inside `fit_model_binned_traced`.)
        let binned = match rf.histogram_bins().or_else(|| gbdt.histogram_bins()) {
            Some(bins) => {
                let _span = iter_trace.span("train_binning");
                Some(BinnedMatrix::from_matrix(&x, bins)?)
            }
            None => None,
        };

        let rf_fit_span = iter_trace.span("rf_fit");
        let rf_model = rf.fit_model_binned_traced(
            &x,
            &train.y,
            binned.as_ref(),
            iter_seed,
            rf_fit_span.ctx(),
        )?;
        drop(rf_fit_span);
        let gbdt_model = {
            let span = iter_trace.span("gbdt_fit");
            gbdt.fit_model_binned_traced(
                &x,
                &train.y,
                binned.as_ref(),
                iter_seed ^ 0xABCD,
                span.ctx(),
            )?
        };
        let rf_pfi = {
            let _span = iter_trace.span("rf_pfi");
            permutation_importance(
                &rf_model,
                &x,
                &train.y,
                &PermutationConfig {
                    n_repeats: pfi_repeats,
                    seed: iter_seed ^ 0x11,
                },
            )?
        };
        let gbdt_pfi = {
            let _span = iter_trace.span("gbdt_pfi");
            permutation_importance(
                &gbdt_model,
                &x,
                &train.y,
                &PermutationConfig {
                    n_repeats: pfi_repeats,
                    seed: iter_seed ^ 0x22,
                },
            )?
        };

        let filter_span = iter_trace.span("corr_filter");
        let rankings = [
            ascending_ranks(&rf_model.feature_importances),
            ascending_ranks(&gbdt_model.feature_importances),
            ascending_ranks(&rf_pfi.importances_mean),
            ascending_ranks(&gbdt_pfi.importances_mean),
        ];
        let half = alive.len() / 2;

        let mut removed: Vec<usize> = Vec::new();
        for i in 0..alive.len() {
            let bottom_count = rankings.iter().filter(|r| r[i] < half).count();
            let in_bottom = match config.rule {
                RemovalRule::AllFour => bottom_count == 4,
                RemovalRule::AnyOne => bottom_count >= 1,
            };
            if in_bottom && corr[&alive[i]] < threshold {
                removed.push(i);
            }
        }

        let mut stall_break = false;
        if removed.is_empty() {
            stall += 1;
            if stall >= config.stall_patience {
                // Stall-breaker: drop the worst 5% (≥1) by mean rank.
                stall_break = true;
                let mean_rank: Vec<f64> = (0..alive.len())
                    .map(|i| rankings.iter().map(|r| r[i] as f64).sum::<f64>() / 4.0)
                    .collect();
                let mut by_rank: Vec<usize> = (0..alive.len()).collect();
                by_rank.sort_by(|&a, &b| {
                    mean_rank[a]
                        .partial_cmp(&mean_rank[b])
                        .expect("ranks are finite")
                        .then(a.cmp(&b))
                });
                let k = (alive.len() / 20).max(1);
                removed = by_rank.into_iter().take(k).collect();
                stall = 0;
            }
        } else {
            stall = 0;
        }
        drop(filter_span);

        observer.on_event(&Event::FraIteration {
            scenario: scenario.id(),
            iteration,
            n_before: alive.len(),
            n_removed: removed.len(),
            corr_threshold: threshold,
            stall_break,
        });
        iterations.push(FraIteration {
            iteration,
            n_before: alive.len(),
            n_removed: removed.len(),
            corr_threshold: threshold,
            stall_break,
        });

        // Remove back-to-front to keep indices valid.
        removed.sort_unstable_by(|a, b| b.cmp(a));
        for idx in removed {
            alive.remove(idx);
        }
        threshold += config.corr_step;
    }

    // Final importance: refit the tuned RF on the survivors.
    let refit_span = trace.span("fra_final_fit");
    let names: Vec<&str> = alive.iter().map(|s| s.as_str()).collect();
    let train = scenario.train_matrix(&names)?;
    let x = c100_ml::data::Matrix::from_row_major(train.x.clone(), train.n_features)?;
    let final_model = rf.fit_traced(&x, &train.y, seed ^ 0xF1AA, refit_span.ctx())?;
    drop(refit_span);
    let mut ranked: Vec<(String, f64)> = alive
        .iter()
        .cloned()
        .zip(final_model.feature_importances.iter().copied())
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite importances")
            .then(a.0.cmp(&b.0))
    });

    Ok(FraResult {
        surviving: ranked.iter().map(|(n, _)| n.clone()).collect(),
        importance: ranked.iter().map(|(_, v)| *v).collect(),
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::assemble;
    use crate::profile::Profile;
    use crate::scenario::{build_scenario, Period};
    use c100_synth::{generate, SynthConfig};

    fn scenario() -> ScenarioData {
        let master = assemble(&generate(&SynthConfig::small(101))).unwrap();
        build_scenario(&master, Period::Y2019, 7).unwrap()
    }

    #[test]
    fn ascending_ranks_basic() {
        let ranks = ascending_ranks(&[0.3, 0.1, 0.2]);
        assert_eq!(ranks, vec![2, 0, 1]);
        // Ties break by index.
        let ranks = ascending_ranks(&[0.5, 0.5]);
        assert_eq!(ranks, vec![0, 1]);
    }

    #[test]
    fn fra_reduces_below_target_and_terminates() {
        let s = scenario();
        let p = Profile::fast();
        let n_start = s.feature_names.len();
        let cfg = FraConfig::new().with_target_len(60);
        let result = run_fra(&s, &p.rf_grid[0], &p.gbdt_grid[0], &cfg, p.pfi_repeats, 1).unwrap();
        assert!(n_start > 60, "need a reducible scenario, had {n_start}");
        assert!(
            result.surviving.len() <= 60,
            "{} features survive",
            result.surviving.len()
        );
        assert!(!result.iterations.is_empty());
        // Monotone shrinkage across iterations.
        for w in result.iterations.windows(2) {
            assert!(w[1].n_before <= w[0].n_before - w[0].n_removed);
        }
        // Threshold tightens by 0.025 per iteration.
        for (k, it) in result.iterations.iter().enumerate() {
            let expected = 0.5 + 0.025 * k as f64;
            assert!((it.corr_threshold - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn fra_importances_are_sorted_descending() {
        let s = scenario();
        let p = Profile::fast();
        let cfg = FraConfig::new().with_target_len(80);
        let result = run_fra(&s, &p.rf_grid[0], &p.gbdt_grid[0], &cfg, p.pfi_repeats, 2).unwrap();
        for w in result.importance.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(result.surviving.len(), result.importance.len());
    }

    #[test]
    fn noop_when_already_small_enough() {
        let s = scenario();
        let p = Profile::fast();
        let cfg = FraConfig::new().with_target_len(10_000);
        let result = run_fra(&s, &p.rf_grid[0], &p.gbdt_grid[0], &cfg, p.pfi_repeats, 3).unwrap();
        assert_eq!(result.surviving.len(), s.feature_names.len());
        assert!(result.iterations.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let s = scenario();
        let p = Profile::fast();
        let cfg = FraConfig::new().with_target_len(80);
        let a = run_fra(&s, &p.rf_grid[0], &p.gbdt_grid[0], &cfg, p.pfi_repeats, 5).unwrap();
        let b = run_fra(&s, &p.rf_grid[0], &p.gbdt_grid[0], &cfg, p.pfi_repeats, 5).unwrap();
        assert_eq!(a.surviving, b.surviving);
    }
}
