//! Compute profiles: the same pipeline at different costs.
//!
//! The paper's grid search sweeps "parameters relevant to tree structures
//! like number of estimators, maximum depth, sample splits, etc." — a full
//! sweep is expensive, so the profile bundles the grid, forest sizes and
//! sampling counts. `Profile::full()` is what the reproduction binary
//! uses; `Profile::fast()` keeps tests and examples quick on the same code
//! path.

use c100_ml::forest::RandomForestConfig;
use c100_ml::gbdt::GbdtConfig;
use c100_ml::tree::MaxFeatures;

/// All knobs controlling pipeline cost.
#[derive(Debug, Clone)]
pub struct Profile {
    /// RF candidate grid for the per-scenario fine-tuning.
    pub rf_grid: Vec<RandomForestConfig>,
    /// XGB-style candidate grid.
    pub gbdt_grid: Vec<GbdtConfig>,
    /// Cross-validation folds (the paper uses 5).
    pub cv_folds: usize,
    /// Permutation-importance repeats inside FRA.
    pub pfi_repeats: usize,
    /// Rows subsampled for the SHAP ranking (TreeSHAP is per-row).
    pub shap_rows: usize,
    /// Forest used for the SHAP ranking (depth-capped: TreeSHAP cost grows
    /// with leaf count × depth²).
    pub shap_forest: RandomForestConfig,
    /// Target length of the FRA-reduced vector (the paper uses 100).
    pub fra_target: usize,
    /// Top-k taken from each of FRA and SHAP for the final union (75).
    pub union_top_k: usize,
    /// Master seed for every model fit in the pipeline.
    pub seed: u64,
}

impl Profile {
    /// The full-size profile used by the reproduction binary. Sized so
    /// the complete 10-scenario evaluation finishes on a single core in
    /// well under an hour while keeping the paper's protocol (5-fold CV
    /// grid search over tree-structure parameters).
    pub fn full() -> Self {
        let mut rf_grid = Vec::new();
        for max_depth in [None, Some(12)] {
            // `All` matches sklearn's regressor default and lets the
            // level-tracking features win splits even inside a wide
            // diverse vector; `Sqrt` is the decorrelating alternative.
            for max_features in [MaxFeatures::Sqrt, MaxFeatures::All] {
                rf_grid.push(RandomForestConfig {
                    n_estimators: 40,
                    max_depth,
                    min_samples_split: 2,
                    min_samples_leaf: 1,
                    max_features,
                    bootstrap: true,
                });
            }
        }
        let gbdt_grid = vec![
            GbdtConfig {
                n_estimators: 40,
                learning_rate: 0.1,
                max_depth: 5,
                min_child_weight: 1.0,
                lambda: 1.0,
                gamma: 0.0,
                subsample: 0.8,
                colsample_bytree: 0.5,
            },
            GbdtConfig {
                n_estimators: 40,
                learning_rate: 0.3,
                max_depth: 3,
                min_child_weight: 1.0,
                lambda: 1.0,
                gamma: 0.0,
                subsample: 0.8,
                colsample_bytree: 0.5,
            },
        ];
        Profile {
            rf_grid,
            gbdt_grid,
            cv_folds: 5,
            pfi_repeats: 2,
            shap_rows: 256,
            shap_forest: RandomForestConfig {
                n_estimators: 30,
                max_depth: Some(8),
                max_features: MaxFeatures::Sqrt,
                ..Default::default()
            },
            fra_target: 100,
            union_top_k: 75,
            seed: 20240712,
        }
    }

    /// A reduced profile for tests and examples.
    pub fn fast() -> Self {
        Profile {
            rf_grid: vec![
                RandomForestConfig {
                    n_estimators: 25,
                    max_depth: Some(10),
                    max_features: MaxFeatures::All,
                    ..Default::default()
                },
                RandomForestConfig {
                    n_estimators: 25,
                    max_depth: Some(10),
                    max_features: MaxFeatures::Sqrt,
                    ..Default::default()
                },
            ],
            gbdt_grid: vec![GbdtConfig {
                n_estimators: 25,
                learning_rate: 0.2,
                max_depth: 3,
                colsample_bytree: 0.3,
                subsample: 0.8,
                ..Default::default()
            }],
            cv_folds: 3,
            pfi_repeats: 2,
            shap_rows: 96,
            shap_forest: RandomForestConfig {
                n_estimators: 15,
                max_depth: Some(6),
                max_features: MaxFeatures::Sqrt,
                ..Default::default()
            },
            fra_target: 100,
            union_top_k: 75,
            seed: 7,
        }
    }

    /// Derives a deterministic sub-seed for a named pipeline stage.
    pub fn stage_seed(&self, stage: &str) -> u64 {
        let mut h: u64 = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for b in stage.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_matches_paper_protocol() {
        let p = Profile::full();
        assert_eq!(p.cv_folds, 5);
        assert_eq!(p.fra_target, 100);
        assert_eq!(p.union_top_k, 75);
        assert_eq!(p.rf_grid.len(), 4);
        assert_eq!(p.gbdt_grid.len(), 2);
    }

    #[test]
    fn stage_seeds_differ_by_stage_and_run() {
        let p = Profile::fast();
        assert_ne!(p.stage_seed("fra"), p.stage_seed("shap"));
        let mut q = Profile::fast();
        q.seed = 8;
        assert_ne!(p.stage_seed("fra"), q.stage_seed("fra"));
    }
}
