//! Append-oriented frame for streaming ingestion.
//!
//! [`Frame`] is built whole: its daily index is fixed at construction and
//! columns must arrive at full length. A tick stream works the other way
//! around — the schema is fixed up front and *rows* arrive one per day.
//! [`AppendFrame`] holds that shape: `push_row` appends one dated row in
//! O(width), enforcing the same strictly-daily gap-free index every
//! `Frame` carries, and [`AppendFrame::to_frame`] converts the
//! accumulated history into an ordinary `Frame` whenever a batch
//! consumer (CSV export, a design matrix, a predictor) needs one.

use crate::date::Date;
use crate::frame::Frame;
use crate::series::Series;
use crate::{Result, TsError};

/// A fixed-schema frame that grows one dated row at a time.
#[derive(Debug, Clone)]
pub struct AppendFrame {
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    start: Option<Date>,
}

impl AppendFrame {
    /// An empty frame over the given column schema.
    ///
    /// # Panics
    /// Panics if `names` is empty or contains a duplicate — a streaming
    /// schema is fixed code, not data, so a bad one is a bug.
    pub fn new(names: &[impl AsRef<str>]) -> AppendFrame {
        assert!(!names.is_empty(), "append frame needs at least one column");
        let names: Vec<String> = names.iter().map(|n| n.as_ref().to_string()).collect();
        for (i, name) in names.iter().enumerate() {
            assert!(!names[..i].contains(name), "duplicate column name {name:?}");
        }
        let columns = vec![Vec::new(); names.len()];
        AppendFrame {
            names,
            columns,
            start: None,
        }
    }

    /// Appends one row. The first row fixes the index start; every later
    /// row must be dated exactly one day after the previous row.
    pub fn push_row(&mut self, date: Date, values: &[f64]) -> Result<()> {
        if values.len() != self.names.len() {
            return Err(TsError::LengthMismatch {
                expected: self.names.len(),
                actual: values.len(),
            });
        }
        match self.start {
            None => self.start = Some(date),
            Some(start) => {
                let expected = start.add_days(self.len() as i32);
                if date != expected {
                    return Err(TsError::BadRange(format!(
                        "row dated {date}, expected {expected} (strictly daily index)"
                    )));
                }
            }
        }
        for (column, &v) in self.columns.iter_mut().zip(values) {
            column.push(v);
        }
        Ok(())
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.columns[0].len()
    }

    /// True before the first row arrives.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column schema, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Date of the first row, once one exists.
    pub fn start(&self) -> Option<Date> {
        self.start
    }

    /// Date of row `row` (must be `< len`).
    pub fn date_at(&self, row: usize) -> Date {
        assert!(row < self.len(), "row {row} out of bounds");
        self.start.expect("non-empty").add_days(row as i32)
    }

    /// The accumulated samples of a column.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(&self.columns[idx])
    }

    /// One row as a freshly collected vector (column order = schema order).
    pub fn row(&self, row: usize) -> Vec<f64> {
        assert!(row < self.len(), "row {row} out of bounds");
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// The whole history as an ordinary [`Frame`].
    pub fn to_frame(&self) -> Result<Frame> {
        self.slice_frame(0, self.len())
    }

    /// Rows `[from, to)` as an ordinary [`Frame`].
    pub fn slice_frame(&self, from: usize, to: usize) -> Result<Frame> {
        if from >= to || to > self.len() {
            return Err(TsError::BadRange(format!(
                "slice [{from}, {to}) of {} rows",
                self.len()
            )));
        }
        let start = self.start.expect("non-empty").add_days(from as i32);
        let mut frame = Frame::with_daily_index(start, to - from);
        for (name, column) in self.names.iter().zip(&self.columns) {
            frame.push_column(Series::new(name.clone(), column[from..to].to_vec()))?;
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day(n: i32) -> Date {
        Date::from_ymd(2020, 1, 1).unwrap().add_days(n)
    }

    #[test]
    fn rows_accumulate_into_a_frame() {
        let mut af = AppendFrame::new(&["a", "b"]);
        assert!(af.is_empty());
        for t in 0..5 {
            af.push_row(day(t), &[t as f64, t as f64 * 10.0]).unwrap();
        }
        assert_eq!(af.len(), 5);
        assert_eq!(af.date_at(3), day(3));
        assert_eq!(af.column("b").unwrap()[4], 40.0);
        assert_eq!(af.row(2), vec![2.0, 20.0]);

        let frame = af.to_frame().unwrap();
        assert_eq!(frame.len(), 5);
        assert_eq!(frame.start(), day(0));
        assert_eq!(
            frame.column("a").unwrap().values(),
            &[0.0, 1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn rejects_gaps_and_width_mismatch() {
        let mut af = AppendFrame::new(&["a"]);
        af.push_row(day(0), &[1.0]).unwrap();
        assert!(af.push_row(day(2), &[2.0]).is_err(), "gap must be rejected");
        assert!(af.push_row(day(1), &[2.0, 3.0]).is_err(), "width mismatch");
        af.push_row(day(1), &[2.0]).unwrap();
        assert_eq!(af.len(), 2);
    }

    #[test]
    fn slice_frame_windows_the_history() {
        let mut af = AppendFrame::new(&["x"]);
        for t in 0..10 {
            af.push_row(day(t), &[t as f64]).unwrap();
        }
        let tail = af.slice_frame(6, 10).unwrap();
        assert_eq!(tail.start(), day(6));
        assert_eq!(tail.column("x").unwrap().values(), &[6.0, 7.0, 8.0, 9.0]);
        assert!(af.slice_frame(5, 5).is_err());
        assert!(af.slice_frame(5, 11).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_schema_panics() {
        AppendFrame::new(&["a", "a"]);
    }
}
