//! Property tests for the HTTP parser: no byte sequence, however
//! mangled or however split across reads, panics the parser — it either
//! completes a request, waits for more bytes, or fails with a typed
//! [`HttpError`]. Split position must never change the outcome.

use c100_serve::http::DEFAULT_MAX_BODY_BYTES;
use c100_serve::{HttpError, Request, RequestParser};
use proptest::prelude::*;

/// Drives a parser over `bytes` in the given chunk sizes (cycled).
fn feed(bytes: &[u8], chunks: &[usize]) -> Result<Option<Request>, HttpError> {
    let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    let mut offset = 0;
    let mut c = 0;
    while offset < bytes.len() {
        let step = chunks.get(c % chunks.len()).copied().unwrap_or(1).max(1);
        c += 1;
        let end = (offset + step).min(bytes.len());
        match parser.push(&bytes[offset..end]) {
            Ok(Some(request)) => return Ok(Some(request)),
            Ok(None) => {}
            Err(e) => return Err(e),
        }
        offset = end;
    }
    Ok(None)
}

/// A plausible request that the mutation tests start from.
fn template(body_len: usize) -> Vec<u8> {
    let body: String = (0..body_len)
        .map(|i| ((i % 10) as u8 + b'0') as char)
        .collect();
    format!(
        "POST /predict HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u32..256, 0..512)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        // Whole-buffer and byte-at-a-time feeds must both merely
        // return — any panic fails the test harness itself.
        let whole = feed(&bytes, &[bytes.len().max(1)]);
        let trickled = feed(&bytes, &[1]);
        // Outcomes agree (parsing is deterministic over content, not
        // over arrival pattern).
        prop_assert_eq!(format!("{whole:?}"), format!("{trickled:?}"));
    }

    #[test]
    fn mutated_requests_never_panic(
        (body_len, flips) in (0usize..64, proptest::collection::vec((0usize..256, 0u32..256), 1..8))
    ) {
        let mut bytes = template(body_len);
        for &(pos, val) in &flips {
            let idx = pos % bytes.len();
            bytes[idx] = val as u8;
        }
        let _ = feed(&bytes, &[bytes.len()]);
        let _ = feed(&bytes, &[7]);
    }

    #[test]
    fn split_position_never_changes_the_parse(
        (body_len, chunks) in (0usize..64, proptest::collection::vec(1usize..40, 1..6))
    ) {
        let bytes = template(body_len);
        let reference = feed(&bytes, &[bytes.len()]).unwrap().expect("template parses");
        let split = feed(&bytes, &chunks).unwrap().expect("split parse completes");
        prop_assert_eq!(&reference, &split);
        prop_assert_eq!(split.body.len(), body_len);
    }

    #[test]
    fn truncations_of_a_valid_request_need_more_not_panic(
        (body_len, cut_seed) in (1usize..64, 0usize..4096)
    ) {
        let bytes = template(body_len);
        let cut = cut_seed % bytes.len();
        // A strict prefix either waits for more bytes or, if the head
        // is complete but the body is short, also waits. Never an error,
        // never a request.
        let outcome = feed(&bytes[..cut], &[3]);
        prop_assert!(matches!(outcome, Ok(None)), "prefix of {cut} bytes gave {outcome:?}");
    }
}
