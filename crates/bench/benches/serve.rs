//! Serving hot-path throughput over loopback: keep-alive vs
//! per-request `Connection: close` transports, micro-batching on and
//! off, at 1/8/64 concurrent connections.
//!
//! Besides the Criterion timings, each configuration's measured volley
//! throughput is recorded to `results/BENCH_serve.json` (with the
//! `c100_bench::bench_env_json` envelope) so later PRs can regress-gate
//! the serving path without re-running Criterion. The two acceptance
//! numbers the ISSUE tracks live here: keep-alive throughput at 64
//! connections vs the close baseline, and batch-on vs batch-off at 64
//! connections (full-batch requests bypass the batcher, so batching can
//! no longer lose).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use c100_bench::dataset::{synthetic_regression, wrap_artifact};
use c100_load::{LoadConfig, LoadPlan, Mode, RequestTemplate};
use c100_ml::forest::RandomForestConfig;
use c100_obs::MetricsRegistry;
use c100_serve::{ServeConfig, Server, ServerHandle};
use c100_store::{ArtifactStore, ModelPayload};

// Single-row requests put all the weight on the transport and batching
// machinery (a 1-row RF predict is microseconds); 96 requests per
// connection keeps each volley long enough to measure on a small box.
const ROWS_PER_REQUEST: usize = 1;
const REQUESTS_PER_CONNECTION: usize = 96;

fn seeded_store() -> (PathBuf, String) {
    let root = std::env::temp_dir().join(format!("c100_bench_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let (x, y) = synthetic_regression(200, 6, 5);
    let model = RandomForestConfig {
        n_estimators: 20,
        max_depth: Some(6),
        ..Default::default()
    }
    .fit(&x, &y, 5)
    .unwrap();
    let artifact = wrap_artifact(ModelPayload::Rf(model), x.n_rows() as u64, 5);
    let entry = ArtifactStore::open(&root).unwrap().save(&artifact).unwrap();
    (root, entry.id)
}

fn start_server(root: &PathBuf, max_batch: usize) -> ServerHandle {
    let mut config = ServeConfig::new(root, "127.0.0.1:0");
    config.workers = 8;
    config.queue_depth = 1024;
    config.max_batch = max_batch;
    config.max_wait = Duration::from_millis(2);
    Server::start(config, Arc::new(MetricsRegistry::new()), None).unwrap()
}

fn predict_body(artifact_id: &str) -> String {
    let mut rows = String::new();
    for r in 0..ROWS_PER_REQUEST {
        if r > 0 {
            rows.push(',');
        }
        let cells: Vec<String> = (0..6)
            .map(|c| format!("{}", (r * 6 + c) as f64 * 0.01))
            .collect();
        rows.push_str(&format!("[{}]", cells.join(",")));
    }
    format!("{{\"artifact\":\"{artifact_id}\",\"rows\":[{rows}]}}")
}

/// Keep-alive volley via the load harness: every connection persists
/// for its whole share of the plan. Returns (elapsed, oks).
fn volley_keep_alive(server: &ServerHandle, connections: usize, body: &str) -> (Duration, usize) {
    let plan = LoadPlan::replay(
        &[RequestTemplate::post("/predict", body)],
        connections * REQUESTS_PER_CONNECTION,
        7,
    );
    let config = LoadConfig {
        addr: server.local_addr(),
        mode: Mode::Closed { connections },
        seed: 7,
        timeout: Duration::from_secs(30),
    };
    let registry = MetricsRegistry::new();
    let report = c100_load::run(&plan, &config, &registry);
    assert_eq!(report.failed, 0, "bench volley failed requests: {report:?}");
    assert_eq!(report.shed, 0, "bench volley shed requests: {report:?}");
    (
        Duration::from_secs_f64(report.elapsed_secs),
        report.ok as usize,
    )
}

/// The pre-keep-alive baseline: a fresh TCP connection per request,
/// `Connection: close` negotiated explicitly. Returns (elapsed, oks).
fn volley_close(server: &ServerHandle, connections: usize, body: &str) -> (Duration, usize) {
    let raw = format!(
        "POST /predict HTTP/1.1\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes();
    let addr = server.local_addr();
    let started = Instant::now();
    let handles: Vec<_> = (0..connections)
        .map(|_| {
            let raw = raw.clone();
            std::thread::spawn(move || {
                let mut ok = 0;
                for _ in 0..REQUESTS_PER_CONNECTION {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    stream.set_nodelay(true).unwrap();
                    stream.write_all(&raw).unwrap();
                    let mut response = String::new();
                    stream.read_to_string(&mut response).unwrap();
                    if response.starts_with("HTTP/1.1 200") {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let oks = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (started.elapsed(), oks)
}

fn serve_throughput(c: &mut Criterion) {
    let (root, artifact_id) = seeded_store();
    let body = predict_body(&artifact_id);

    let mut recorded = format!(
        "{{\"bench\":\"serve_throughput\",\"env\":{},\"results\":[",
        c100_bench::bench_env_json()
    );
    let mut first = true;
    let mut group = c.benchmark_group("serve_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (transport, volley) in [
        (
            "keep_alive",
            volley_keep_alive as fn(&ServerHandle, usize, &str) -> (Duration, usize),
        ),
        ("close", volley_close),
    ] {
        for (mode, max_batch) in [("batch_on", 8usize), ("batch_off", 1usize)] {
            for connections in [1usize, 8, 64] {
                let server = start_server(&root, max_batch);
                let total = connections * REQUESTS_PER_CONNECTION;

                // Manual measurement for BENCH_serve.json, independent
                // of Criterion's own sampling: one warmup volley, then
                // the best of three measured ones (loopback throughput
                // is noisy on small machines).
                volley(&server, connections, &body);
                let mut best_rps = 0.0f64;
                let mut best_elapsed = Duration::MAX;
                for _ in 0..3 {
                    let (elapsed, oks) = volley(&server, connections, &body);
                    assert_eq!(oks, total, "all bench requests must succeed");
                    let rps = total as f64 / elapsed.as_secs_f64();
                    if rps > best_rps {
                        best_rps = rps;
                        best_elapsed = elapsed;
                    }
                }
                if !first {
                    recorded.push(',');
                }
                first = false;
                recorded.push_str(&format!(
                    "{{\"transport\":\"{transport}\",\"connections\":{connections},\
                     \"batching\":\"{mode}\",\"requests\":{total},\
                     \"rows_per_request\":{ROWS_PER_REQUEST},\
                     \"elapsed_micros\":{},\"requests_per_sec\":{best_rps:.1}}}",
                    best_elapsed.as_micros()
                ));

                group.bench_with_input(
                    BenchmarkId::from_parameter(format!("{transport}/{mode}/conns_{connections}")),
                    &connections,
                    |b, &connections| {
                        b.iter(|| volley(&server, connections, &body));
                    },
                );
                server.shutdown();
            }
        }
    }
    group.finish();
    recorded.push_str("]}\n");

    let path = c100_bench::write_bench_record("BENCH_serve.json", &recorded);
    eprintln!("recorded serve throughput -> {}", path.display());

    std::fs::remove_dir_all(&root).ok();
}

criterion_group!(benches, serve_throughput);
criterion_main!(benches);
