//! # c100-obs
//!
//! Typed, thread-safe observability for the Crypto100 pipeline.
//!
//! The experiment pipeline used to announce progress with hard-coded
//! `eprintln!` calls; nothing could time stages, count FRA iterations or
//! export per-run metrics without scraping stderr. This crate replaces
//! printf-debugging with a typed event stream:
//!
//! * [`Event`] — everything the pipeline can report: stage start/end with
//!   durations, grid-search candidate scores, FRA per-iteration survivor
//!   counts and thresholds, and scenario/run summaries.
//! * [`RunObserver`] — the sink trait; `on_event` receives every event.
//!   Observers must be `Send + Sync` because pipeline stages may run on
//!   worker threads.
//! * Shipped sinks: [`NullObserver`] (free), [`StderrObserver`] (the old
//!   human-readable progress lines), [`JsonlObserver`] (append-only
//!   machine-readable run log), [`RecordingObserver`] (in-memory capture
//!   for tests) and [`Fanout`] (broadcast to several sinks).
//! * [`MetricsRegistry`] — monotonic counters, gauges, and duration
//!   histograms aggregated across scenarios, exportable as JSON. The
//!   registry is a facade over sharded lock-free cells ([`telemetry`]):
//!   hot paths preregister a [`CounterHandle`] / [`GaugeHandle`] /
//!   [`HistogramHandle`] and record through relaxed atomics on
//!   per-thread shards — no global mutex, no string hashing. Histograms
//!   use the log-linear [`hist`] layout (4 sub-buckets per power of 2,
//!   1µs–134s) with a guaranteed ≤25% quantile error bound.
//! * [`FlightRecorder`] — an always-on bounded ring of recent
//!   span/event records (producers never block; contended writes are
//!   counted in a drop counter) that dumps a post-mortem `flight.json`
//!   on panic or shutdown and backs `GET /debug/flight`.
//! * [`trace`] — hierarchical span tracing: [`Tracer`] records RAII
//!   [`trace::SpanGuard`] intervals with parent/child links handed off
//!   explicitly across rayon threads via the `Copy` [`TraceCtx`],
//!   aggregates them into a per-scenario self-time [`profile`], and
//!   exports Chrome Trace Event JSON for `chrome://tracing`/Perfetto.
//! * [`mod@compare`] — run-to-run regression diffing over metrics + profile
//!   (the engine behind `repro compare`), with a configurable
//!   fail-over-percent gate.
//!
//! The crate is intentionally dependency-free: events serialize to JSON
//! lines through a small hand-rolled writer ([`Event::to_json_line`]) and
//! parse back through the minimal parser in [`json`], so logs round-trip
//! without pulling serde into the base of the dependency graph.
//!
//! ## Example
//!
//! ```
//! use c100_obs::{Event, RecordingObserver, RunObserver, Stage};
//!
//! let rec = RecordingObserver::new();
//! rec.on_event(&Event::StageStarted { scenario: "2019_7".into(), stage: Stage::Fra });
//! rec.on_event(&Event::StageFinished {
//!     scenario: "2019_7".into(),
//!     stage: Stage::Fra,
//!     micros: 1500,
//! });
//! assert_eq!(rec.events().len(), 2);
//!
//! // Every event round-trips through its JSONL representation.
//! for event in rec.events() {
//!     let line = event.to_json_line();
//!     assert_eq!(Event::parse_json_line(&line).unwrap(), event);
//! }
//! ```

pub mod compare;
pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod sink;
pub mod telemetry;
pub mod trace;

pub use compare::{compare, RunComparison, RunData};
pub use event::{fmt_micros, Event, Stage};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use profile::{ProfileReport, ProfileRow};
pub use ring::{install_panic_dump, FlightRecord, FlightRecorder};
pub use sink::{Fanout, JsonlObserver, NullObserver, RecordingObserver, StderrObserver};
pub use telemetry::{CounterHandle, GaugeHandle, HistogramHandle};
pub use trace::{SpanId, TraceCtx, Tracer};

/// A sink for pipeline events.
///
/// Implementations must be cheap when idle: `on_event` sits on the hot
/// path of every grid-search candidate and FRA iteration, so observers
/// that do real work should buffer internally. Observers are shared
/// across stages (and potentially threads), hence `&self` and the
/// `Send + Sync` bound.
pub trait RunObserver: Send + Sync {
    /// Receives one pipeline event.
    fn on_event(&self, event: &Event);
}

impl<T: RunObserver + ?Sized> RunObserver for &T {
    fn on_event(&self, event: &Event) {
        (**self).on_event(event);
    }
}

impl<T: RunObserver + ?Sized> RunObserver for std::sync::Arc<T> {
    fn on_event(&self, event: &Event) {
        (**self).on_event(event);
    }
}

impl<T: RunObserver + ?Sized> RunObserver for Box<T> {
    fn on_event(&self, event: &Event) {
        (**self).on_event(event);
    }
}
