//! Short-term vs long-term driving factors (Tables 3 and 4).
//!
//! Final feature vectors of windows {1, 7} merge into the *Short-term*
//! group and {90, 180} into the *Long-term* group; a feature appearing in
//! several merged vectors keeps the average of its importance values. The
//! paper then reports each group's top-5 features (Table 3) and the top-20
//! features unique to each group (Table 4).

use std::collections::HashMap;

/// Windows forming the short-term group.
pub const SHORT_TERM_WINDOWS: [usize; 2] = [1, 7];
/// Windows forming the long-term group.
pub const LONG_TERM_WINDOWS: [usize; 2] = [90, 180];

/// An importance-ranked feature list for one scenario or group.
#[derive(Debug, Clone, Default)]
pub struct RankedFeatures {
    /// `(feature, importance)`, most important first.
    pub entries: Vec<(String, f64)>,
}

impl RankedFeatures {
    /// Builds from unsorted pairs, sorting by importance descending.
    pub fn from_pairs(mut pairs: Vec<(String, f64)>) -> Self {
        pairs.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite importances")
                .then(a.0.cmp(&b.0))
        });
        RankedFeatures { entries: pairs }
    }

    /// The top-`n` feature names.
    pub fn top(&self, n: usize) -> Vec<&str> {
        self.entries
            .iter()
            .take(n)
            .map(|(f, _)| f.as_str())
            .collect()
    }

    /// Whether the group contains a feature.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(f, _)| f == name)
    }
}

/// Merges several scenarios' ranked vectors into a group, averaging the
/// importance of features that appear more than once.
pub fn merge_group(vectors: &[&RankedFeatures]) -> RankedFeatures {
    let mut acc: HashMap<&str, (f64, usize)> = HashMap::new();
    for vector in vectors {
        for (name, importance) in &vector.entries {
            let slot = acc.entry(name.as_str()).or_insert((0.0, 0));
            slot.0 += importance;
            slot.1 += 1;
        }
    }
    let pairs = acc
        .into_iter()
        .map(|(name, (sum, count))| (name.to_string(), sum / count as f64))
        .collect();
    RankedFeatures::from_pairs(pairs)
}

/// The top-`n` features of `group` that do **not** appear in `other`
/// (Table 4's unique-feature analysis).
pub fn unique_top(group: &RankedFeatures, other: &RankedFeatures, n: usize) -> Vec<String> {
    group
        .entries
        .iter()
        .filter(|(name, _)| !other.contains(name))
        .take(n)
        .map(|(name, _)| name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranked(pairs: &[(&str, f64)]) -> RankedFeatures {
        RankedFeatures::from_pairs(pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect())
    }

    #[test]
    fn from_pairs_sorts_descending() {
        let r = ranked(&[("a", 0.1), ("b", 0.5), ("c", 0.3)]);
        assert_eq!(r.top(3), vec!["b", "c", "a"]);
    }

    #[test]
    fn merge_averages_common_features() {
        let a = ranked(&[("x", 0.4), ("y", 0.2)]);
        let b = ranked(&[("x", 0.2), ("z", 0.3)]);
        let merged = merge_group(&[&a, &b]);
        let x = merged.entries.iter().find(|(n, _)| n == "x").unwrap();
        assert!((x.1 - 0.3).abs() < 1e-12);
        let z = merged.entries.iter().find(|(n, _)| n == "z").unwrap();
        assert!((z.1 - 0.3).abs() < 1e-12);
        assert_eq!(merged.entries.len(), 3);
    }

    #[test]
    fn unique_top_excludes_shared_features() {
        let a = ranked(&[("shared", 0.9), ("only_a1", 0.5), ("only_a2", 0.3)]);
        let b = ranked(&[("shared", 0.8), ("only_b", 0.4)]);
        let unique = unique_top(&a, &b, 10);
        assert_eq!(unique, vec!["only_a1", "only_a2"]);
        let unique_capped = unique_top(&a, &b, 1);
        assert_eq!(unique_capped, vec!["only_a1"]);
    }

    #[test]
    fn tie_breaks_are_deterministic() {
        let r = ranked(&[("b", 0.5), ("a", 0.5)]);
        assert_eq!(r.top(2), vec!["a", "b"]);
    }
}
