//! The on-disk artifact envelope: a fitted model plus everything needed
//! to serve it safely later.
//!
//! An artifact is a two-line UTF-8 text file:
//!
//! ```text
//! {"schema_version":1,"checksum":"9f86d081884c7d65","payload_bytes":1234}
//! {"scenario":"2019_7","period":"2019","window":7,...,"model_data":{...}}
//! ```
//!
//! The first line is a fixed, flat header that can be parsed without
//! touching the payload; the second line is the payload itself. The
//! header's `checksum` is the FNV-1a 64 digest of the payload bytes and
//! doubles as the artifact's content address (its id). Decoding checks,
//! in order: header shape, schema version, payload length, checksum,
//! payload shape — so a truncated, bit-flipped, or future-versioned file
//! always fails with the most specific [`StoreError`] and never panics.

use std::collections::BTreeMap;

use c100_ml::forest::{RandomForest, RandomForestConfig};
use c100_ml::gbdt::{Gbdt, GbdtConfig};
use c100_ml::tree::MaxFeatures;
use c100_ml::{CompiledEnsemble, Predictor, Regressor};
use c100_obs::json::{self, write_escaped, write_float};

use crate::codec;
use crate::{Result, StoreError};

/// Artifact format revision understood by this build. Bump on any
/// incompatible change to the envelope or payload layout; loaders
/// reject other versions with [`StoreError::SchemaVersion`].
pub const SCHEMA_VERSION: u64 = 1;

/// FNV-1a 64-bit digest; the integrity checksum and content address of
/// artifact payloads. Any single-byte change flips the digest (each
/// step XORs the byte in and multiplies by an odd, hence invertible,
/// constant).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The model carried by an artifact: one of the two ensemble families
/// the paper evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelPayload {
    /// A fitted random forest.
    Rf(RandomForest),
    /// A fitted gradient-boosted ensemble.
    Gbdt(Gbdt),
}

impl ModelPayload {
    /// Short family tag used in filenames, events, and the manifest.
    pub fn family(&self) -> &'static str {
        match self {
            ModelPayload::Rf(_) => "rf",
            ModelPayload::Gbdt(_) => "gbdt",
        }
    }

    /// Width of rows the model was trained on.
    pub fn n_features(&self) -> usize {
        match self {
            ModelPayload::Rf(m) => m.n_features,
            ModelPayload::Gbdt(m) => m.n_features,
        }
    }

    /// Flattens the ensemble into a [`CompiledEnsemble`] for the
    /// compiled inference engine. Bit-identical to the interpreted
    /// walkers, just laid out for serving.
    pub fn compile(&self) -> CompiledEnsemble {
        match self {
            ModelPayload::Rf(m) => CompiledEnsemble::from_forest(m),
            ModelPayload::Gbdt(m) => CompiledEnsemble::from_gbdt(m),
        }
    }

    /// Total node count across the ensemble (a size proxy).
    pub fn total_nodes(&self) -> usize {
        match self {
            ModelPayload::Rf(m) => m.total_nodes(),
            ModelPayload::Gbdt(m) => m.total_nodes(),
        }
    }

    fn model_data_json(&self) -> String {
        // The stub-free path: both model types derive `serde::Serialize`
        // and render through `serde_json`, whose float formatting
        // round-trips exactly through `c100_obs::json::parse`.
        let rendered = match self {
            ModelPayload::Rf(m) => serde_json::to_string(m),
            ModelPayload::Gbdt(m) => serde_json::to_string(m),
        };
        rendered.expect("in-memory model serialization cannot fail")
    }
}

/// The interpreted engine: predictions walk the fitted trees' node
/// structs directly. (The former inherent `predict_row` moved here so
/// every backend — payloads and compiled ensembles alike — is reached
/// through the one [`Predictor`] surface.)
impl Regressor for ModelPayload {
    fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            ModelPayload::Rf(m) => m.predict_row(row),
            ModelPayload::Gbdt(m) => m.predict_row(row),
        }
    }
}

impl Predictor for ModelPayload {
    fn n_features(&self) -> usize {
        ModelPayload::n_features(self)
    }
}

/// A fitted model plus the metadata required to serve it later without
/// refitting: feature schema, scenario, hyperparameters, train range.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// Scenario id in the paper's `period_window` notation (`2019_7`).
    pub scenario: String,
    /// Period label (`2017` / `2019`).
    pub period: String,
    /// Prediction window in days.
    pub window: u64,
    /// Ordered feature schema; inference inputs must match exactly.
    pub features: Vec<String>,
    /// Descriptor of the profile that produced the model (`fast`,
    /// `full`, or `seed-<n>` for ad-hoc profiles).
    pub profile: String,
    /// Root seed of the producing run.
    pub seed: u64,
    /// Rows in the training split.
    pub train_rows: u64,
    /// First training date (ISO `YYYY-MM-DD`).
    pub train_start: String,
    /// Last training date (ISO `YYYY-MM-DD`).
    pub train_end: String,
    /// Flat, human-auditable hyperparameter map.
    pub hyperparameters: BTreeMap<String, String>,
    /// The fitted model itself.
    pub model: ModelPayload,
}

/// An encoded artifact: the exact file text, its content-addressed id,
/// and its size.
#[derive(Debug, Clone)]
pub struct EncodedArtifact {
    /// Full file contents (header line + payload line).
    pub text: String,
    /// Content address: the payload checksum as 16 lowercase hex digits.
    pub id: String,
    /// Total encoded size in bytes.
    pub bytes: u64,
}

impl ModelArtifact {
    /// Renders `RandomForestConfig` into the flat hyperparameter map.
    pub fn rf_hyperparameters(config: &RandomForestConfig) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        map.insert("n_estimators".into(), config.n_estimators.to_string());
        map.insert(
            "max_depth".into(),
            config.max_depth.map_or("none".into(), |d| d.to_string()),
        );
        map.insert(
            "min_samples_split".into(),
            config.min_samples_split.to_string(),
        );
        map.insert(
            "min_samples_leaf".into(),
            config.min_samples_leaf.to_string(),
        );
        map.insert(
            "max_features".into(),
            max_features_label(config.max_features),
        );
        map.insert("bootstrap".into(), config.bootstrap.to_string());
        map.insert("split_method".into(), config.split_method.label());
        map
    }

    /// Renders `GbdtConfig` into the flat hyperparameter map.
    pub fn gbdt_hyperparameters(config: &GbdtConfig) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        map.insert("n_estimators".into(), config.n_estimators.to_string());
        map.insert(
            "learning_rate".into(),
            format!("{:?}", config.learning_rate),
        );
        map.insert("max_depth".into(), config.max_depth.to_string());
        map.insert(
            "min_child_weight".into(),
            format!("{:?}", config.min_child_weight),
        );
        map.insert("lambda".into(), format!("{:?}", config.lambda));
        map.insert("gamma".into(), format!("{:?}", config.gamma));
        map.insert("subsample".into(), format!("{:?}", config.subsample));
        map.insert(
            "colsample_bytree".into(),
            format!("{:?}", config.colsample_bytree),
        );
        map.insert("split_method".into(), config.split_method.label());
        map
    }

    /// Encodes the artifact into its on-disk text form. Deterministic:
    /// the same artifact always yields byte-identical text, so the id
    /// is stable.
    pub fn encode(&self) -> EncodedArtifact {
        let mut p = String::with_capacity(4096);
        p.push('{');
        p.push_str("\"scenario\":");
        write_escaped(&mut p, &self.scenario);
        p.push_str(",\"period\":");
        write_escaped(&mut p, &self.period);
        p.push_str(",\"window\":");
        p.push_str(&self.window.to_string());
        p.push_str(",\"features\":[");
        for (i, f) in self.features.iter().enumerate() {
            if i > 0 {
                p.push(',');
            }
            write_escaped(&mut p, f);
        }
        p.push_str("],\"profile\":");
        write_escaped(&mut p, &self.profile);
        p.push_str(",\"seed\":");
        p.push_str(&self.seed.to_string());
        p.push_str(",\"train_rows\":");
        p.push_str(&self.train_rows.to_string());
        p.push_str(",\"train_start\":");
        write_escaped(&mut p, &self.train_start);
        p.push_str(",\"train_end\":");
        write_escaped(&mut p, &self.train_end);
        p.push_str(",\"hyperparameters\":{");
        for (i, (k, v)) in self.hyperparameters.iter().enumerate() {
            if i > 0 {
                p.push(',');
            }
            write_escaped(&mut p, k);
            p.push(':');
            write_escaped(&mut p, v);
        }
        p.push_str("},\"model_family\":");
        write_escaped(&mut p, self.model.family());
        p.push_str(",\"model_data\":");
        p.push_str(&self.model.model_data_json());
        p.push('}');

        let checksum = fnv1a64(p.as_bytes());
        let id = format!("{checksum:016x}");
        let header = format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"checksum\":\"{id}\",\"payload_bytes\":{}}}",
            p.len()
        );
        let text = format!("{header}\n{p}\n");
        let bytes = text.len() as u64;
        EncodedArtifact { text, id, bytes }
    }

    /// Decodes artifact text, verifying schema version and checksum
    /// before touching the payload.
    pub fn decode(text: &str) -> Result<ModelArtifact> {
        let (header_line, rest) = text
            .split_once('\n')
            .ok_or_else(|| StoreError::Malformed("missing header/payload separator".into()))?;
        let header =
            json::parse(header_line).map_err(|e| StoreError::Malformed(format!("header: {e}")))?;
        let found = header
            .req_uint("schema_version")
            .map_err(|e| StoreError::Malformed(format!("header: {e}")))?;
        if found != SCHEMA_VERSION {
            return Err(StoreError::SchemaVersion {
                found,
                expected: SCHEMA_VERSION,
            });
        }
        let expected_checksum = header
            .req_str("checksum")
            .map_err(|e| StoreError::Malformed(format!("header: {e}")))?
            .to_string();
        let payload_bytes = header
            .req_uint("payload_bytes")
            .map_err(|e| StoreError::Malformed(format!("header: {e}")))?;

        let payload_line = rest.strip_suffix('\n').unwrap_or(rest);
        if payload_line.len() as u64 != payload_bytes {
            return Err(StoreError::Malformed(format!(
                "payload is {} bytes, header promised {payload_bytes}",
                payload_line.len()
            )));
        }
        let actual = format!("{:016x}", fnv1a64(payload_line.as_bytes()));
        if actual != expected_checksum {
            return Err(StoreError::ChecksumMismatch {
                expected: expected_checksum,
                actual,
            });
        }

        let payload = json::parse(payload_line)
            .map_err(|e| StoreError::Malformed(format!("payload: {e}")))?;
        Self::from_payload(&payload)
    }

    fn from_payload(payload: &json::Value) -> Result<ModelArtifact> {
        let malformed = |e: json::JsonError| StoreError::Malformed(format!("payload: {e}"));
        let features = codec::string_array(payload, "features")?;
        let hyperparameters = codec::string_map(payload, "hyperparameters")?;
        let family = payload.req_str("model_family").map_err(malformed)?;
        let model_data = payload
            .get("model_data")
            .ok_or_else(|| StoreError::Malformed("payload: missing field \"model_data\"".into()))?;
        let model = match family {
            "rf" => ModelPayload::Rf(codec::forest_from(model_data)?),
            "gbdt" => ModelPayload::Gbdt(codec::gbdt_from(model_data)?),
            other => {
                return Err(StoreError::Malformed(format!(
                    "unknown model family {other:?}"
                )))
            }
        };
        if model.n_features() != features.len() {
            return Err(StoreError::Malformed(format!(
                "model expects {} features but schema lists {}",
                model.n_features(),
                features.len()
            )));
        }
        Ok(ModelArtifact {
            scenario: payload.req_str("scenario").map_err(malformed)?.to_string(),
            period: payload.req_str("period").map_err(malformed)?.to_string(),
            window: payload.req_uint("window").map_err(malformed)?,
            features,
            profile: payload.req_str("profile").map_err(malformed)?.to_string(),
            seed: payload.req_uint("seed").map_err(malformed)?,
            train_rows: payload.req_uint("train_rows").map_err(malformed)?,
            train_start: payload
                .req_str("train_start")
                .map_err(malformed)?
                .to_string(),
            train_end: payload.req_str("train_end").map_err(malformed)?.to_string(),
            hyperparameters,
            model,
        })
    }
}

/// Stable string form of [`MaxFeatures`] for the hyperparameter map.
fn max_features_label(mf: MaxFeatures) -> String {
    match mf {
        MaxFeatures::All => "all".into(),
        MaxFeatures::Sqrt => "sqrt".into(),
        MaxFeatures::Log2 => "log2".into(),
        MaxFeatures::Fraction(f) => {
            let mut out = String::from("frac:");
            write_float(&mut out, f);
            out
        }
        MaxFeatures::Count(n) => format!("count:{n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_byte_flip_changes_checksum() {
        let base = b"the quick brown fox".to_vec();
        let h0 = fnv1a64(&base);
        for i in 0..base.len() {
            for bit in 0..8u8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a64(&flipped), h0, "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn max_features_labels_are_stable() {
        assert_eq!(max_features_label(MaxFeatures::All), "all");
        assert_eq!(max_features_label(MaxFeatures::Sqrt), "sqrt");
        assert_eq!(max_features_label(MaxFeatures::Log2), "log2");
        assert_eq!(max_features_label(MaxFeatures::Fraction(0.5)), "frac:0.5");
        assert_eq!(max_features_label(MaxFeatures::Count(12)), "count:12");
    }
}
