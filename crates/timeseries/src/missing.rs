//! Missing-value handling: the paper fills empty data with interpolation
//! during preprocessing; forward/backward fill support the synthetic
//! traditional-market feeds (closed on weekends).

use crate::frame::Frame;
use crate::series::Series;

/// Linearly interpolates interior gaps in place.
///
/// Leading and trailing missing runs are left untouched — there is nothing
/// to anchor them; the scenario cut later discards features whose history
/// starts after the scenario's first day.
pub fn interpolate(series: &mut Series) {
    let values = series.values_mut();
    let n = values.len();
    let mut i = 0;
    // Skip the leading missing run.
    while i < n && values[i].is_nan() {
        i += 1;
    }
    while i < n {
        if !values[i].is_nan() {
            i += 1;
            continue;
        }
        // values[i] is NaN and values[i-1] is present; find the next anchor.
        let left = i - 1;
        let mut right = i;
        while right < n && values[right].is_nan() {
            right += 1;
        }
        if right == n {
            break; // trailing run, leave it
        }
        let lo = values[left];
        let hi = values[right];
        let span = (right - left) as f64;
        for (offset, v) in values[left + 1..right].iter_mut().enumerate() {
            let t = (offset + 1) as f64 / span;
            *v = lo + (hi - lo) * t;
        }
        i = right + 1;
    }
}

/// Propagates the last present value forward over gaps (and trailing run).
pub fn forward_fill(series: &mut Series) {
    let values = series.values_mut();
    let mut last = f64::NAN;
    for v in values.iter_mut() {
        if v.is_nan() {
            if !last.is_nan() {
                *v = last;
            }
        } else {
            last = *v;
        }
    }
}

/// Propagates the next present value backward over gaps (and leading run).
pub fn backward_fill(series: &mut Series) {
    let values = series.values_mut();
    let mut next = f64::NAN;
    for v in values.iter_mut().rev() {
        if v.is_nan() {
            if !next.is_nan() {
                *v = next;
            }
        } else {
            next = *v;
        }
    }
}

/// Interpolates every column of the frame in place.
pub fn interpolate_frame(frame: &mut Frame) {
    for col in frame.columns_mut() {
        interpolate(col);
    }
}

/// Forward-fills every column of the frame in place.
pub fn forward_fill_frame(frame: &mut Frame) {
    for col in frame.columns_mut() {
        forward_fill(col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(values: &[f64]) -> Series {
        Series::new("x", values.to_vec())
    }

    #[test]
    fn interpolates_interior_gap() {
        let mut series = s(&[1.0, f64::NAN, f64::NAN, 4.0]);
        interpolate(&mut series);
        assert_eq!(series.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interpolation_leaves_edges_missing() {
        let mut series = s(&[f64::NAN, 2.0, f64::NAN, 4.0, f64::NAN]);
        interpolate(&mut series);
        assert!(series.values()[0].is_nan());
        assert_eq!(series.values()[2], 3.0);
        assert!(series.values()[4].is_nan());
    }

    #[test]
    fn interpolation_noop_on_complete_or_empty() {
        let mut full = s(&[1.0, 2.0]);
        interpolate(&mut full);
        assert_eq!(full.values(), &[1.0, 2.0]);

        let mut empty = Series::missing("m", 3);
        interpolate(&mut empty);
        assert_eq!(empty.count_missing(), 3);
    }

    #[test]
    fn forward_fill_carries_last_value() {
        let mut series = s(&[f64::NAN, 1.0, f64::NAN, f64::NAN, 5.0, f64::NAN]);
        forward_fill(&mut series);
        assert!(series.values()[0].is_nan());
        assert_eq!(&series.values()[1..], &[1.0, 1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn backward_fill_mirrors_forward() {
        let mut series = s(&[f64::NAN, 1.0, f64::NAN, 5.0]);
        backward_fill(&mut series);
        assert_eq!(series.values(), &[1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn frame_level_fill_touches_all_columns() {
        use crate::date::Date;
        let mut f = Frame::with_daily_index(Date::from_ymd(2020, 1, 1).unwrap(), 3);
        f.push_column(s(&[1.0, f64::NAN, 3.0])).unwrap();
        let mut other = s(&[2.0, f64::NAN, 4.0]);
        other.set_name("y");
        f.push_column(other).unwrap();
        interpolate_frame(&mut f);
        assert_eq!(f.column("x").unwrap().values()[1], 2.0);
        assert_eq!(f.column("y").unwrap().values()[1], 3.0);
    }
}
