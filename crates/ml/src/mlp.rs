//! Multi-layer perceptron regressor — the "more complex model" of the
//! paper's future-work section ("Impact on complex models"), so the
//! diversity experiments can be repeated on a non-tree family.
//!
//! Implementation notes:
//! * Inputs and the target are standardized internally (price-level
//!   targets span orders of magnitude; raw-scale gradient descent would
//!   not converge).
//! * Training is mini-batch Adam with optional L2 weight decay.
//! * Like every model in this crate it is a pure function of its seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::data::{check_fit_input, Matrix};
use crate::{Estimator, MlError, Regressor, Result};

/// Hidden-layer activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    fn apply(self, z: f64) -> f64 {
        match self {
            Activation::Relu => z.max(0.0),
            Activation::Tanh => z.tanh(),
        }
    }

    fn derivative(self, activated: f64) -> f64 {
        match self {
            Activation::Relu => {
                if activated > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - activated * activated,
        }
    }
}

/// Hyper-parameters of the MLP regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths, e.g. `[64, 32]`.
    pub hidden_layers: Vec<usize>,
    /// Training epochs over the whole dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight-decay coefficient.
    pub l2: f64,
    /// Hidden activation.
    pub activation: Activation,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden_layers: vec![64, 32],
            epochs: 200,
            batch_size: 32,
            learning_rate: 1e-3,
            l2: 1e-5,
            activation: Activation::Relu,
        }
    }
}

struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl AdamState {
    fn new(n: usize) -> Self {
        AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        self.t += 1;
        let t = self.t as f64;
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let m_hat = self.m[i] / (1.0 - B1.powf(t));
            let v_hat = self.v[i] / (1.0 - B2.powf(t));
            params[i] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

struct Layer {
    /// Row-major `out × in` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
}

impl Layer {
    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        output.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = row.iter().zip(input).map(|(w, x)| w * x).sum::<f64>() + self.b[o];
            output.push(z);
        }
    }
}

/// A fitted MLP regressor.
pub struct Mlp {
    layers: Vec<Layer>,
    activation: Activation,
    x_mean: Vec<f64>,
    x_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl MlpConfig {
    fn validate(&self) -> Result<()> {
        if self.hidden_layers.contains(&0) {
            return Err(MlError::BadConfig("zero-width hidden layer".into()));
        }
        if self.epochs == 0 || self.batch_size == 0 {
            return Err(MlError::BadConfig(
                "epochs and batch_size must be >= 1".into(),
            ));
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() || self.l2 < 0.0 {
            return Err(MlError::BadConfig(
                "learning_rate > 0, l2 >= 0 required".into(),
            ));
        }
        Ok(())
    }

    /// Trains the network with mini-batch Adam.
    pub fn fit(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<Mlp> {
        self.validate()?;
        check_fit_input(x, y)?;
        let n = x.n_rows();
        let d = x.n_features();
        let mut rng = StdRng::seed_from_u64(seed);

        // Standardization statistics.
        let mut x_mean = vec![0.0; d];
        let mut x_std = vec![0.0; d];
        for c in 0..d {
            let mean = (0..n).map(|r| x.get(r, c)).sum::<f64>() / n as f64;
            let var = (0..n).map(|r| (x.get(r, c) - mean).powi(2)).sum::<f64>() / n as f64;
            x_mean[c] = mean;
            x_std[c] = var.sqrt().max(1e-12);
        }
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let y_std = (y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64)
            .sqrt()
            .max(1e-12);

        // He/Xavier-ish init.
        let mut sizes = vec![d];
        sizes.extend(&self.hidden_layers);
        sizes.push(1);
        let mut layers = Vec::new();
        for pair in sizes.windows(2) {
            let (n_in, n_out) = (pair[0], pair[1]);
            let scale = (2.0 / n_in as f64).sqrt();
            let w: Vec<f64> = (0..n_in * n_out)
                .map(|_| scale * crate_gaussian(&mut rng))
                .collect();
            layers.push(Layer {
                w,
                b: vec![0.0; n_out],
                n_in,
                n_out,
            });
        }

        // Standardized training copies.
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|r| {
                (0..d)
                    .map(|c| (x.get(r, c) - x_mean[c]) / x_std[c])
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let mut adam_w: Vec<AdamState> = layers.iter().map(|l| AdamState::new(l.w.len())).collect();
        let mut adam_b: Vec<AdamState> = layers.iter().map(|l| AdamState::new(l.b.len())).collect();
        let mut order: Vec<usize> = (0..n).collect();

        // Per-layer scratch: activations and deltas.
        let n_layers = layers.len();
        for _epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(self.batch_size) {
                let mut grad_w: Vec<Vec<f64>> =
                    layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
                let mut grad_b: Vec<Vec<f64>> =
                    layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

                for &row in batch {
                    // Forward pass, keeping activations per layer.
                    let mut activations: Vec<Vec<f64>> = Vec::with_capacity(n_layers + 1);
                    activations.push(xs[row].clone());
                    for (li, layer) in layers.iter().enumerate() {
                        let mut z = Vec::new();
                        layer.forward(activations.last().expect("non-empty"), &mut z);
                        if li + 1 < n_layers {
                            for v in &mut z {
                                *v = self.activation.apply(*v);
                            }
                        }
                        activations.push(z);
                    }
                    let prediction = activations[n_layers][0];
                    // d(MSE)/d(pred), up to the constant 2 (folded into lr).
                    let mut delta = vec![prediction - ys[row]];

                    // Backward pass.
                    for li in (0..n_layers).rev() {
                        let layer = &layers[li];
                        let input = &activations[li];
                        for o in 0..layer.n_out {
                            grad_b[li][o] += delta[o];
                            for i in 0..layer.n_in {
                                grad_w[li][o * layer.n_in + i] += delta[o] * input[i];
                            }
                        }
                        if li > 0 {
                            let mut next_delta = vec![0.0; layer.n_in];
                            for (o, &d) in delta.iter().enumerate() {
                                for (i, nd) in next_delta.iter_mut().enumerate() {
                                    *nd += d * layer.w[o * layer.n_in + i];
                                }
                            }
                            for (i, nd) in next_delta.iter_mut().enumerate() {
                                *nd *= self.activation.derivative(activations[li][i]);
                            }
                            delta = next_delta;
                        }
                    }
                }

                let inv = 1.0 / batch.len() as f64;
                for li in 0..n_layers {
                    for (g, w) in grad_w[li].iter_mut().zip(&layers[li].w) {
                        *g = *g * inv + self.l2 * w;
                    }
                    for g in grad_b[li].iter_mut() {
                        *g *= inv;
                    }
                    adam_w[li].step(&mut layers[li].w, &grad_w[li], self.learning_rate);
                    adam_b[li].step(&mut layers[li].b, &grad_b[li], self.learning_rate);
                }
            }
        }

        Ok(Mlp {
            layers,
            activation: self.activation,
            x_mean,
            x_std,
            y_mean,
            y_std,
        })
    }
}

impl Estimator for MlpConfig {
    type Model = Mlp;

    fn fit_model(&self, x: &Matrix, y: &[f64], seed: u64) -> Result<Mlp> {
        self.fit(x, y, seed)
    }
}

impl Regressor for Mlp {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut current: Vec<f64> = row
            .iter()
            .zip(self.x_mean.iter().zip(&self.x_std))
            .map(|(x, (m, s))| (x - m) / s)
            .collect();
        let n_layers = self.layers.len();
        let mut next = Vec::new();
        for (li, layer) in self.layers.iter().enumerate() {
            layer.forward(&current, &mut next);
            if li + 1 < n_layers {
                for v in &mut next {
                    *v = self.activation.apply(*v);
                }
            }
            std::mem::swap(&mut current, &mut next);
        }
        current[0] * self.y_std + self.y_mean
    }
}

fn crate_gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::mse;

    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.gen::<f64>() * 10.0;
            let b = rng.gen::<f64>() * 10.0;
            rows.push(vec![a, b]);
            y.push(1000.0 + 3.0 * a - 2.0 * b);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_linear_function() {
        let (x, y) = linear_data(300, 1);
        let model = MlpConfig {
            hidden_layers: vec![16],
            epochs: 150,
            ..Default::default()
        }
        .fit(&x, &y, 2)
        .unwrap();
        let (xt, yt) = linear_data(80, 3);
        let pred = model.predict(&xt);
        let error = mse(&yt, &pred);
        let var = {
            let m = yt.iter().sum::<f64>() / yt.len() as f64;
            yt.iter().map(|v| (v - m).powi(2)).sum::<f64>() / yt.len() as f64
        };
        assert!(error < 0.05 * var, "mse {error} vs var {var}");
    }

    #[test]
    fn learns_nonlinear_function() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen::<f64>() * 4.0 - 2.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let model = MlpConfig {
            hidden_layers: vec![32, 16],
            epochs: 300,
            ..Default::default()
        }
        .fit(&x, &y, 7)
        .unwrap();
        // The parabola should be approximated well inside the range.
        for probe in [-1.5, -0.5, 0.0, 0.5, 1.5] {
            let p = model.predict_row(&[probe]);
            assert!(
                (p - probe * probe).abs() < 0.35,
                "f({probe}) = {p}, want {}",
                probe * probe
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, y) = linear_data(100, 11);
        let cfg = MlpConfig {
            epochs: 20,
            ..Default::default()
        };
        let a = cfg.fit(&x, &y, 9).unwrap();
        let b = cfg.fit(&x, &y, 9).unwrap();
        assert_eq!(a.predict_row(&[1.0, 2.0]), b.predict_row(&[1.0, 2.0]));
    }

    #[test]
    fn validates_config() {
        let (x, y) = linear_data(20, 13);
        for cfg in [
            MlpConfig {
                hidden_layers: vec![0],
                ..Default::default()
            },
            MlpConfig {
                epochs: 0,
                ..Default::default()
            },
            MlpConfig {
                batch_size: 0,
                ..Default::default()
            },
            MlpConfig {
                learning_rate: 0.0,
                ..Default::default()
            },
            MlpConfig {
                l2: -1.0,
                ..Default::default()
            },
        ] {
            assert!(cfg.fit(&x, &y, 0).is_err());
        }
    }

    #[test]
    fn handles_constant_features_and_large_targets() {
        // Standardization must absorb scale and degenerate columns.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 42.0]).collect();
        let y: Vec<f64> = (0..100).map(|i| 1.0e9 + 1.0e6 * i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let model = MlpConfig {
            hidden_layers: vec![8],
            epochs: 200,
            ..Default::default()
        }
        .fit(&x, &y, 1)
        .unwrap();
        let p = model.predict_row(&[50.0, 42.0]);
        assert!((p - 1.05e9).abs() < 2.0e7, "p = {p:.3e}, want ~1.05e9");
    }

    #[test]
    fn tanh_activation_works_too() {
        let (x, y) = linear_data(150, 17);
        let model = MlpConfig {
            hidden_layers: vec![16],
            epochs: 150,
            activation: Activation::Tanh,
            ..Default::default()
        }
        .fit(&x, &y, 3)
        .unwrap();
        let pred = model.predict(&x);
        let error = mse(&y, &pred);
        let var = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            y.iter().map(|v| (v - m).powi(2)).sum::<f64>() / y.len() as f64
        };
        assert!(error < 0.1 * var, "mse {error} vs var {var}");
    }
}
