//! # c100-timeseries
//!
//! Columnar daily time-series substrate for the Crypto100 reproduction.
//!
//! The paper's pipeline manipulates a daily panel of ~429 market metrics
//! spanning January 2017 → June 2023. This crate provides the minimal but
//! complete data-frame machinery that pipeline needs:
//!
//! * [`Date`] — a proleptic-Gregorian civil date with O(1) day arithmetic,
//!   used as the row index of every frame.
//! * [`Series`] — a named column of `f64` samples where missing values are
//!   encoded as `NaN`.
//! * [`Frame`] — a date-indexed collection of columns with alignment,
//!   selection and range-slicing operations.
//! * [`AppendFrame`] — a fixed-schema frame that grows one dated row at
//!   a time, for streaming ingestion.
//! * [`missing`] — interpolation and fill strategies used during the
//!   paper's preprocessing phase.
//! * [`clean`] — duplicate removal and flat/missing-heavy feature pruning
//!   (the paper's "standard methods used in ML" cleaning step).
//! * [`transform`] — lags, horizon-shifted targets, returns and scalers.
//! * [`stats`] — the scalar statistics (Pearson correlation above all)
//!   that the Feature Reduction Algorithm consumes.
//! * [`csv`] — plain-text persistence so experiment outputs can be
//!   inspected and re-plotted outside Rust.
//!
//! All columns are plain `Vec<f64>` in column-major layout: every algorithm
//! downstream (tree building, correlation scans, permutation importance)
//! walks one feature at a time, so the columnar layout keeps those scans
//! sequential in memory.
//!
//! ## Quick example
//!
//! ```
//! use c100_timeseries::{Date, Frame, Series};
//!
//! let start = Date::from_ymd(2017, 1, 1).unwrap();
//! let mut frame = Frame::with_daily_index(start, 4);
//! frame.push_column(Series::new("price", vec![1.0, 2.0, f64::NAN, 4.0])).unwrap();
//! c100_timeseries::missing::interpolate_frame(&mut frame);
//! assert_eq!(frame.column("price").unwrap().values()[2], 3.0);
//! ```

pub mod append;
pub mod clean;
pub mod csv;
pub mod date;
pub mod frame;
pub mod missing;
pub mod series;
pub mod split;
pub mod stats;
pub mod transform;

pub use append::AppendFrame;
pub use date::Date;
pub use frame::Frame;
pub use series::Series;

/// Errors produced by frame and series operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// A column with this name already exists in the frame.
    DuplicateColumn(String),
    /// The named column does not exist.
    MissingColumn(String),
    /// A column's length does not match the frame's index length.
    LengthMismatch { expected: usize, actual: usize },
    /// A date string or component set was not a valid civil date.
    InvalidDate(String),
    /// The requested range is empty or out of bounds.
    BadRange(String),
    /// CSV text could not be parsed.
    Parse(String),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            TsError::MissingColumn(name) => write!(f, "missing column: {name}"),
            TsError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            TsError::InvalidDate(s) => write!(f, "invalid date: {s}"),
            TsError::BadRange(s) => write!(f, "bad range: {s}"),
            TsError::Parse(s) => write!(f, "parse error: {s}"),
        }
    }
}

impl std::error::Error for TsError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, TsError>;
