//! The 10 experimental scenarios: 2 period sets × 5 prediction windows.
//!
//! Building a scenario applies the paper's preprocessing in order:
//! window the panel to the period, discard features that began recording
//! after the period's first day, run the cleaning pass (flat / missing-
//! heavy feeds), interpolate interior gaps, attach the `w`-day-ahead
//! Crypto100 target, and cut a chronological 80/20 train/test split.

use std::collections::HashMap;

use c100_synth::DataCategory;
use c100_timeseries::clean::{clean_frame, CleanConfig, CleanReport};
use c100_timeseries::frame::DesignMatrix;
use c100_timeseries::{missing, transform, Date, Frame, Series};

use crate::dataset::MasterDataset;
use crate::{CoreError, Result, CRYPTO100, TARGET};

/// The prediction windows (days ahead) the paper evaluates.
pub const WINDOWS: [usize; 5] = [1, 7, 30, 90, 180];

/// Fraction of rows used for training in the chronological split.
pub const TRAIN_FRACTION: f64 = 0.8;

/// The two period sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Period {
    /// January 2017 → end of data.
    Y2017,
    /// January 2019 → end of data (USDC and fear/greed available).
    Y2019,
}

impl Period {
    /// Both periods, in paper order.
    pub const ALL: [Period; 2] = [Period::Y2017, Period::Y2019];

    /// The period's nominal first day.
    pub fn start(self) -> Date {
        match self {
            Period::Y2017 => Date::from_ymd(2017, 1, 1).expect("valid constant"),
            Period::Y2019 => Date::from_ymd(2019, 1, 1).expect("valid constant"),
        }
    }

    /// Label used in scenario ids (`2017_30` style, as in Table 1).
    pub fn label(self) -> &'static str {
        match self {
            Period::Y2017 => "2017",
            Period::Y2019 => "2019",
        }
    }
}

/// A fully preprocessed scenario dataset.
pub struct ScenarioData {
    /// Which period set.
    pub period: Period,
    /// Prediction window in days.
    pub window: usize,
    /// Cleaned features + current index price + future target column.
    pub frame: Frame,
    /// Names of the surviving candidate features.
    pub feature_names: Vec<String>,
    /// Category of each surviving feature.
    pub categories: HashMap<String, DataCategory>,
    /// What the cleaning pass removed.
    pub clean_report: CleanReport,
    /// Row index where the test window begins.
    pub split_row: usize,
}

impl ScenarioData {
    /// Scenario id in the paper's `period_window` notation.
    pub fn id(&self) -> String {
        format!("{}_{}", self.period.label(), self.window)
    }

    /// Features of one category, in frame order.
    pub fn features_of(&self, category: DataCategory) -> Vec<String> {
        self.feature_names
            .iter()
            .filter(|n| self.categories.get(*n) == Some(&category))
            .cloned()
            .collect()
    }

    /// Candidate-feature counts per category (denominator of the paper's
    /// contribution factor).
    pub fn category_counts(&self) -> HashMap<DataCategory, usize> {
        let mut counts = HashMap::new();
        for name in &self.feature_names {
            if let Some(cat) = self.categories.get(name) {
                *counts.entry(*cat).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Extracts train-portion design matrix over the given features.
    pub fn train_matrix(&self, features: &[&str]) -> Result<DesignMatrix> {
        let train = self.frame.row_slice(0, self.split_row)?;
        Ok(train.to_matrix(features, TARGET)?)
    }

    /// Extracts test-portion design matrix over the given features.
    pub fn test_matrix(&self, features: &[&str]) -> Result<DesignMatrix> {
        let test = self.frame.row_slice(self.split_row, self.frame.len())?;
        Ok(test.to_matrix(features, TARGET)?)
    }
}

/// Builds one scenario from the master dataset.
pub fn build_scenario(
    master: &MasterDataset,
    period: Period,
    window: usize,
) -> Result<ScenarioData> {
    if window == 0 {
        return Err(CoreError::Pipeline("window must be >= 1".into()));
    }
    let panel_start = master.frame.start();
    let start = if period.start() > panel_start {
        period.start()
    } else {
        panel_start
    };
    let mut frame = master.frame.window(start, master.frame.end())?;

    // Discard features that began recording after the period's first day.
    let mut late_starters = Vec::new();
    for name in master.feature_names() {
        let col = frame
            .column(&name)
            .ok_or_else(|| CoreError::Pipeline(format!("feature {name} lost in window")))?;
        if col.first_present() != Some(0) {
            late_starters.push(name);
        }
    }
    for name in &late_starters {
        frame.drop_column(name)?;
    }

    // Cleaning pass, then interpolation of what survives.
    let clean_report = clean_frame(&mut frame, &CleanConfig::default(), &[CRYPTO100]);
    missing::interpolate_frame(&mut frame);

    // Target: the index price `window` days ahead.
    let index_col = frame
        .column(CRYPTO100)
        .ok_or_else(|| CoreError::Pipeline("crypto100 column missing".into()))?;
    let mut target = transform::future_target(index_col, window);
    target.set_name(TARGET);
    frame.push_column(target)?;

    let feature_names: Vec<String> = frame
        .column_names()
        .into_iter()
        .filter(|n| *n != CRYPTO100 && *n != TARGET)
        .map(|s| s.to_string())
        .collect();
    let categories: HashMap<String, DataCategory> = feature_names
        .iter()
        .filter_map(|n| master.categories.get(n).map(|c| (n.clone(), *c)))
        .collect();

    // Chronological split over rows with a defined target.
    let usable_rows = frame.len().saturating_sub(window);
    if usable_rows < 50 {
        return Err(CoreError::Pipeline(format!(
            "only {usable_rows} usable rows for window {window}"
        )));
    }
    let split_row = (usable_rows as f64 * TRAIN_FRACTION).round() as usize;

    Ok(ScenarioData {
        period,
        window,
        frame,
        feature_names,
        categories,
        clean_report,
        split_row,
    })
}

/// Convenience: add a series as a feature to an existing scenario frame
/// (used by ablation experiments).
pub fn add_feature(
    scenario: &mut ScenarioData,
    series: Series,
    category: DataCategory,
) -> Result<()> {
    let name = series.name().to_string();
    scenario.frame.push_column(series)?;
    scenario.feature_names.push(name.clone());
    scenario.categories.insert(name, category);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::assemble;
    use c100_synth::{generate, SynthConfig};

    fn master_small() -> MasterDataset {
        assemble(&generate(&SynthConfig::small(91))).unwrap()
    }

    fn master_full() -> MasterDataset {
        // Full 2017-2023 span but a light universe to keep tests quick.
        let cfg = SynthConfig {
            seed: 92,
            n_assets: 120,
            ..SynthConfig::default()
        };
        assemble(&generate(&cfg)).unwrap()
    }

    #[test]
    fn scenario_ids_follow_paper_notation() {
        let m = master_small();
        let s = build_scenario(&m, Period::Y2019, 30).unwrap();
        assert_eq!(s.id(), "2019_30");
    }

    #[test]
    fn full_span_2017_set_drops_late_starters() {
        let m = master_full();
        let s2017 = build_scenario(&m, Period::Y2017, 7).unwrap();
        // USDC metrics (born 2018-10) and fear/greed must be absent.
        assert!(s2017.features_of(DataCategory::OnChainUsdc).is_empty());
        assert!(!s2017.feature_names.iter().any(|n| n == "fear_greed_index"));
        // But the 2019 set keeps them.
        let s2019 = build_scenario(&m, Period::Y2019, 7).unwrap();
        assert!(s2019.features_of(DataCategory::OnChainUsdc).len() > 30);
        assert!(s2019.feature_names.iter().any(|n| n == "fear_greed_index"));
        // 2019 has strictly more candidates, as in the paper (192 vs 283).
        assert!(s2019.feature_names.len() > s2017.feature_names.len());
    }

    #[test]
    fn cleaning_removes_defective_feeds() {
        let m = master_full();
        let s = build_scenario(&m, Period::Y2017, 30).unwrap();
        assert!(s.clean_report.total_dropped() > 5);
        assert!(!s.feature_names.iter().any(|n| n == "EEM_Close"));
        assert!(!s.feature_names.iter().any(|n| n == "SplyMiner1HopAllUSD"));
    }

    #[test]
    fn no_missing_values_in_feature_region() {
        let m = master_small();
        let s = build_scenario(&m, Period::Y2019, 7).unwrap();
        for name in &s.feature_names {
            let col = s.frame.column(name).unwrap();
            assert_eq!(col.count_missing(), 0, "{name} still has holes");
        }
        // Target has exactly `window` trailing missing rows.
        assert_eq!(s.frame.column(TARGET).unwrap().count_missing(), 7);
    }

    #[test]
    fn matrices_respect_the_split() {
        let m = master_small();
        let s = build_scenario(&m, Period::Y2019, 30).unwrap();
        let features: Vec<&str> = s.feature_names.iter().map(|s| s.as_str()).collect();
        let train = s.train_matrix(&features).unwrap();
        let test = s.test_matrix(&features).unwrap();
        assert_eq!(train.n_rows(), s.split_row);
        // Test rows: usable rows after the split.
        let usable = s.frame.len() - 30;
        assert_eq!(test.n_rows(), usable - s.split_row);
        assert_eq!(train.n_features, s.feature_names.len());
    }

    #[test]
    fn rejects_zero_window() {
        let m = master_small();
        assert!(build_scenario(&m, Period::Y2019, 0).is_err());
    }

    #[test]
    fn category_counts_sum_to_feature_count() {
        let m = master_small();
        let s = build_scenario(&m, Period::Y2019, 1).unwrap();
        let total: usize = s.category_counts().values().sum();
        assert_eq!(total, s.feature_names.len());
    }
}
